#include "net/codec.h"

namespace vmp::net::codec {

using util::ByteBuffer;
using util::ByteReader;
using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

constexpr char kMagic0 = 'V';
constexpr char kMagic1 = 'W';
constexpr std::size_t kHeaderBytes = 12;
/// Corrupted child counts cannot recurse unboundedly past this.
constexpr int kMaxElementDepth = 64;

Result<warehouse::GoldenImage> reader_error(const ByteReader& in,
                                            const char* what) {
  return Result<warehouse::GoldenImage>(
      Error(ErrorCode::kParseError,
            std::string(what) + ": " + in.status().error().message()));
}

}  // namespace

const char* frame_tag_name(FrameTag tag) noexcept {
  switch (tag) {
    case FrameTag::kMessage: return "message";
    case FrameTag::kDescriptor: return "descriptor";
    case FrameTag::kClassAd: return "classad";
    case FrameTag::kSnapshot: return "snapshot";
  }
  return "unknown";
}

std::string seal_frame(FrameTag tag, std::string payload) {
  ByteBuffer header;
  header.reserve(kHeaderBytes + payload.size());
  header.put_u8(static_cast<std::uint8_t>(kMagic0));
  header.put_u8(static_cast<std::uint8_t>(kMagic1));
  header.put_u8(static_cast<std::uint8_t>(tag));
  header.put_u8(kCodecVersion);
  header.put_u32(static_cast<std::uint32_t>(payload.size()));
  header.put_u32(util::frame_checksum32(payload));
  std::string out = header.take();
  out += payload;
  return out;
}

Result<FrameView> open_frame(std::string_view frame) {
  if (frame.size() < kHeaderBytes) {
    return Result<FrameView>(Error(
        ErrorCode::kParseError, "frame shorter than the 12-byte header (" +
                                    std::to_string(frame.size()) + " bytes)"));
  }
  ByteReader header(frame.substr(0, kHeaderBytes));
  const char magic0 = static_cast<char>(header.u8());
  const char magic1 = static_cast<char>(header.u8());
  if (magic0 != kMagic0 || magic1 != kMagic1) {
    return Result<FrameView>(
        Error(ErrorCode::kParseError, "bad frame magic (not a VW frame)"));
  }
  const std::uint8_t tag_byte = header.u8();
  const std::uint8_t version = header.u8();
  const std::uint32_t payload_len = header.u32();
  const std::uint32_t checksum = header.u32();
  if (tag_byte < static_cast<std::uint8_t>(FrameTag::kMessage) ||
      tag_byte > static_cast<std::uint8_t>(FrameTag::kSnapshot)) {
    return Result<FrameView>(Error(
        ErrorCode::kParseError,
        "unknown frame tag " + std::to_string(tag_byte)));
  }
  if (version == 0 || version > kCodecVersion) {
    return Result<FrameView>(Error(
        ErrorCode::kParseError,
        "unsupported codec version " + std::to_string(version) +
            " (this decoder speaks 1.." + std::to_string(kCodecVersion) +
            ")"));
  }
  const std::string_view payload = frame.substr(kHeaderBytes);
  if (payload.size() != payload_len) {
    return Result<FrameView>(Error(
        ErrorCode::kParseError,
        "frame length mismatch: header says " + std::to_string(payload_len) +
            " payload bytes, " + std::to_string(payload.size()) + " present"));
  }
  if (util::frame_checksum32(payload) != checksum) {
    return Result<FrameView>(
        Error(ErrorCode::kParseError, "frame checksum mismatch"));
  }
  FrameView view;
  view.tag = static_cast<FrameTag>(tag_byte);
  view.version = version;
  view.payload = payload;
  return view;
}

Result<FrameView> open_frame(std::string_view frame, FrameTag expected) {
  auto view = open_frame(frame);
  if (!view.ok()) return view;
  if (view.value().tag != expected) {
    return Result<FrameView>(Error(
        ErrorCode::kParseError,
        std::string("expected a ") + frame_tag_name(expected) + " frame, got " +
            frame_tag_name(view.value().tag)));
  }
  return view;
}

// -- XML element trees --------------------------------------------------------

void encode_element(const xml::Element& element, ByteBuffer* out) {
  out->put_string(element.name());
  out->put_varint(element.attrs().size());
  for (const auto& [key, value] : element.attrs()) {
    out->put_string(key);
    out->put_string(value);
  }
  out->put_string(element.text());
  out->put_varint(element.children().size());
  for (const auto& child : element.children()) {
    encode_element(*child, out);
  }
}

namespace {

std::unique_ptr<xml::Element> decode_element_at(ByteReader* in, int depth) {
  if (depth > kMaxElementDepth) {
    in->fail("element tree deeper than " + std::to_string(kMaxElementDepth));
    return nullptr;
  }
  std::string name = in->string_field();
  if (!in->ok()) return nullptr;
  if (name.empty()) {
    in->fail("element with empty name");
    return nullptr;
  }
  auto element = std::make_unique<xml::Element>(std::move(name));
  const std::uint64_t nattrs = in->varint();
  // Each attribute costs at least two length prefixes (2 bytes).
  if (!in->check_count(nattrs, 2)) return nullptr;
  for (std::uint64_t i = 0; i < nattrs && in->ok(); ++i) {
    std::string key = in->string_field();
    std::string value = in->string_field();
    if (!in->ok()) return nullptr;
    element->set_attr(std::move(key), std::move(value));
  }
  element->set_text(in->string_field());
  const std::uint64_t nchildren = in->varint();
  // A minimal child is name prefix + empty text prefix + counts: 4 bytes.
  if (!in->check_count(nchildren, 4)) return nullptr;
  for (std::uint64_t i = 0; i < nchildren && in->ok(); ++i) {
    auto child = decode_element_at(in, depth + 1);
    if (child == nullptr) return nullptr;
    element->adopt_child(std::move(child));
  }
  return in->ok() ? std::move(element) : nullptr;
}

}  // namespace

Result<std::unique_ptr<xml::Element>> decode_element(ByteReader* in) {
  auto element = decode_element_at(in, 0);
  if (element == nullptr) {
    return Result<std::unique_ptr<xml::Element>>(Error(
        ErrorCode::kParseError,
        "element decode: " + in->status().error().message()));
  }
  return element;
}

// -- Message envelopes --------------------------------------------------------

std::string encode_message(const Message& message) {
  ByteBuffer payload;
  payload.reserve(256);
  payload.put_u8(static_cast<std::uint8_t>(message.kind()));
  payload.put_string(message.service());
  payload.put_string(message.from());
  payload.put_string(message.to());
  payload.put_string(message.correlation());
  payload.put_string(message.trace().trace_id);
  payload.put_varint(message.trace().span_id);
  encode_element(message.body(), &payload);
  return seal_frame(FrameTag::kMessage, payload.take());
}

Result<Message> decode_message(std::string_view frame) {
  auto view = open_frame(frame, FrameTag::kMessage);
  if (!view.ok()) return view.propagate<Message>();

  ByteReader in(view.value().payload);
  const std::uint8_t kind_byte = in.u8();
  if (in.ok() && kind_byte > static_cast<std::uint8_t>(MessageKind::kFault)) {
    in.fail("message kind byte " + std::to_string(kind_byte) +
            " out of range");
  }
  std::string service = in.string_field();
  std::string from = in.string_field();
  std::string to = in.string_field();
  std::string correlation = in.string_field();
  obs::TraceContext trace;
  trace.trace_id = in.string_field();
  trace.span_id = in.varint();
  if (!in.ok()) {
    return Result<Message>(Error(
        ErrorCode::kParseError,
        "message envelope: " + in.status().error().message()));
  }

  Message message = Message::assemble(static_cast<MessageKind>(kind_byte),
                                      std::move(service), std::move(from),
                                      std::move(to), std::move(correlation));
  message.set_trace(std::move(trace));

  auto body = decode_element(&in);
  if (!body.ok()) return body.propagate<Message>();
  if (!in.done()) {
    return Result<Message>(Error(
        ErrorCode::kParseError,
        std::to_string(in.remaining()) + " trailing bytes after message body"));
  }
  for (const auto& child : body.value()->children()) {
    message.body().adopt_child(child->clone());
  }
  message.body().set_text(body.value()->text());
  return message;
}

// -- Warehouse descriptors ----------------------------------------------------

void encode_descriptor_payload(const warehouse::GoldenImage& image,
                               ByteBuffer* out) {
  out->reserve(out->size() + 512);
  out->put_string(image.id);
  out->put_string(image.backend);
  out->put_string(image.layout.dir);

  out->put_string(image.spec.os);
  out->put_varint(image.spec.memory_bytes);
  out->put_bool(image.spec.suspended);
  out->put_string(image.spec.disk.name);
  out->put_varint(image.spec.disk.capacity_bytes);
  out->put_varint(image.spec.disk.span_count);
  out->put_u8(static_cast<std::uint8_t>(image.spec.disk.mode));

  const hv::GuestState& guest = image.guest;
  out->put_string(guest.os);
  out->put_string(guest.hostname);
  out->put_string(guest.ip);
  out->put_string(guest.mac);
  out->put_varint(guest.packages.size());
  for (const auto& package : guest.packages) out->put_string(package);
  out->put_varint(guest.users.size());
  for (const auto& [name, home] : guest.users) {
    out->put_string(name);
    out->put_string(home);
  }
  out->put_varint(guest.mounts.size());
  for (const auto& [mountpoint, source] : guest.mounts) {
    out->put_string(mountpoint);
    out->put_string(source);
  }
  out->put_varint(guest.running_services.size());
  for (const auto& service : guest.running_services) out->put_string(service);
  out->put_varint(guest.files.size());
  for (const auto& [path, content] : guest.files) {
    out->put_string(path);
    out->put_string(content);
  }
  // flaky_counters intentionally excluded, matching render_guest_state:
  // they are fault-injection scratch state, not guest configuration.

  out->put_varint(image.performed.size());
  for (const auto& signature : image.performed) out->put_string(signature);
}

Result<warehouse::GoldenImage> decode_descriptor_payload(ByteReader* in) {
  warehouse::GoldenImage image;
  image.id = in->string_field();
  image.backend = in->string_field();
  image.layout.dir = in->string_field();
  if (!in->ok()) return reader_error(*in, "descriptor header");
  if (image.id.empty()) {
    return Result<warehouse::GoldenImage>(
        Error(ErrorCode::kParseError, "descriptor: missing id"));
  }

  image.spec.os = in->string_field();
  image.spec.memory_bytes = in->varint();
  image.spec.suspended = in->boolean();
  image.spec.disk.name = in->string_field();
  image.spec.disk.capacity_bytes = in->varint();
  const std::uint64_t span_count = in->varint();
  const std::uint8_t mode_byte = in->u8();
  if (in->ok() && span_count > 0xffffffffull) {
    in->fail("disk span count overflows u32");
  }
  if (in->ok() &&
      mode_byte > static_cast<std::uint8_t>(storage::DiskMode::kNonPersistent)) {
    in->fail("disk mode byte " + std::to_string(mode_byte) + " out of range");
  }
  if (!in->ok()) return reader_error(*in, "descriptor machine spec");
  image.spec.disk.span_count = static_cast<std::uint32_t>(span_count);
  image.spec.disk.mode = static_cast<storage::DiskMode>(mode_byte);

  hv::GuestState& guest = image.guest;
  guest.os = in->string_field();
  guest.hostname = in->string_field();
  guest.ip = in->string_field();
  guest.mac = in->string_field();
  // The encoder walked sorted containers, so entries arrive in order and
  // end-hinted inserts are amortized O(1) (no descent, no rebalancing).
  const std::uint64_t npackages = in->varint();
  if (!in->check_count(npackages)) return reader_error(*in, "guest packages");
  for (std::uint64_t i = 0; i < npackages && in->ok(); ++i) {
    guest.packages.emplace_hint(guest.packages.end(), in->string_field());
  }
  const std::uint64_t nusers = in->varint();
  if (!in->check_count(nusers, 2)) return reader_error(*in, "guest users");
  for (std::uint64_t i = 0; i < nusers && in->ok(); ++i) {
    std::string name = in->string_field();
    std::string home = in->string_field();
    guest.users.emplace_hint(guest.users.end(), std::move(name),
                             std::move(home));
  }
  const std::uint64_t nmounts = in->varint();
  if (!in->check_count(nmounts, 2)) return reader_error(*in, "guest mounts");
  for (std::uint64_t i = 0; i < nmounts && in->ok(); ++i) {
    std::string mountpoint = in->string_field();
    std::string source = in->string_field();
    guest.mounts.emplace_hint(guest.mounts.end(), std::move(mountpoint),
                              std::move(source));
  }
  const std::uint64_t nservices = in->varint();
  if (!in->check_count(nservices)) return reader_error(*in, "guest services");
  for (std::uint64_t i = 0; i < nservices && in->ok(); ++i) {
    guest.running_services.emplace_hint(guest.running_services.end(),
                                        in->string_field());
  }
  const std::uint64_t nfiles = in->varint();
  if (!in->check_count(nfiles, 2)) return reader_error(*in, "guest files");
  for (std::uint64_t i = 0; i < nfiles && in->ok(); ++i) {
    std::string path = in->string_field();
    std::string content = in->string_field();
    guest.files.emplace_hint(guest.files.end(), std::move(path),
                             std::move(content));
  }

  const std::uint64_t nperformed = in->varint();
  if (!in->check_count(nperformed)) {
    return reader_error(*in, "performed actions");
  }
  image.performed.reserve(static_cast<std::size_t>(nperformed));
  for (std::uint64_t i = 0; i < nperformed && in->ok(); ++i) {
    image.performed.push_back(in->string_field());
  }
  if (!in->ok()) return reader_error(*in, "descriptor");
  // Same gate as the XML parse_descriptor: a structurally well-formed frame
  // may still carry an unusable machine spec.
  VMP_RETURN_IF_ERROR_AS(image.spec.validate(), warehouse::GoldenImage);
  return image;
}

std::string encode_descriptor(const warehouse::GoldenImage& image) {
  ByteBuffer payload;
  encode_descriptor_payload(image, &payload);
  return seal_frame(FrameTag::kDescriptor, payload.take());
}

Result<warehouse::GoldenImage> decode_descriptor(std::string_view frame) {
  auto view = open_frame(frame, FrameTag::kDescriptor);
  if (!view.ok()) return view.propagate<warehouse::GoldenImage>();
  ByteReader in(view.value().payload);
  auto image = decode_descriptor_payload(&in);
  if (!image.ok()) return image;
  if (!in.done()) {
    return Result<warehouse::GoldenImage>(Error(
        ErrorCode::kParseError,
        std::to_string(in.remaining()) + " trailing bytes after descriptor"));
  }
  return image;
}

// -- ClassAd snapshots --------------------------------------------------------

void encode_classad_payload(const classad::ClassAd& ad, ByteBuffer* out) {
  const std::vector<std::string> names = ad.names();
  out->put_varint(names.size());
  for (const std::string& name : names) {
    out->put_string(name);
    const classad::Expr* expr = ad.lookup(name);
    out->put_string(expr != nullptr ? expr->to_string() : "undefined");
  }
}

Result<classad::ClassAd> decode_classad_payload(ByteReader* in) {
  const std::uint64_t nattrs = in->varint();
  if (!in->check_count(nattrs, 2)) {
    return Result<classad::ClassAd>(Error(
        ErrorCode::kParseError,
        "classad attr count: " + in->status().error().message()));
  }
  classad::ClassAd ad;
  for (std::uint64_t i = 0; i < nattrs && in->ok(); ++i) {
    std::string name = in->string_field();
    std::string expr_text = in->string_field();
    if (!in->ok()) break;
    if (auto set = ad.set_expression(name, expr_text); !set.ok()) {
      return Result<classad::ClassAd>(Error(
          ErrorCode::kParseError, "classad attr '" + name +
                                      "': " + set.error().message()));
    }
  }
  if (!in->ok()) {
    return Result<classad::ClassAd>(Error(
        ErrorCode::kParseError,
        "classad: " + in->status().error().message()));
  }
  return ad;
}

std::string encode_classad(const classad::ClassAd& ad) {
  ByteBuffer payload;
  encode_classad_payload(ad, &payload);
  return seal_frame(FrameTag::kClassAd, payload.take());
}

Result<classad::ClassAd> decode_classad(std::string_view frame) {
  auto view = open_frame(frame, FrameTag::kClassAd);
  if (!view.ok()) return view.propagate<classad::ClassAd>();
  ByteReader in(view.value().payload);
  auto ad = decode_classad_payload(&in);
  if (!ad.ok()) return ad;
  if (!in.done()) {
    return Result<classad::ClassAd>(Error(
        ErrorCode::kParseError,
        std::to_string(in.remaining()) + " trailing bytes after classad"));
  }
  return ad;
}

}  // namespace vmp::net::codec
