#include "core/migration.h"

#include "util/logging.h"

namespace vmp::core {

using util::Error;
using util::ErrorCode;
using util::Result;

Result<classad::ClassAd> migrate_vm(VmPlant* source, VmPlant* target,
                                    const std::string& vm_id) {
  if (source == target) {
    return Result<classad::ClassAd>(Error(
        ErrorCode::kInvalidArgument, "migration source == target plant"));
  }

  auto bundle = source->migrate_out(vm_id);
  if (!bundle.ok()) return bundle.propagate<classad::ClassAd>();

  auto adopted = target->migrate_in(bundle.value());
  if (!adopted.ok()) {
    // Roll back: the VM is still intact (suspended) at the source.
    util::Status resumed = source->resume_after_failed_migration(vm_id);
    util::Logger("migration").warn()
        << "migrate_in failed (" << adopted.error().to_string()
        << "); source resume " << (resumed.ok() ? "ok" : resumed.to_string());
    return adopted;
  }

  // The target owns the VM now; retire the source instance.
  util::Status collected = source->collect(vm_id);
  if (!collected.ok()) {
    util::Logger("migration").warn()
        << "source collect after migration failed: " << collected.to_string();
  }
  return adopted;
}

}  // namespace vmp::core
