// The VM Warehouse: storage and lookup of "golden" images.
//
// Paper, Section 3.2: "The VM Warehouse stores 'golden' images of not only
// pre-built images with typical installations of popular operating systems,
// but also images that are set up and customized for an application by
// providing VM installers with the capability of publishing a VM image to
// the Warehouse, for subsequent instantiations through VMPlant."  And 4.1:
// "Golden machines are stored as files in sub-directories of the VM
// Warehouse; each golden machine is specified by a configuration file, and
// virtual disk and memory files.  XML files are used to describe such
// cached images in terms of their memory sizes, operating system installed,
// and the configuration actions that have already been performed."
//
// On disk (inside an ArtifactStore, which in the simulated cluster lives on
// the NFS server):
//   <base>/<image-id>/machine.cfg, memory.vmss, disk spans, redo, guest.state
//   <base>/<image-id>/descriptor.xml
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "hypervisor/guest.h"
#include "storage/artifact_store.h"
#include "storage/image_layout.h"
#include "util/error.h"

namespace vmp::warehouse {

struct GoldenImage {
  std::string id;
  std::string backend;  // production line: "vmware-gsx", "uml"
  storage::ImageLayout layout;
  storage::MachineSpec spec;
  hv::GuestState guest;
  /// Action signatures already performed, oldest first (the history the
  /// PPP's three matching tests run against).
  std::vector<std::string> performed;
};

/// Serialize/parse descriptor.xml.
std::string render_descriptor(const GoldenImage& image);
util::Result<GoldenImage> parse_descriptor(const std::string& xml_text);

class Warehouse {
 public:
  /// `base_dir` is the store-relative warehouse root (e.g. "warehouse").
  Warehouse(storage::ArtifactStore* store, std::string base_dir);

  /// Publish a golden image: materialize its artefacts and descriptor.
  /// Fails if the id is taken.
  util::Status publish(const GoldenImage& image);

  /// Publish by materializing from scratch (helper: builds layout from id).
  util::Result<GoldenImage> publish_new(
      const std::string& id, const std::string& backend,
      const storage::MachineSpec& spec, const hv::GuestState& guest,
      const std::vector<std::string>& performed);

  util::Result<GoldenImage> lookup(const std::string& id) const;
  bool contains(const std::string& id) const;
  util::Status remove(const std::string& id);

  /// All images (id-ordered); optionally filtered by backend.
  std::vector<GoldenImage> list() const;
  std::vector<GoldenImage> list_backend(const std::string& backend) const;

  /// Rebuild the in-memory index from descriptor.xml files on disk
  /// (service restoration after a failure — the paper's VMShop keeps no
  /// durable state; the warehouse's durable state *is* the disk).
  util::Status rescan();

  std::size_t size() const;
  const std::string& base_dir() const { return base_dir_; }
  storage::ArtifactStore* store() { return store_; }

 private:
  std::string dir_for(const std::string& id) const;

  mutable std::mutex mutex_;
  storage::ArtifactStore* store_;
  std::string base_dir_;
  std::map<std::string, GoldenImage> images_;
};

}  // namespace vmp::warehouse
