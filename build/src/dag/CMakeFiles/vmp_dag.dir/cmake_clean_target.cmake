file(REMOVE_RECURSE
  "libvmp_dag.a"
)
