// Unit tests for the artifact store, disk model, image layout, and the
// link-vs-copy cloning mechanics.
#include <gtest/gtest.h>

#include <filesystem>

#include "storage/artifact_store.h"
#include "storage/clone_ops.h"
#include "storage/disk.h"
#include "storage/image_layout.h"

namespace vmp::storage {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("vmp-storage-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    store_ = std::make_unique<ArtifactStore>(root_);
  }
  void TearDown() override {
    store_.reset();
    std::filesystem::remove_all(root_);
  }

  std::filesystem::path root_;
  std::unique_ptr<ArtifactStore> store_;
};

// -- Path safety --------------------------------------------------------------

TEST_F(StorageTest, RejectsAbsolutePaths) {
  EXPECT_FALSE(store_->resolve("/etc/passwd").ok());
  EXPECT_FALSE(store_->write_file("/etc/shadow", "x").ok());
}

TEST_F(StorageTest, RejectsTraversal) {
  EXPECT_FALSE(store_->resolve("../outside").ok());
  EXPECT_FALSE(store_->resolve("a/../../b").ok());
}

TEST_F(StorageTest, ResolvesRelativePaths) {
  auto p = store_->resolve("a/b/c.txt");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value(), root_ / "a/b/c.txt");
}

// -- Files -------------------------------------------------------------------

TEST_F(StorageTest, WriteReadRoundTrip) {
  ASSERT_TRUE(store_->write_file("dir/file.txt", "hello\nworld").ok());
  auto content = store_->read_file("dir/file.txt");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), "hello\nworld");
  EXPECT_TRUE(store_->exists("dir/file.txt"));
  EXPECT_FALSE(store_->exists("dir/other.txt"));
}

TEST_F(StorageTest, ReadMissingFileFails) {
  EXPECT_FALSE(store_->read_file("nope").ok());
}

TEST_F(StorageTest, AppendGrowsFile) {
  ASSERT_TRUE(store_->write_file("log", "a").ok());
  ASSERT_TRUE(store_->append_file("log", "b").ok());
  EXPECT_EQ(store_->read_file("log").value(), "ab");
}

TEST_F(StorageTest, SparseFileHasLogicalSizeWithoutDiskUse) {
  const std::uint64_t gb = 1ull << 30;
  auto acct = store_->create_sparse_file("disk.vmdk", 2 * gb);
  ASSERT_TRUE(acct.ok());
  EXPECT_EQ(acct.value().bytes_written, 2 * gb);
  EXPECT_EQ(store_->file_size("disk.vmdk").value(), 2 * gb);
  // Allocated blocks must be tiny (the point of sparseness).
  struct stat st {};
  ASSERT_EQ(::stat((root_ / "disk.vmdk").c_str(), &st), 0);
  EXPECT_LT(static_cast<std::uint64_t>(st.st_blocks) * 512, 1ull << 20);
}

TEST_F(StorageTest, CopySmallFileIsReal) {
  ASSERT_TRUE(store_->write_file("src", "content").ok());
  auto acct = store_->copy_file("src", "dst");
  ASSERT_TRUE(acct.ok());
  EXPECT_EQ(acct.value().bytes_read, 7u);
  EXPECT_EQ(store_->read_file("dst").value(), "content");
}

TEST_F(StorageTest, CopySparseFileStaysSparseButAccountsLogicalBytes) {
  const std::uint64_t mb256 = 256ull << 20;
  ASSERT_TRUE(store_->create_sparse_file("memory.vmss", mb256).ok());
  auto acct = store_->copy_file("memory.vmss", "clone/memory.vmss");
  ASSERT_TRUE(acct.ok());
  EXPECT_EQ(acct.value().bytes_written, mb256);
  EXPECT_EQ(store_->file_size("clone/memory.vmss").value(), mb256);
  struct stat st {};
  ASSERT_EQ(::stat((root_ / "clone/memory.vmss").c_str(), &st), 0);
  EXPECT_LT(static_cast<std::uint64_t>(st.st_blocks) * 512, 1ull << 20);
}

TEST_F(StorageTest, CopyMissingSourceFails) {
  EXPECT_FALSE(store_->copy_file("missing", "dst").ok());
}

// -- Links --------------------------------------------------------------------

TEST_F(StorageTest, LinkCreatesSymlinkReadThrough) {
  ASSERT_TRUE(store_->write_file("golden/disk", "DISKDATA").ok());
  auto acct = store_->link_file("golden/disk", "clone/disk");
  ASSERT_TRUE(acct.ok());
  EXPECT_EQ(acct.value().links_created, 1u);
  EXPECT_EQ(acct.value().bytes_written, 0u);
  EXPECT_TRUE(store_->is_symlink("clone/disk"));
  EXPECT_FALSE(store_->is_symlink("golden/disk"));
  EXPECT_EQ(store_->read_file("clone/disk").value(), "DISKDATA");
  // file_size of a symlink reports 0 (link itself); logical follows.
  EXPECT_EQ(store_->file_size("clone/disk").value(), 0u);
  EXPECT_EQ(store_->logical_size("clone/disk").value(), 8u);
}

TEST_F(StorageTest, LinkMissingSourceFails) {
  EXPECT_FALSE(store_->link_file("missing", "clone/x").ok());
}

// -- Directory ops ---------------------------------------------------------------

TEST_F(StorageTest, ListDirSorted) {
  ASSERT_TRUE(store_->write_file("d/b", "").ok());
  ASSERT_TRUE(store_->write_file("d/a", "").ok());
  ASSERT_TRUE(store_->write_file("d/c", "").ok());
  auto entries = store_->list_dir("d");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries.value(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(StorageTest, RemoveTreeDeletesEverything) {
  ASSERT_TRUE(store_->write_file("t/x/y", "1").ok());
  ASSERT_TRUE(store_->remove_tree("t").ok());
  EXPECT_FALSE(store_->exists("t"));
}

TEST_F(StorageTest, RemoveTreeAccountsPhysicalBytesFreed) {
  ASSERT_TRUE(store_->write_file("t/a", "12345").ok());
  ASSERT_TRUE(store_->write_file("t/sub/b", "678").ok());
  // A symlink frees zero physical bytes; its target is billed elsewhere.
  ASSERT_TRUE(store_->link_file("t/a", "t/link").ok());
  auto removed = store_->remove_tree("t");
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value().bytes_freed, 8u);
  EXPECT_EQ(removed.value().files_touched, 3u);  // a, b, link
  // Idempotent: a second removal frees nothing and still succeeds.
  auto again = store_->remove_tree("t");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().bytes_freed, 0u);
}

TEST_F(StorageTest, TreeFootprintIsSymlinkAware) {
  ASSERT_TRUE(store_->write_file("t/a", "12345").ok());
  ASSERT_TRUE(store_->link_file("t/a", "t/link").ok());
  auto footprint = store_->tree_footprint("t");
  ASSERT_TRUE(footprint.ok());
  EXPECT_EQ(footprint.value().physical_bytes, 5u);
  EXPECT_EQ(footprint.value().files, 1u);
  EXPECT_EQ(footprint.value().links, 1u);
}

TEST_F(StorageTest, DanglingSymlinkLogicalSizeIsExplicitError) {
  ASSERT_TRUE(store_->write_file("t/a", "12345").ok());
  ASSERT_TRUE(store_->link_file("t/a", "t/link").ok());
  ASSERT_TRUE(store_->remove("t/a").ok());
  auto size = store_->logical_size("t/link");
  ASSERT_FALSE(size.ok());
  EXPECT_EQ(size.error().code(), util::ErrorCode::kFailedPrecondition);
}

TEST_F(StorageTest, RemoveSingleFile) {
  ASSERT_TRUE(store_->write_file("f", "1").ok());
  EXPECT_TRUE(store_->remove("f").ok());
  EXPECT_FALSE(store_->remove("f").ok());
}

// -- DiskSpec ----------------------------------------------------------------------

TEST(DiskSpecTest, SpanNamesAndSizes) {
  DiskSpec disk;
  disk.name = "disk0";
  disk.capacity_bytes = 100;
  disk.span_count = 3;
  const auto names = disk.span_file_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "disk0-s001.vmdk");
  EXPECT_EQ(names[2], "disk0-s003.vmdk");
  EXPECT_EQ(disk.span_size(0), 33u);
  EXPECT_EQ(disk.span_size(1), 33u);
  EXPECT_EQ(disk.span_size(2), 34u);  // remainder in the last span
  EXPECT_EQ(disk.span_size(0) + disk.span_size(1) + disk.span_size(2), 100u);
  EXPECT_EQ(disk.redo_file_name(), "disk0.redo");
}

TEST(DiskSpecTest, Validation) {
  DiskSpec ok{"d", 100, 2, DiskMode::kNonPersistent};
  EXPECT_TRUE(ok.validate().ok());
  DiskSpec no_name{"", 100, 2, DiskMode::kNonPersistent};
  EXPECT_FALSE(no_name.validate().ok());
  DiskSpec zero_cap{"d", 0, 2, DiskMode::kNonPersistent};
  EXPECT_FALSE(zero_cap.validate().ok());
  DiskSpec zero_spans{"d", 100, 0, DiskMode::kNonPersistent};
  EXPECT_FALSE(zero_spans.validate().ok());
}

TEST(DiskSpecTest, ModeNamesRoundTrip) {
  EXPECT_EQ(parse_disk_mode(disk_mode_name(DiskMode::kPersistent)).value(),
            DiskMode::kPersistent);
  EXPECT_EQ(parse_disk_mode(disk_mode_name(DiskMode::kNonPersistent)).value(),
            DiskMode::kNonPersistent);
  EXPECT_FALSE(parse_disk_mode("bogus").ok());
}

// -- MachineSpec / config file --------------------------------------------------------

MachineSpec paper_spec(std::uint64_t mem_mb) {
  MachineSpec spec;
  spec.os = "linux-mandrake-8.1";
  spec.memory_bytes = mem_mb << 20;
  spec.suspended = true;
  spec.disk = DiskSpec{"disk0", 2048ull << 20, 16, DiskMode::kNonPersistent};
  return spec;
}

TEST(MachineSpecTest, ConfigRoundTrip) {
  const MachineSpec spec = paper_spec(64);
  auto parsed = parse_machine_config(render_machine_config(spec));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().os, spec.os);
  EXPECT_EQ(parsed.value().memory_bytes, spec.memory_bytes);
  EXPECT_EQ(parsed.value().suspended, spec.suspended);
  EXPECT_EQ(parsed.value().disk.span_count, 16u);
  EXPECT_EQ(parsed.value().disk.mode, DiskMode::kNonPersistent);
}

TEST(MachineSpecTest, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_machine_config("nonsense line").ok());
  EXPECT_FALSE(parse_machine_config("unknown_key = 1").ok());
  EXPECT_FALSE(parse_machine_config("").ok());  // fails validation
}

// -- materialize_image -----------------------------------------------------------------

TEST_F(StorageTest, MaterializeCreatesAllArtifacts) {
  const MachineSpec spec = paper_spec(32);
  const ImageLayout layout{"warehouse/golden-32mb"};
  auto acct = materialize_image(store_.get(), layout, spec);
  ASSERT_TRUE(acct.ok()) << acct.error().to_string();

  EXPECT_TRUE(store_->exists(layout.config_path()));
  EXPECT_TRUE(store_->exists(layout.memory_path()));
  EXPECT_TRUE(store_->exists(layout.base_redo_path(spec.disk)));
  for (const auto& span : layout.span_paths(spec.disk)) {
    EXPECT_TRUE(store_->exists(span));
  }
  EXPECT_EQ(store_->file_size(layout.memory_path()).value(), 32ull << 20);
}

TEST_F(StorageTest, MaterializeBootImageHasNoMemoryState) {
  MachineSpec spec = paper_spec(32);
  spec.suspended = false;
  const ImageLayout layout{"warehouse/uml"};
  ASSERT_TRUE(materialize_image(store_.get(), layout, spec).ok());
  EXPECT_FALSE(store_->exists(layout.memory_path()));
}

// -- clone_image -------------------------------------------------------------------------

class CloneTest : public StorageTest {
 protected:
  void SetUp() override {
    StorageTest::SetUp();
    spec_ = paper_spec(64);
    golden_ = ImageLayout{"warehouse/golden"};
    ASSERT_TRUE(materialize_image(store_.get(), golden_, spec_).ok());
  }
  MachineSpec spec_;
  ImageLayout golden_;
};

TEST_F(CloneTest, LinkedCloneLinksDisksAndCopiesMemory) {
  auto report = clone_image(store_.get(), golden_, spec_, "clones/vm1",
                            CloneStrategy::kLinked);
  ASSERT_TRUE(report.ok()) << report.error().to_string();

  // Disk spans are links, not copies.
  EXPECT_EQ(report.value().disk.links_created, 16u);
  EXPECT_EQ(report.value().disk.bytes_written, 0u);
  // Memory is a real (logical) copy of 64 MB.
  EXPECT_EQ(report.value().memory.bytes_written, 64ull << 20);

  const ImageLayout clone{"clones/vm1"};
  EXPECT_TRUE(store_->is_symlink(clone.span_paths(spec_.disk)[0]));
  EXPECT_FALSE(store_->is_symlink(clone.memory_path()));
  EXPECT_TRUE(store_->exists(clone.config_path()));
  EXPECT_TRUE(store_->exists(clone.base_redo_path(spec_.disk)));
}

TEST_F(CloneTest, FullCopyWritesAllBytes) {
  auto report = clone_image(store_.get(), golden_, spec_, "clones/vm2",
                            CloneStrategy::kFullCopy);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().disk.links_created, 0u);
  EXPECT_EQ(report.value().disk.bytes_written, 2048ull << 20);
  const ImageLayout clone{"clones/vm2"};
  EXPECT_FALSE(store_->is_symlink(clone.span_paths(spec_.disk)[0]));
}

TEST_F(CloneTest, CloneAccountingGapMatchesPaperMechanism) {
  // The whole point of linked cloning (paper §4.3): bytes moved shrink from
  // disk-sized to memory-sized.
  auto linked = clone_image(store_.get(), golden_, spec_, "clones/a",
                            CloneStrategy::kLinked);
  auto copied = clone_image(store_.get(), golden_, spec_, "clones/b",
                            CloneStrategy::kFullCopy);
  ASSERT_TRUE(linked.ok());
  ASSERT_TRUE(copied.ok());
  const double ratio =
      static_cast<double>(copied.value().total().bytes_written) /
      static_cast<double>(linked.value().total().bytes_written);
  EXPECT_GT(ratio, 30.0);  // 2 GB+64MB vs 64 MB ≈ 33x
}

TEST_F(CloneTest, LinkedCloneOfPersistentDiskRefused) {
  MachineSpec persistent = spec_;
  persistent.disk.mode = DiskMode::kPersistent;
  auto report = clone_image(store_.get(), golden_, persistent, "clones/vm3",
                            CloneStrategy::kLinked);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.error().code(), util::ErrorCode::kFailedPrecondition);
}

TEST_F(CloneTest, CloneIntoExistingDirRefused) {
  ASSERT_TRUE(store_->make_dir("clones/vm4").ok());
  auto report = clone_image(store_.get(), golden_, spec_, "clones/vm4",
                            CloneStrategy::kLinked);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.error().code(), util::ErrorCode::kAlreadyExists);
}

TEST_F(CloneTest, DestroyCloneRemovesCloneNotGolden) {
  ASSERT_TRUE(clone_image(store_.get(), golden_, spec_, "clones/vm5",
                          CloneStrategy::kLinked)
                  .ok());
  ASSERT_TRUE(destroy_clone(store_.get(), "clones/vm5").ok());
  EXPECT_FALSE(store_->exists("clones/vm5"));
  // Golden artefacts untouched.
  EXPECT_TRUE(store_->exists(golden_.memory_path()));
  for (const auto& span : golden_.span_paths(spec_.disk)) {
    EXPECT_TRUE(store_->exists(span));
  }
  EXPECT_FALSE(destroy_clone(store_.get(), "clones/vm5").ok());
}

TEST_F(CloneTest, ManyClonesShareOneGolden) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(clone_image(store_.get(), golden_, spec_,
                            "clones/many" + std::to_string(i),
                            CloneStrategy::kLinked)
                    .ok());
  }
  // All clones read the same base disk content through their links.
  for (int i = 0; i < 10; ++i) {
    const ImageLayout clone{"clones/many" + std::to_string(i)};
    EXPECT_TRUE(store_->is_symlink(clone.span_paths(spec_.disk)[5]));
  }
}

}  // namespace
}  // namespace vmp::storage
