// Summary statistics and fixed-bin histograms.
//
// The paper reports its evaluation as normalized-frequency histograms
// (Figures 4 and 5) and a per-request series (Figure 6); Histogram mirrors
// the exact binning used there (bin centers 5,15,...,85 for Fig. 4 and
// 5,10,...,70 for Fig. 5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vmp::util {

/// Running summary of a sample set.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  // sample variance (n-1); 0 if count < 2
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile over a copy of the samples (p in [0,100], nearest-rank).
double percentile(std::vector<double> samples, double p);

/// Per-point counters of fired fault injections.  The fault registry keeps
/// one and hands out snapshots, so tests and benches can assert exactly
/// which injections fired ("store.write fired twice, bus.send never").
class FaultReport {
 public:
  void record(const std::string& point);

  /// Fired count for one injection point (0 when it never fired).
  std::uint64_t count(const std::string& point) const;
  std::uint64_t total() const { return total_; }
  bool empty() const { return total_ == 0; }
  const std::map<std::string, std::uint64_t>& by_point() const {
    return counts_;
  }

  /// "bus.send=1 store.write=2 (total 3)"; "no injections" when empty.
  std::string to_string() const;

 private:
  std::map<std::string, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Fixed-width histogram with explicit bin edges [lo, lo+w), [lo+w, lo+2w)...
/// Out-of-range samples clamp into the first/last bin, matching how the
/// paper's plots fold tails into edge bins.
class Histogram {
 public:
  /// Bins cover [lo, hi) with the given width; hi-lo must be a positive
  /// multiple of width.
  Histogram(double lo, double hi, double width);

  void add(double x);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  std::size_t count_at(std::size_t bin) const { return counts_.at(bin); }
  double bin_low(std::size_t bin) const { return lo_ + width_ * bin; }
  double bin_center(std::size_t bin) const {
    return lo_ + width_ * (bin + 0.5);
  }

  /// Normalized frequency of occurrence (the paper's y axis).
  double normalized(std::size_t bin) const;

  /// Render as "center count frequency" rows, one per bin.
  std::string to_table(const std::string& label) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace vmp::util
