// Concurrent VM creation — the DES projection and the real pipeline.
//
// The paper's experiments are strictly sequential and §4.3 closes with
// "latency-hiding optimizations such as speculative pre-creation of VMs
// can be conceived, but have not yet been investigated."  Two measurements
// here:
//
//   1. The DES projection: a window of concurrent creations shares the
//      warehouse's NFS uplink (processor sharing) and per-plant resume
//      serialization, showing throughput gains flattening as the shared
//      link saturates while individual clones stretch.
//
//   2. The real thing: N client threads drive shop.create end to end
//      (bid, clone, resume, configure, destroy) against one plant, once
//      with the pre-§10 serialized production line and once with the
//      concurrent pipeline (DESIGN.md §10).  The golden image's memory
//      checkpoint is rewritten with incompressible bytes so every clone
//      pays a real copy, not a sparse-file fast path.
//
// Each pipeline measurement emits one machine-readable line
//   BENCH_JSON {"name": "create.pipeline.c16", "throughput_vm_s": ..., ...}
// consumed by tools/bench_gate.py, which fails CI when throughput regresses
// against bench/baselines/concurrency.json or the 16-client speedup over
// the serialized baseline drops below 2x (on hosts with >= 4 cores).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "cluster/concurrent_sim.h"
#include "common.h"
#include "core/plant.h"
#include "core/shop.h"
#include "net/bus.h"
#include "obs/tail.h"
#include "workload/request_gen.h"

namespace {

using namespace vmp;

constexpr std::size_t kTotalCreates = 64;  // per run, split across clients
constexpr std::size_t kMemoryPayloadBytes = 4ull << 20;

struct RunResult {
  double throughput_vm_s = 0.0;
  std::size_t failures = 0;
};

/// Drive `clients` threads of create+destroy through a one-plant shop.
/// `serialize` selects the pre-§10 baseline (one production order at a
/// time); otherwise the concurrent pipeline runs with a 16-worker pool.
/// `wire` selects the bus encoding — XML (paper default) or the binary
/// codec (net/codec.h), so the end-to-end impact of the wire format is a
/// measured row, not an extrapolation from the microbenchmark.
RunResult run_pipeline(bool serialize, std::size_t clients,
                       net::WireFormat wire = net::WireFormat::kXml) {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("vmp-bench-conc-" + std::to_string(::getpid()) + "-" +
       (serialize ? std::string("serial") : std::string("pipeline")) + "-" +
       net::wire_format_name(wire) + "-c" + std::to_string(clients));
  std::filesystem::remove_all(root);

  RunResult result;
  {
    storage::ArtifactStore store(root);
    warehouse::Warehouse wh(&store, "warehouse");
    if (!workload::publish_paper_goldens(&wh, {32}).ok()) {
      result.failures = kTotalCreates;
      return result;
    }
    // Defeat the sparse-file fast path: every clone must copy these bytes.
    std::string payload(kMemoryPayloadBytes, '\0');
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<char>((i * 31 + 7) & 0xff);
    }
    (void)store.write_file("warehouse/golden-32mb/memory.vmss", payload);

    // Bus and registry outlive the plant (its destructor detaches).
    net::MessageBus bus{net::BusConfig{wire}};
    net::ServiceRegistry registry;
    core::PlantConfig plant_config;
    plant_config.name = "plant0";
    plant_config.serialize_creates = serialize;
    plant_config.worker_threads = serialize ? 1 : 16;
    core::VmPlant plant(plant_config, &store, &wh);
    if (!plant.attach_to_bus(&bus, &registry).ok()) {
      result.failures = kTotalCreates;
      return result;
    }
    core::VmShop shop(core::ShopConfig{}, &bus, &registry);
    (void)shop.attach_to_bus();

    const std::size_t per_client = kTotalCreates / clients;
    std::atomic<std::size_t> failures{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        for (std::size_t k = 0; k < per_client; ++k) {
          const std::size_t index = c * per_client + k;
          auto ad = shop.create(
              workload::workspace_request(32, index, "bench.grid"));
          if (!ad.ok()) {
            failures.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          const auto vm_id = ad.value().get_string(core::attrs::kVmId);
          if (!vm_id.has_value() || !shop.destroy(*vm_id).ok()) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }

    const auto start = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    result.throughput_vm_s =
        elapsed > 0.0 ? static_cast<double>(per_client * clients) / elapsed
                      : 0.0;
    result.failures = failures.load();
  }
  std::filesystem::remove_all(root);
  return result;
}

void report_pipeline(const char* mode, std::size_t clients,
                     const RunResult& run) {
  std::printf("%-10s %8zu %18.1f %10zu\n", mode, clients,
              run.throughput_vm_s, run.failures);
  std::printf("BENCH_JSON {\"name\": \"create.%s.c%zu\", "
              "\"throughput_vm_s\": %.2f, \"clients\": %zu, "
              "\"failures\": %zu, \"cores\": %u}\n",
              mode, clients, run.throughput_vm_s, clients, run.failures,
              std::thread::hardware_concurrency());
}

}  // namespace

int main() {
  // Forensics hook for the CI bench gate: with VMP_TAIL_EXEMPLAR_DIR set,
  // tail-sample the real-pipeline creates and leave the retained slow-tail
  // span trees on disk, so a failed gate run uploads the traces that
  // explain its own regression (DESIGN.md §14).
  const char* exemplar_dir = std::getenv("VMP_TAIL_EXEMPLAR_DIR");
  if (exemplar_dir != nullptr) obs::TailSampler::instance().arm();

  bench::print_header(
      "concurrent creation — DES projection and the real pipeline",
      "future work in the paper: quantify the shared-NFS bottleneck, then "
      "measure the §10 concurrent create path against the serialized one");

  // ---- 1. DES projection ----------------------------------------------------
  // A burst of 64 MB workspace creations described by their real
  // accounting profile (memory checkpoint copy + 16 links + 6 actions).
  cluster::ConcurrentRequest profile;
  profile.memory_bytes = 64ull << 20;
  profile.bytes_to_copy = 64ull << 20;
  profile.links = 16;
  profile.guest_actions = 6;
  profile.isos = 6;
  std::vector<cluster::ConcurrentRequest> burst(64, profile);

  std::printf("%-8s %12s %14s %16s %14s\n", "window", "makespan_s",
              "mean_clone_s", "throughput_vm_s", "nfs_util_%");

  double serial_makespan = 0.0;
  double best_makespan = 1e18;
  for (const std::size_t window : {1, 2, 4, 8, 16, 32, 64}) {
    cluster::ConcurrentCreationSim sim(8, cluster::TimingConfig{}, 11);
    const auto result = sim.run(burst, window);

    util::Summary clone;
    for (const auto& sample : result.samples) clone.add(sample.clone_latency());
    const double throughput = burst.size() / result.makespan_sec;
    const double nfs_util =
        result.nfs_bytes_moved /
        (cluster::TimingConfig{}.nfs_copy_bytes_per_sec * result.makespan_sec);

    std::printf("%-8zu %12.0f %14.1f %16.3f %14.1f\n", window,
                result.makespan_sec, clone.mean(), throughput,
                nfs_util * 100.0);
    if (window == 1) serial_makespan = result.makespan_sec;
    best_makespan = std::min(best_makespan, result.makespan_sec);
  }

  // ---- 2. Real pipeline: serialized vs concurrent ---------------------------
  std::printf("\n%-10s %8s %18s %10s\n", "mode", "clients", "throughput_vm_s",
              "failures");

  std::size_t total_failures = 0;
  double serial_c16 = 0.0;
  double pipeline_c16 = 0.0;
  for (const bool serialize : {true, false}) {
    for (const std::size_t clients : {1, 4, 16}) {
      const RunResult run = run_pipeline(serialize, clients);
      report_pipeline(serialize ? "serial" : "pipeline", clients, run);
      total_failures += run.failures;
      if (clients == 16) {
        (serialize ? serial_c16 : pipeline_c16) = run.throughput_vm_s;
      }
    }
  }

  // Binary-bus ablation: the same concurrent pipeline with every bus hop
  // on the compact binary codec.  Reported but not throughput-gated — the
  // end-to-end number is clone-I/O dominated; the wire-level speedup gate
  // lives in micro_core's codec rows.
  const RunResult binbus = run_pipeline(false, 16, net::WireFormat::kBinary);
  report_pipeline("pipeline-binbus", 16, binbus);
  total_failures += binbus.failures;

  const double speedup = serial_c16 > 0.0 ? pipeline_c16 / serial_c16 : 0.0;
  std::printf("BENCH_JSON {\"name\": \"create.speedup.c16\", "
              "\"speedup\": %.2f, \"cores\": %u}\n",
              speedup, std::thread::hardware_concurrency());

  std::printf("\n");
  char measured[96];
  std::snprintf(measured, sizeof measured, "%.1fx makespan reduction",
                serial_makespan / best_makespan);
  bench::print_summary_row("concurrency.speedup(des)",
                           "untested in the paper (future work)", measured);
  std::snprintf(measured, sizeof measured, "%.2fx at 16 clients", speedup);
  bench::print_summary_row("concurrency.speedup(real)",
                           "concurrent pipeline vs serialized baseline",
                           measured);
  bench::print_summary_row(
      "concurrency.bottleneck",
      "NFS uplink saturates; per-clone latency grows with window",
      "see nfs_util column");

  if (exemplar_dir != nullptr) {
    const std::size_t written =
        obs::TailSampler::instance().dump(exemplar_dir);
    std::printf("tail exemplars: %zu dumped to %s\n", written, exemplar_dir);
    obs::TailSampler::instance().disarm();
  }

  if (total_failures != 0) {
    std::printf("FAILED: %zu creations failed\n", total_failures);
    return 1;
  }
  return 0;
}
