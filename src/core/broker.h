// VMBroker: indirect bidding and creation through an aggregation point.
//
// Paper, Section 3.1: the binding protocol "allows VMShop to request and
// collect bids containing estimated VM creation costs from VMPlants
// (directly, or indirectly through VMBrokers)", and Section 3.3 describes
// deployments where "VMPlants operat[e] inside a private network and [are]
// not directly accessible from outside (but only through VMShop running on
// a Gateway host)".
//
// The broker realizes both: it registers in the public registry as a
// "vmplant" (so shops bid against it transparently) while its member
// plants stay off the registry — reachable only through the broker's bus
// endpoint, like plants behind a private-network gateway.  Estimates fan
// out to members and the minimum (plus an optional markup) is returned;
// creations are forwarded to the member that produced the winning bid;
// query/collect route by the broker's own VMID map.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/request.h"
#include "net/bus.h"
#include "net/registry.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace vmp::core {

struct BrokerConfig {
  std::string name = "broker0";
  /// Added to every forwarded bid (the broker's cut / gateway cost).
  double bid_markup = 0.0;
};

class VmBroker {
 public:
  VmBroker(BrokerConfig config, net::MessageBus* bus,
           net::ServiceRegistry* registry);
  ~VmBroker();

  const std::string& name() const { return config_.name; }

  /// Add a member plant's bus address.  The plant must be reachable on the
  /// bus but need not be in the public registry.
  void add_member(const std::string& plant_address);
  std::vector<std::string> members() const;

  /// Register the broker endpoint and publish it as a "vmplant" so shops
  /// treat it like any other plant.
  util::Status attach_to_bus();
  void detach_from_bus();
  const std::string& bus_address() const { return config_.name; }

  /// Forwarded creations so far (diagnostics).
  std::uint64_t creations_forwarded() const;

 private:
  net::Message handle_message(const net::Message& request_msg);
  net::Message handle_estimate(const net::Message& request_msg);
  net::Message handle_create(const net::Message& request_msg);
  net::Message handle_routed(const net::Message& request_msg);

  /// Member with the cheapest estimate for this request, or an error when
  /// none bids.
  util::Result<std::string> cheapest_member(const net::Message& request_msg);

  BrokerConfig config_;
  net::MessageBus* bus_;
  net::ServiceRegistry* registry_;
  mutable std::mutex mutex_;
  std::vector<std::string> members_;
  std::map<std::string, std::string> vm_to_member_;
  bool attached_ = false;
  // Forwarded creations: process-wide "broker.*" plus the per-broker
  // scoped series the fleet aggregator rolls up per shard.
  obs::Counter* forwarded_;
  obs::Counter* scoped_forwarded_;
};

}  // namespace vmp::core
