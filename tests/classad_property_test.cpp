// Property tests for the classad expression engine: randomly generated
// expression trees must unparse -> reparse -> evaluate identically, and
// evaluation must be total (no crashes, no hangs) over random ads.
#include <gtest/gtest.h>

#include <memory>

#include "classad/classad.h"
#include "classad/matchmaker.h"
#include "util/random.h"

namespace vmp::classad {
namespace {

/// Random expression tree generator.  Depth-bounded; leaves are literals or
/// attribute references into a known attribute universe.
class ExprGen {
 public:
  explicit ExprGen(std::uint64_t seed) : rng_(seed) {}

  ExprPtr gen(int depth) {
    if (depth <= 0 || rng_.bernoulli(0.3)) return leaf();
    switch (rng_.next_below(3)) {
      case 0: {
        static const BinaryOp kOps[] = {
            BinaryOp::kOr,  BinaryOp::kAnd, BinaryOp::kEq,  BinaryOp::kNe,
            BinaryOp::kLt,  BinaryOp::kLe,  BinaryOp::kGt,  BinaryOp::kGe,
            BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul, BinaryOp::kDiv,
            BinaryOp::kMod};
        return std::make_unique<BinaryExpr>(kOps[rng_.next_below(13)],
                                            gen(depth - 1), gen(depth - 1));
      }
      case 1:
        return std::make_unique<UnaryExpr>(
            rng_.bernoulli(0.5) ? UnaryOp::kNot : UnaryOp::kNegate,
            gen(depth - 1));
      default: {
        static const char* kFns[] = {"isUndefined", "int",  "real",
                                     "floor",       "min",  "max",
                                     "strcat",      "isError"};
        const char* fn = kFns[rng_.next_below(8)];
        std::vector<ExprPtr> args;
        const std::size_t arity =
            (std::string(fn) == "min" || std::string(fn) == "max") ? 2 : 1;
        for (std::size_t i = 0; i < arity; ++i) args.push_back(gen(depth - 1));
        return std::make_unique<FunctionExpr>(fn, std::move(args));
      }
    }
  }

  ExprPtr leaf() {
    switch (rng_.next_below(6)) {
      case 0:
        return std::make_unique<LiteralExpr>(
            Value::integer(static_cast<std::int64_t>(rng_.next_below(200)) - 100));
      case 1:
        return std::make_unique<LiteralExpr>(
            Value::real(rng_.uniform(-8.0, 8.0)));
      case 2:
        return std::make_unique<LiteralExpr>(Value::boolean(rng_.bernoulli(0.5)));
      case 3:
        return std::make_unique<LiteralExpr>(
            Value::string("s" + std::to_string(rng_.next_below(4))));
      case 4:
        return std::make_unique<LiteralExpr>(Value::undefined());
      default: {
        static const char* kAttrs[] = {"Memory", "OS", "Disk", "Missing"};
        return std::make_unique<AttrRefExpr>(
            rng_.bernoulli(0.3) ? AttrRefExpr::Scope::kOther
                                : AttrRefExpr::Scope::kDefault,
            kAttrs[rng_.next_below(4)]);
      }
    }
  }

 private:
  util::SplitMix64 rng_;
};

ClassAd sample_ad() {
  ClassAd ad;
  ad.set_integer("Memory", 128);
  ad.set_string("OS", "linux");
  ad.set_real("Disk", 2048.5);
  return ad;
}

class ExprProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExprProperty, UnparseReparseEvaluatesIdentically) {
  ExprGen gen(GetParam());
  const ClassAd self = sample_ad();
  ClassAd other;
  other.set_integer("Memory", 64);

  for (int i = 0; i < 200; ++i) {
    ExprPtr expr = gen.gen(4);
    const std::string text = expr->to_string();
    auto reparsed = parse_expression(text);
    ASSERT_TRUE(reparsed.ok()) << text << ": " << reparsed.error().to_string();

    EvalContext ctx;
    ctx.self = &self;
    ctx.other = &other;
    const Value a = expr->evaluate(ctx);
    EvalContext ctx2;
    ctx2.self = &self;
    ctx2.other = &other;
    const Value b = reparsed.value()->evaluate(ctx2);

    // Reals may differ in the last ulp through the decimal round-trip;
    // format_double is shortest-round-trip so equality should be exact.
    EXPECT_EQ(a.to_string(), b.to_string()) << text;
  }
}

TEST_P(ExprProperty, CloneEvaluatesIdentically) {
  ExprGen gen(GetParam() ^ 0xC10E);
  const ClassAd self = sample_ad();
  for (int i = 0; i < 200; ++i) {
    ExprPtr expr = gen.gen(4);
    ExprPtr copy = expr->clone();
    EvalContext ctx;
    ctx.self = &self;
    EvalContext ctx2;
    ctx2.self = &self;
    EXPECT_EQ(expr->evaluate(ctx).to_string(),
              copy->evaluate(ctx2).to_string());
    EXPECT_EQ(expr->to_string(), copy->to_string());
  }
}

TEST_P(ExprProperty, EvaluationIsTotalWithoutContext) {
  // No self/other at all: every expression must still evaluate to SOME
  // value (UNDEFINED/ERROR permitted, crashes not).
  ExprGen gen(GetParam() ^ 0x707A1);
  for (int i = 0; i < 300; ++i) {
    ExprPtr expr = gen.gen(5);
    EvalContext ctx;
    const Value v = expr->evaluate(ctx);
    (void)v.to_string();
  }
}

TEST_P(ExprProperty, SymmetricMatchIsSymmetricInStructure) {
  // symmetric_match(a, b) uses a.Requirements vs b and b.Requirements vs a;
  // with both Requirements TRUE constants it must hold both ways.
  ClassAd a = sample_ad();
  ClassAd b = sample_ad();
  ASSERT_TRUE(a.set_expression("Requirements", "other.Memory >= 1").ok());
  ASSERT_TRUE(b.set_expression("Requirements", "other.Memory >= 1").ok());
  EXPECT_EQ(symmetric_match(a, b), symmetric_match(b, a));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace vmp::classad
