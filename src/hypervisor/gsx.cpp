#include "hypervisor/gsx.h"

namespace vmp::hv {

using util::Error;
using util::ErrorCode;
using util::Status;

Status GsxHypervisor::validate_clone_source(const CloneSource& source) const {
  if (!source.spec.suspended) {
    return Status(ErrorCode::kFailedPrecondition,
                  "vmware-gsx: golden image must be a suspended checkpoint");
  }
  if (!store_->exists(source.layout.memory_path())) {
    return Status(ErrorCode::kFailedPrecondition,
                  "vmware-gsx: golden image missing memory state: " +
                      source.layout.memory_path());
  }
  return Status();
}

Status GsxHypervisor::do_start(VmInstance* vm) {
  // Resume: the private memory checkpoint must exist (it was copied during
  // cloning); the guest state is already loaded, no boot happens.
  if (!store_->exists(vm->layout.memory_path())) {
    return Status(ErrorCode::kFailedPrecondition,
                  "vmware-gsx: cannot resume, missing memory state for " +
                      vm->id);
  }
  return Status();
}

}  // namespace vmp::hv
