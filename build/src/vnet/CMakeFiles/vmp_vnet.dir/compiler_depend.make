# Empty compiler generated dependencies file for vmp_vnet.
# This may be replaced when dependencies are built.
