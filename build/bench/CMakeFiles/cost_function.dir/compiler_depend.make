# Empty compiler generated dependencies file for cost_function.
# This may be replaced when dependencies are built.
