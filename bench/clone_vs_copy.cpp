// §4.3 baseline: link-based cloning vs full disk copy.
//
// Paper: "the virtual disk of the golden machine in this experiment
// occupies 2GBytes of storage (spanned across 16 files) and takes 210
// seconds to be fully copied — around 4 times slower than the average
// cloning time of the 256MB VM."
//
// This bench measures both paths with the REAL storage operations (links
// vs copies through the ArtifactStore) and times them with the calibrated
// NFS model, then reports the ratio.
#include <cstdio>
#include <filesystem>

#include "common.h"
#include "storage/clone_ops.h"

int main() {
  using namespace vmp;
  bench::print_header(
      "§4.3 — full disk copy vs link-based clone",
      "2 GB / 16-file golden disk copies in 210 s, ~4x the average 256 MB "
      "clone time");

  // Real artefact mechanics: count what each strategy moves.
  const auto sandbox =
      std::filesystem::temp_directory_path() / "vmplants-clonevscopy";
  std::filesystem::remove_all(sandbox);
  storage::ArtifactStore store(sandbox);

  storage::MachineSpec spec;
  spec.os = "linux-mandrake-8.1";
  spec.memory_bytes = 256ull << 20;
  spec.suspended = true;
  spec.disk = {"disk0", 2048ull << 20, 16, storage::DiskMode::kNonPersistent};
  const storage::ImageLayout golden{"warehouse/golden-256mb"};
  if (!storage::materialize_image(&store, golden, spec).ok()) return 1;

  auto linked = storage::clone_image(&store, golden, spec, "clones/linked",
                                     storage::CloneStrategy::kLinked);
  auto copied = storage::clone_image(&store, golden, spec, "clones/copied",
                                     storage::CloneStrategy::kFullCopy);
  if (!linked.ok() || !copied.ok()) return 1;

  const auto lt = linked.value().total();
  const auto ct = copied.value().total();
  std::printf("%-22s %15s %15s %8s\n", "strategy", "bytes_moved", "links",
              "files");
  std::printf("%-22s %15llu %15llu %8llu\n", "linked-clone",
              static_cast<unsigned long long>(lt.bytes_written),
              static_cast<unsigned long long>(lt.links_created),
              static_cast<unsigned long long>(lt.files_touched));
  std::printf("%-22s %15llu %15llu %8llu\n\n", "full-copy",
              static_cast<unsigned long long>(ct.bytes_written),
              static_cast<unsigned long long>(ct.links_created),
              static_cast<unsigned long long>(ct.files_touched));

  // Timing under the calibrated cluster model, averaged over noise draws.
  cluster::TimingModel model(cluster::TimingConfig{}, 42);
  util::Summary copy_times, clone_times;
  for (int i = 0; i < 200; ++i) {
    copy_times.add(
        model.full_copy_sec(spec.disk.capacity_bytes, spec.disk.span_count));

    cluster::CreationObservation obs;
    obs.backend = "vmware-gsx";
    obs.memory_bytes = spec.memory_bytes;
    obs.clone_bytes_copied = lt.bytes_written;
    obs.clone_links = lt.links_created;
    // Average over plant fill levels like the paper's 40-VM run, where
    // each plant ends up hosting 5 resumed 256 MB clones.
    obs.active_vms_before = i % 5;
    obs.resident_before_bytes = obs.active_vms_before * spec.memory_bytes;
    obs.guest_actions = 6;
    obs.isos_connected = 6;
    obs.bidding_plants = 8;
    clone_times.add(model.time_creation(obs).clone_sec);
  }

  std::printf("full copy of golden disk : %.0f s (mean of 200 draws)\n",
              copy_times.mean());
  std::printf("256 MB linked clone      : %.0f s (mean of 200 draws)\n",
              clone_times.mean());
  const double ratio = copy_times.mean() / clone_times.mean();
  std::printf("ratio                    : %.1fx\n\n", ratio);

  char measured[96];
  std::snprintf(measured, sizeof measured, "%.0f s", copy_times.mean());
  bench::print_summary_row("clone_vs_copy.full_copy_time", "210 s", measured);
  std::snprintf(measured, sizeof measured, "%.1fx", ratio);
  bench::print_summary_row("clone_vs_copy.speedup", "around 4x", measured);

  std::filesystem::remove_all(sandbox);
  return 0;
}
