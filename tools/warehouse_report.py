#!/usr/bin/env python3
"""Summarize warehouse lifecycle churn: hit rates, evictions, reclaimed bytes.

Accepts either (auto-detected per line, both may be mixed in one input):

  * BENCH_JSON lines from bench/warehouse_churn —
        BENCH_JSON {"name": "churn.gdsf", "hit_rate": 0.58, ...}
    rendered as a per-policy hit/miss table;

  * metrics-export JSONL (FleetAggregator::export_jsonl, or any file of
    {"id": ..., "attrs": {...}} ads) — the lifecycle_* attributes
    (lifecycle.* metric names in their classad-folded spelling) are
    rendered as a lease/eviction/reclaim summary per exporting plant.

Usage:
    build/bench/warehouse_churn | python3 tools/warehouse_report.py -
    python3 tools/warehouse_report.py fleet.jsonl [--json]
"""

import argparse
import json
import re
import sys

BENCH_LINE = re.compile(r"^BENCH_JSON\s+(\{.*\})\s*$")


def load(stream):
    """Split input lines into churn records and lifecycle ads."""
    churn = {}
    ads = []
    for line in stream:
        line = line.strip()
        match = BENCH_LINE.match(line)
        if match:
            record = json.loads(match.group(1))
            name = record.get("name", "")
            if name.startswith("churn."):
                churn[name[len("churn."):]] = record
            continue
        if not line.startswith("{"):
            continue
        try:
            ad = json.loads(line)
        except json.JSONDecodeError:
            continue
        attrs = ad.get("attrs", {})
        if any(key.startswith("lifecycle_") for key in attrs):
            ads.append(ad)
    return churn, ads


def churn_summary(churn):
    policies = {}
    for policy, record in sorted(churn.items()):
        hits = int(record.get("hits", 0))
        misses = int(record.get("misses", 0))
        total = hits + misses
        policies[policy] = {
            "hit_rate": float(record.get("hit_rate",
                                         hits / total if total else 0.0)),
            "hits": hits,
            "misses": misses,
            "rejected_publishes": int(record.get("failures", 0)),
        }
    return policies


def print_churn(policies):
    header = f"{'policy':<8} {'hit-rate':>9} {'hits':>8} {'misses':>8} {'rejected':>9}"
    print(header)
    print("-" * len(header))
    for policy, row in policies.items():
        print(f"{policy:<8} {row['hit_rate']:>9.4f} {row['hits']:>8} "
              f"{row['misses']:>8} {row['rejected_publishes']:>9}")
    if "gdsf" in policies and "lru" in policies and policies["lru"]["hit_rate"]:
        ratio = policies["gdsf"]["hit_rate"] / policies["lru"]["hit_rate"]
        print(f"\ngdsf/lru hit-rate ratio: {ratio:.2f}x at equal quota")


def lifecycle_summary(ads):
    """Latest lifecycle_* attrs per ad id (a plant, or obs://metrics)."""
    plants = {}
    for ad in ads:
        attrs = ad.get("attrs", {})
        hit = int(attrs.get("lifecycle_lease_hit_count", 0))
        miss = int(attrs.get("lifecycle_lease_miss_count", 0))
        total = hit + miss
        plants[ad.get("id", "?")] = {
            "lease_hits": hit,
            "lease_misses": miss,
            "lease_hit_rate": hit / total if total else 1.0,
            "evictions": int(attrs.get("lifecycle_evict_count", 0)),
            "zombie_evictions": int(attrs.get("lifecycle_evict_zombie_count", 0)),
            "zombie_reaps": int(attrs.get("lifecycle_reap_count", 0)),
            "orphan_reaps": int(attrs.get("lifecycle_orphan_reap_count", 0)),
            "rejected_publishes": int(
                attrs.get("lifecycle_publish_reject_count", 0)),
            "bytes_reclaimed": int(
                attrs.get("lifecycle_bytes_reclaimed_count", 0)),
            "used_bytes": int(attrs.get("lifecycle_used_bytes_gauge", 0)),
            "zombies_now": int(attrs.get("lifecycle_zombies_gauge", 0)),
        }
    return plants


def print_lifecycle(plants):
    header = (f"{'source':<24} {'lease-hit%':>10} {'evict':>6} {'zombie':>7} "
              f"{'reaped':>7} {'orphans':>8} {'reject':>7} "
              f"{'reclaimed MB':>13} {'used MB':>9} {'zombies':>8}")
    print(header)
    print("-" * len(header))
    for source in sorted(plants):
        row = plants[source]
        print(f"{source:<24} {row['lease_hit_rate'] * 100:>9.1f}% "
              f"{row['evictions']:>6} {row['zombie_evictions']:>7} "
              f"{row['zombie_reaps']:>7} {row['orphan_reaps']:>8} "
              f"{row['rejected_publishes']:>7} "
              f"{row['bytes_reclaimed'] / 2**20:>13.1f} "
              f"{row['used_bytes'] / 2**20:>9.1f} {row['zombies_now']:>8}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("input",
                        help="BENCH_JSON / metrics-JSONL file, or - for stdin")
    parser.add_argument("--json", action="store_true",
                        help="emit one machine-readable summary object")
    args = parser.parse_args()

    if args.input == "-":
        churn, ads = load(sys.stdin)
    else:
        with open(args.input, "r", encoding="utf-8") as fh:
            churn, ads = load(fh)

    policies = churn_summary(churn)
    plants = lifecycle_summary(ads)
    if not policies and not plants:
        print("no churn BENCH_JSON lines or lifecycle_* ads found",
              file=sys.stderr)
        return 1

    if args.json:
        print(json.dumps({"churn": policies, "lifecycle": plants}, indent=2))
        return 0

    if policies:
        print_churn(policies)
    if plants:
        if policies:
            print()
        print_lifecycle(plants)
    return 0


if __name__ == "__main__":
    sys.exit(main())
