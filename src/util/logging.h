// Minimal thread-safe structured logger.
//
// Services in this repo (VMShop, VMPlant daemons, the simulated cluster) run
// on multiple threads; the logger serializes lines and tags them with a
// component name, mirroring the per-daemon logs of the original prototype.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace vmp::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; defaults to kWarn so tests and benches stay quiet.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line: "[level] component: message".  Thread-safe.
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

/// Stream-style helper: Logger("vmshop").info() << "bid won by " << plant;
class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  class Line {
   public:
    Line(LogLevel level, const std::string& component)
        : level_(level),
          component_(component),
          active_(level >= log_level()) {}
    Line(const Line&) = delete;
    Line& operator=(const Line&) = delete;
    ~Line() {
      if (active_) log_line(level_, component_, stream_.str());
    }
    template <typename T>
    Line& operator<<(const T& v) {
      if (active_) stream_ << v;
      return *this;
    }

   private:
    LogLevel level_;
    const std::string& component_;
    std::ostringstream stream_;
    bool active_;
  };

  Line debug() const { return Line(LogLevel::kDebug, component_); }
  Line info() const { return Line(LogLevel::kInfo, component_); }
  Line warn() const { return Line(LogLevel::kWarn, component_); }
  Line error() const { return Line(LogLevel::kError, component_); }

  const std::string& component() const { return component_; }

 private:
  std::string component_;
};

}  // namespace vmp::util
