file(REMOVE_RECURSE
  "CMakeFiles/vmp_workload.dir/dag_library.cpp.o"
  "CMakeFiles/vmp_workload.dir/dag_library.cpp.o.d"
  "CMakeFiles/vmp_workload.dir/request_gen.cpp.o"
  "CMakeFiles/vmp_workload.dir/request_gen.cpp.o.d"
  "libvmp_workload.a"
  "libvmp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
