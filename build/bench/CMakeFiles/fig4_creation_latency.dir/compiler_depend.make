# Empty compiler generated dependencies file for fig4_creation_latency.
# This may be replaced when dependencies are built.
