// Small string helpers shared by the XML, classad and DAG layers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace vmp::util {

/// Split on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char sep);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

std::string to_lower(std::string_view text);

/// Parse helpers returning false on malformed input (no exceptions).
bool parse_int64(std::string_view text, long long* out);
bool parse_double(std::string_view text, double* out);

/// Render a double without trailing zero noise ("4", "4.5", "0.0625").
std::string format_double(double v);

}  // namespace vmp::util
