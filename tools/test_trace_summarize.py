#!/usr/bin/env python3
"""Tests for trace_summarize.py's critical-path attribution.

Run directly (``python3 tools/test_trace_summarize.py``) or through ctest
(registered in tools/CMakeLists.txt with label ``obs-tail``).

The golden-fixture case asserts the SAME self-times that
tests/tail_test.cpp::CriticalPathTest.GoldenFixtureSelfTimes hard-codes
against the C++ analyzer, so the two implementations are proven equal by
transitivity on tests/traces/tail_golden.jsonl.
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import trace_summarize as ts  # noqa: E402


def fixture_path():
    trace_dir = os.environ.get(
        "VMP_TRACE_DIR",
        os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     os.pardir, "tests", "traces"))
    return os.path.join(trace_dir, "tail_golden.jsonl")


def span(span_id, parent, name, start, end=None, **extra):
    s = {"trace": "t", "span": span_id, "parent": parent, "name": name,
         "component": "test", "start": start}
    if end is not None:
        s["end"] = end
    s.update(extra)
    return s


class GoldenFixtureTest(unittest.TestCase):
    def test_self_times_match_cpp_analyzer(self):
        spans = ts.load_spans(fixture_path())
        path = ts.critical_path(spans)
        got = [(s.get("name"), round(self_t, 6)) for s, self_t in path]
        # Keep these literals in sync with tail_test.cpp's
        # GoldenFixtureSelfTimes — they are the shared golden answer.
        self.assertEqual(got, [
            ("shop.create", 0.1),
            ("plant.create", 0.1),
            ("lifecycle.publish", 0.2),
            ("lifecycle.evict_to_fit", 0.4),
        ])
        self.assertAlmostEqual(ts.duration_of(path[0][0]), 1.0)


class DegradedTraceTest(unittest.TestCase):
    def test_missing_end_attributes_zero(self):
        self.assertEqual(ts.duration_of({"start": 0.5}), 0.0)

    def test_end_before_start_clamps_to_zero(self):
        self.assertEqual(ts.duration_of({"start": 2.0, "end": 1.0}), 0.0)

    def test_open_span_on_path_does_not_crash(self):
        spans = [
            span(1, 0, "root", 0.0, 1.0),
            span(2, 1, "open-child", 0.1),  # crashed mid-span: no end
        ]
        path = ts.critical_path(spans)
        # The open child attributes zero, so the root keeps its full second.
        self.assertEqual([(s["name"], t) for s, t in path],
                         [("root", 1.0), ("open-child", 0.0)])

    def test_orphaned_parent_reparents_to_virtual_root(self):
        spans = [
            span(1, 0, "root", 0.0, 1.0),
            span(6, 99, "orphan", 0.0, 0.3),  # parent 99 never closed
        ]
        path = ts.critical_path(spans)
        # The orphan competes as a root instead of vanishing; the real root
        # is longer and wins.
        self.assertEqual(path[0][0]["name"], "root")
        # With the real root gone the orphan IS the trace.
        path = ts.critical_path(spans[1:])
        self.assertEqual([(s["name"], round(t, 6)) for s, t in path],
                         [("orphan", 0.3)])

    def test_empty_and_rootless_traces_yield_empty_path(self):
        self.assertEqual(ts.critical_path([]), [])
        # Spans forming a cycle with no root still terminate.
        self.assertEqual(
            ts.critical_path([span(1, 2, "a", 0, 1), span(2, 1, "b", 0, 1)]),
            [])

    def test_self_time_clamps_when_children_overlap(self):
        spans = [
            span(1, 0, "root", 0.0, 1.0),
            span(2, 1, "a", 0.0, 0.8),
            span(3, 1, "b", 0.3, 0.9),  # overlaps a: sum of kids > parent
        ]
        path = ts.critical_path(spans)
        self.assertEqual(path[0][0]["name"], "root")
        self.assertEqual(path[0][1], 0.0)  # clamped, not negative


if __name__ == "__main__":
    unittest.main()
