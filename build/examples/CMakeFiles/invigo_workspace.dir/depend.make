# Empty dependencies file for invigo_workspace.
# This may be replaced when dependencies are built.
