#include "obs/export.h"

#include "fault/fault.h"

namespace vmp::obs {

std::string attr_name(const std::string& metric_name) {
  std::string out = metric_name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

std::vector<TraceSummary> summarize_traces(const std::vector<Span>& spans) {
  std::vector<TraceSummary> out;
  std::map<std::string, std::size_t> index;  // trace_id -> out position
  for (const Span& span : spans) {
    auto it = index.find(span.trace_id);
    if (it == index.end()) {
      it = index.emplace(span.trace_id, out.size()).first;
      out.push_back(TraceSummary{});
      out.back().trace_id = span.trace_id;
    }
    TraceSummary& summary = out[it->second];
    ++summary.span_count;
    if (!span.ok()) ++summary.error_count;
    if (span.status == "retry") ++summary.retry_count;
    if (!span.vm_id.empty()) summary.vm_id = span.vm_id;
    summary.phase_seconds[span.name] += span.duration_s();
    if (span.parent_id == 0) {
      summary.root_name = span.name;
      summary.duration_s = span.duration_s();
    }
  }
  // Traces whose root never closed: report the span extent instead.
  for (TraceSummary& summary : out) {
    if (!summary.root_name.empty()) continue;
    double lo = 0.0, hi = 0.0;
    bool first = true;
    for (const Span& span : spans) {
      if (span.trace_id != summary.trace_id) continue;
      if (first || span.start_s < lo) lo = span.start_s;
      if (first || span.end_s > hi) hi = span.end_s;
      first = false;
    }
    summary.duration_s = hi - lo;
  }
  return out;
}

classad::ClassAd metrics_ad(const MetricsSnapshot& snapshot,
                            const util::FaultReport& faults) {
  classad::ClassAd ad;
  ad.set_string(export_attrs::kKind, "metrics");
  for (const auto& [name, value] : snapshot.counters) {
    ad.set_integer(attr_name(name), static_cast<std::int64_t>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    ad.set_integer(attr_name(name), value);
  }
  for (const auto& [name, stats] : snapshot.timers) {
    const std::string base = attr_name(name);
    ad.set_integer(base + "_count", static_cast<std::int64_t>(stats.count));
    ad.set_real(base + "_mean", stats.mean_s);
    ad.set_real(base + "_min", stats.min_s);
    ad.set_real(base + "_max", stats.max_s);
    ad.set_real(base + "_sum", stats.sum_s);
    ad.set_real(base + "_p50", stats.p50_s);
    ad.set_real(base + "_p90", stats.p90_s);
    ad.set_real(base + "_p99", stats.p99_s);
    ad.set_real(base + "_p999", stats.p999_s);
    if (!stats.hist.empty()) ad.set_string(base + "_hist", stats.hist.encode());
  }
  for (const auto& [point, count] : faults.by_point()) {
    ad.set_integer("fault_" + attr_name(point) + "_count",
                   static_cast<std::int64_t>(count));
  }
  if (auto ratio =
          snapshot.ratio("ppp.plan_hit.count", "ppp.plan_miss.count")) {
    ad.set_real(export_attrs::kWarehouseHitRatio, *ratio);
  }
  return ad;
}

MetricsSnapshot metrics_snapshot_from_ad(const classad::ClassAd& ad) {
  MetricsSnapshot snap;
  // Timer attrs are "<base>_seconds_<component>"; everything else is
  // classified by value type and the _gauge naming suffix.
  static constexpr const char* kTimerComponents[] = {
      "count", "mean", "min", "max", "sum", "p50", "p90", "p99", "p999",
      "hist"};
  for (const std::string& name : ad.names()) {
    std::string base, component;
    for (const char* c : kTimerComponents) {
      const std::string suffix = std::string("_") + c;
      if (name.size() > suffix.size() && name.ends_with(suffix)) {
        std::string candidate = name.substr(0, name.size() - suffix.size());
        if (candidate.ends_with("_seconds")) {
          base = std::move(candidate);
          component = c;
          break;
        }
      }
    }
    if (!base.empty()) {
      TimerStats& stats = snap.timers[base];
      if (component == "hist") {
        if (auto text = ad.get_string(name)) {
          if (auto hist = HistogramSnapshot::decode(*text)) {
            stats.hist = std::move(*hist);
          }
        }
        continue;
      }
      const auto value = ad.get_number(name);
      if (!value.has_value()) continue;
      if (component == "count") {
        stats.count = static_cast<std::size_t>(*value);
      } else if (component == "mean") {
        stats.mean_s = *value;
      } else if (component == "min") {
        stats.min_s = *value;
      } else if (component == "max") {
        stats.max_s = *value;
      } else if (component == "sum") {
        stats.sum_s = *value;
      } else if (component == "p50") {
        stats.p50_s = *value;
      } else if (component == "p90") {
        stats.p90_s = *value;
      } else if (component == "p99") {
        stats.p99_s = *value;
      } else if (component == "p999") {
        stats.p999_s = *value;
      }
      continue;
    }
    if (auto integer = ad.get_integer(name)) {
      if (name.ends_with("_gauge")) {
        snap.gauges[name] = *integer;
      } else {
        snap.counters[name] = static_cast<std::uint64_t>(
            std::max<std::int64_t>(0, *integer));
      }
      continue;
    }
    if (auto real = ad.get_number(name)) {
      snap.derived[name] = *real;
      if (name == export_attrs::kWarehouseHitRatio) {
        // Serve ratio("ppp.plan_hit.count", "ppp.plan_miss.count") on
        // pre-merged snapshots whose raw counters were dropped.
        snap.derived["ppp_plan_hit_count/ppp_plan_miss_count"] = *real;
      }
    }
  }
  for (auto& [name, stats] : snap.timers) {
    if (!stats.hist.empty() && stats.p50_s == 0.0 && stats.p99_s == 0.0) {
      stats.refresh_quantiles();
    }
  }
  return snap;
}

classad::ClassAd trace_summary_ad(const TraceSummary& summary) {
  classad::ClassAd ad;
  ad.set_string(export_attrs::kKind, "trace");
  ad.set_string(export_attrs::kTraceId, summary.trace_id);
  if (!summary.root_name.empty()) {
    ad.set_string(export_attrs::kRootSpan, summary.root_name);
  }
  if (!summary.vm_id.empty()) {
    ad.set_string(export_attrs::kVmId, summary.vm_id);
  }
  ad.set_real(export_attrs::kDurationSeconds, summary.duration_s);
  ad.set_integer(export_attrs::kSpanCount,
                 static_cast<std::int64_t>(summary.span_count));
  ad.set_integer(export_attrs::kErrorCount,
                 static_cast<std::int64_t>(summary.error_count));
  ad.set_integer(export_attrs::kRetryCount,
                 static_cast<std::int64_t>(summary.retry_count));
  for (const auto& [phase, seconds] : summary.phase_seconds) {
    ad.set_real("Phase_" + attr_name(phase), seconds);
  }
  return ad;
}

classad::ClassAd tail_exemplar_ad(const TailExemplar& exemplar) {
  classad::ClassAd ad;
  ad.set_string(export_attrs::kKind, "tail");
  ad.set_string(export_attrs::kTraceId, exemplar.trace_id);
  ad.set_string(export_attrs::kRootSpan, exemplar.op);
  ad.set_string(export_attrs::kCause, exemplar.cause);
  ad.set_real(export_attrs::kDurationSeconds, exemplar.duration_s);
  ad.set_real(export_attrs::kThresholdSeconds, exemplar.threshold_s);
  ad.set_integer(export_attrs::kSpanCount,
                 static_cast<std::int64_t>(exemplar.spans.size()));
  ad.set_integer(export_attrs::kEventCount,
                 static_cast<std::int64_t>(exemplar.events.size()));
  for (const auto& [stage, seconds] : self_times(exemplar.path)) {
    ad.set_real("CriticalSelf_" + attr_name(stage), seconds);
  }
  return ad;
}

ExportBundle export_bundle() {
  ExportBundle bundle;
  bundle.metrics = metrics_ad(MetricsRegistry::instance().snapshot(),
                              fault::FaultRegistry::instance().report());
  for (const TraceSummary& summary :
       summarize_traces(Tracer::instance().spans())) {
    if (summary.vm_id.empty()) continue;
    bundle.vm_traces.emplace_back(summary.vm_id, trace_summary_ad(summary));
  }
  for (const TailExemplar& exemplar : TailSampler::instance().exemplars()) {
    bundle.tail_exemplars.emplace_back(exemplar.trace_id,
                                       tail_exemplar_ad(exemplar));
  }
  return bundle;
}

}  // namespace vmp::obs
