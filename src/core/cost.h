// Cost models for the VMShop bidding protocol.
//
// Paper, Section 3.4: "The current implementation splits the VM creation
// cost into 'compute cycles cost', and the 'network cost'.  The first
// component is proportional to the number of VMs already operating on the
// VMPlant ... The second component is a one-time charge for a host-only
// network, required only when a free host-only network is allocated to the
// client domain."  The worked example uses network cost 50 and compute cost
// 4 x VMs, yielding the 13-VM crossover reproduced in bench/cost_function.
//
// Section 4.1 notes the prototype's bidding actually "uses a cost model
// that is based on the amount of host memory available for cloned VMs";
// both models are provided and ablatable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/error.h"

namespace vmp::core {

/// Plant-side facts a cost model may consult when bidding.
struct PlantLoad {
  std::size_t active_vms = 0;
  std::size_t max_vms = 0;
  std::uint64_t host_memory_bytes = 0;
  std::uint64_t resident_memory_bytes = 0;
  /// Would this request's domain need a fresh host-only network here?
  bool needs_new_network = false;
  /// Can the plant serve the domain at all (network-wise)?
  bool network_available = false;
  /// Memory the requested VM would occupy.
  std::uint64_t request_memory_bytes = 0;
};

class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Cost bid for creating one VM under this load, or an error when the
  /// plant cannot serve the request at all (full, no network, ...).
  /// "Costs are generically represented as numbers" (paper §3.1).
  virtual util::Result<double> estimate(const PlantLoad& load) const = 0;

  virtual std::string name() const = 0;
};

/// The paper's Section 3.4 model: one-time network cost + per-VM compute
/// cost.
class NetworkComputeCostModel final : public CostModel {
 public:
  NetworkComputeCostModel(double network_cost = 50.0,
                          double compute_cost_per_vm = 4.0)
      : network_cost_(network_cost),
        compute_cost_per_vm_(compute_cost_per_vm) {}

  util::Result<double> estimate(const PlantLoad& load) const override;
  std::string name() const override { return "network-compute"; }

  double network_cost() const { return network_cost_; }
  double compute_cost_per_vm() const { return compute_cost_per_vm_; }

 private:
  double network_cost_;
  double compute_cost_per_vm_;
};

/// The prototype's model (paper §4.1): bid by scarcity of host memory.
/// Lower available memory -> higher cost; a plant that cannot fit the VM
/// refuses to bid.
class MemoryAvailableCostModel final : public CostModel {
 public:
  /// `scale` converts a memory fraction into cost units.
  explicit MemoryAvailableCostModel(double scale = 100.0) : scale_(scale) {}

  util::Result<double> estimate(const PlantLoad& load) const override;
  std::string name() const override { return "memory-available"; }

 private:
  double scale_;
};

std::unique_ptr<CostModel> make_cost_model(const std::string& name);

}  // namespace vmp::core
