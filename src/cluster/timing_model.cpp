#include "cluster/timing_model.h"

#include <algorithm>
#include <cmath>

namespace vmp::cluster {

double TimingModel::noisy(double base) {
  if (base <= 0.0) return 0.0;
  // Lognormal with unit median: exp(N(0, sigma)).
  return base * noise_.lognormal(0.0, config_.noise_sigma);
}

double TimingModel::pressure_multiplier(std::uint64_t resident_bytes,
                                        std::uint64_t active_vms,
                                        std::uint64_t new_vm_bytes) const {
  const double usable = static_cast<double>(config_.host_memory_bytes) *
                        config_.usable_memory_fraction;
  if (usable <= 0.0) return 1.0;
  const double after =
      static_cast<double>(resident_bytes + new_vm_bytes +
                          (active_vms + 1) * config_.per_vm_overhead_bytes);
  const double ratio = after / usable;
  return 1.0 + config_.pressure_gain *
                   std::max(0.0, ratio - config_.pressure_knee);
}

CreationTiming TimingModel::time_creation(const CreationObservation& obs) {
  CreationTiming t;

  if (obs.speculative_hit) {
    // The clone+resume happened ahead of demand; only adoption remains.
    t.clone_sec = noisy(config_.speculative_adopt_sec);
    t.config_sec = noisy(
        static_cast<double>(obs.isos_connected) * config_.iso_connect_sec +
        static_cast<double>(obs.guest_actions) * config_.guest_action_sec);
    t.shop_sec = noisy(config_.shop_fixed_sec +
                       static_cast<double>(obs.bidding_plants) *
                           config_.bid_per_plant_sec);
    t.total_sec = t.clone_sec + t.config_sec + t.shop_sec;
    return t;
  }

  // -- Clone phase ------------------------------------------------------------
  // Copied state (memory checkpoint, config, base redo) moves over the NFS
  // path; links are metadata operations.
  double clone = config_.clone_fixed_sec;
  clone += static_cast<double>(obs.clone_bytes_copied) /
           config_.nfs_copy_bytes_per_sec;
  clone += static_cast<double>(obs.clone_links) * config_.link_op_sec;

  // -- Instantiate ------------------------------------------------------------
  double instantiate;
  if (obs.backend == "uml") {
    instantiate = config_.uml_boot_sec;
  } else if (obs.backend == "xen") {
    instantiate = config_.xen_boot_sec;
  } else {
    instantiate = config_.resume_fixed_sec +
                  static_cast<double>(obs.memory_bytes) /
                      config_.resume_read_bytes_per_sec;
  }

  // Memory pressure applies to the state movement and the resume/boot: the
  // host is paging while the VMM faults the checkpoint in.
  const double pressure = pressure_multiplier(
      obs.resident_before_bytes, obs.active_vms_before, obs.memory_bytes);

  t.clone_sec = noisy((clone + instantiate) * pressure);

  // -- Configure ----------------------------------------------------------------
  double config_time =
      static_cast<double>(obs.isos_connected) * config_.iso_connect_sec +
      static_cast<double>(obs.guest_actions) * config_.guest_action_sec;
  t.config_sec = noisy(config_time);

  // -- Shop ---------------------------------------------------------------------
  t.shop_sec = noisy(config_.shop_fixed_sec +
                     static_cast<double>(obs.bidding_plants) *
                         config_.bid_per_plant_sec);

  t.total_sec = t.clone_sec + t.config_sec + t.shop_sec;
  return t;
}

double TimingModel::full_copy_sec(std::uint64_t bytes, std::uint64_t files) {
  return noisy(static_cast<double>(bytes) / config_.nfs_copy_bytes_per_sec +
               static_cast<double>(files) * config_.per_file_copy_overhead_sec +
               config_.clone_fixed_sec);
}

}  // namespace vmp::cluster
