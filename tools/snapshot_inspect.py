#!/usr/bin/env python3
"""Pretty-print a VMPlants binary wire frame (net/codec.h, DESIGN.md §15).

Usage:
  tools/snapshot_inspect.py tests/fixtures/wire/v1-snapshot.bin
  tools/snapshot_inspect.py --raw v1-descriptor.bin   # skip payload decode

Mirrors the C++ codec independently (frame header, frame_checksum32,
LEB128 varints, length-prefixed strings, snapshot sections), so a frame
can be inspected — and its checksum verified — without building the tree.
Understands all four frame tags; unknown snapshot section ids are listed
and skipped, exactly like the C++ decoder.
"""

import argparse
import struct
import sys

TAGS = {1: "message", 2: "descriptor", 3: "classad", 4: "snapshot"}
KINDS = {0: "request", 1: "response", 2: "event", 3: "fault"}
DISK_MODES = {0: "persistent", 1: "non-persistent"}
SECTIONS = {1: "meta", 2: "warehouse", 3: "ledger", 4: "ads"}

MASK32 = 0xFFFFFFFF


def frame_checksum32(data: bytes) -> int:
    """Two interleaved 32-bit FNV-1a lanes over LE words (util/bytebuffer.cpp)."""
    prime = 16777619
    lane0, lane1 = 2166136261, 0x9747B28C
    n = len(data)
    off = 0
    while n - off >= 8:
        w0, w1 = struct.unpack_from("<II", data, off)
        lane0 = ((lane0 ^ w0) * prime) & MASK32
        lane1 = ((lane1 ^ w1) * prime) & MASK32
        off += 8
    tail = (n - off) << 56
    tail |= int.from_bytes(data[off:], "little")
    lane0 = ((lane0 ^ (tail & MASK32)) * prime) & MASK32
    lane1 = ((lane1 ^ (tail >> 32)) * prime) & MASK32
    h = lane0 ^ (((lane1 << 16) | (lane1 >> 16)) & MASK32)
    h ^= h >> 15
    h = (h * 0x85EBCA6B) & MASK32
    h ^= h >> 13
    return h


class Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.off = 0

    def take(self, n: int) -> bytes:
        if self.off + n > len(self.data):
            raise ValueError(f"read of {n} bytes past end at offset {self.off}")
        out = self.data[self.off : self.off + n]
        self.off += n
        return out

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self.take(8))[0]

    def varint(self) -> int:
        v, shift = 0, 0
        while True:
            b = self.u8()
            v |= (b & 0x7F) << shift
            if not b & 0x80:
                return v
            shift += 7
            if shift >= 70:
                raise ValueError("varint longer than 10 bytes")

    def string(self) -> str:
        return self.take(self.varint()).decode("utf-8", "backslashreplace")

    def boolean(self) -> bool:
        return self.u8() == 1

    def done(self) -> bool:
        return self.off == len(self.data)


def print_element(r: Reader, indent: str) -> None:
    name = r.string()
    attrs = {r.string(): r.string() for _ in range(r.varint())}
    text = r.string()
    rendered = " ".join(f'{k}="{v}"' for k, v in attrs.items())
    line = f"{indent}<{name}{' ' + rendered if rendered else ''}>"
    if text:
        line += f" text={text!r}"
    print(line)
    for _ in range(r.varint()):
        print_element(r, indent + "  ")


def print_message(r: Reader) -> None:
    kind = r.u8()
    print(f"  kind        {KINDS.get(kind, kind)}")
    for field in ("service", "from", "to", "correlation", "trace_id"):
        print(f"  {field:<11} {r.string()}")
    print(f"  span_id     {r.varint()}")
    print("  body:")
    print_element(r, "    ")


def print_descriptor(r: Reader) -> None:
    print(f"  id          {r.string()}")
    print(f"  backend     {r.string()}")
    print(f"  dir         {r.string()}")
    print(f"  spec        os={r.string()} memory={r.varint()} "
          f"suspended={r.boolean()}")
    print(f"  disk        name={r.string()} capacity={r.varint()} "
          f"spans={r.varint()} mode={DISK_MODES.get(r.u8(), '?')}")
    print(f"  guest       os={r.string()} hostname={r.string()} "
          f"ip={r.string()} mac={r.string()}")
    print(f"  packages    {[r.string() for _ in range(r.varint())]}")
    print(f"  users       {[(r.string(), r.string()) for _ in range(r.varint())]}")
    print(f"  mounts      {[(r.string(), r.string()) for _ in range(r.varint())]}")
    print(f"  services    {[r.string() for _ in range(r.varint())]}")
    files = [(r.string(), r.string()) for _ in range(r.varint())]
    print(f"  files       {[(p, f'{len(c)}B') for p, c in files]}")
    print(f"  performed   {[r.string() for _ in range(r.varint())]}")


def print_classad(r: Reader, indent: str = "  ") -> None:
    for _ in range(r.varint()):
        print(f"{indent}{r.string()} = {r.string()}")


def print_snapshot(r: Reader) -> None:
    while not r.done():
        section_id = r.varint()
        body = Reader(r.take(r.varint()))
        name = SECTIONS.get(section_id, f"unknown-{section_id}")
        print(f"  section {section_id} ({name}), {len(body.data)} bytes")
        if section_id == 1:
            for _ in range(body.varint()):
                print(f"    {body.string()} = {body.string()}")
        elif section_id == 2:
            print(f"    base_dir {body.string()}")
            for _ in range(body.varint()):
                print_descriptor(body)  # descriptor payloads, back to back
        elif section_id == 3:
            print(f"    policy {body.string()} clock {body.f64()} "
                  f"used_bytes {body.varint()} tick {body.varint()}")
            for _ in range(body.varint()):
                print(f"    entry id={body.string()} dir={body.string()} "
                      f"bytes={body.varint()} files={body.varint()} "
                      f"hits={body.varint()} last_use={body.varint()} "
                      f"leases={body.varint()} rebuild_s={body.f64()} "
                      f"pinned={body.boolean()} zombie={body.boolean()}")
        elif section_id == 4:
            for _ in range(body.varint()):
                print(f"    ad {body.string()}:")
                print_classad(body, "      ")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("frame", help="path to a .bin wire frame")
    ap.add_argument("--raw", action="store_true",
                    help="header + checksum only, skip payload decode")
    args = ap.parse_args()

    with open(args.frame, "rb") as f:
        blob = f.read()
    if len(blob) < 12:
        print(f"not a frame: {len(blob)} bytes (< 12-byte header)")
        return 1
    if blob[:2] != b"VW":
        print(f"bad magic {blob[:2]!r} (want b'VW')")
        return 1
    tag, version = blob[2], blob[3]
    length, checksum = struct.unpack_from("<II", blob, 4)
    payload = blob[12:]
    computed = frame_checksum32(payload)
    print(f"frame   {args.frame}")
    print(f"tag     {tag} ({TAGS.get(tag, 'unknown')})   version {version}")
    print(f"payload {length} bytes declared, {len(payload)} present")
    ok = length == len(payload) and computed == checksum
    print(f"checksum 0x{checksum:08x} header, 0x{computed:08x} computed "
          f"-> {'OK' if computed == checksum else 'MISMATCH'}")
    if not ok or args.raw:
        return 0 if ok else 1

    r = Reader(payload)
    try:
        if tag == 1:
            print_message(r)
        elif tag == 2:
            print_descriptor(r)
        elif tag == 3:
            print_classad(r)
        elif tag == 4:
            print_snapshot(r)
        else:
            print(f"  (unknown tag, {len(payload)} payload bytes)")
            return 1
        if not r.done():
            print(f"  WARNING: {len(payload) - r.off} trailing bytes")
            return 1
    except ValueError as err:
        print(f"  decode error: {err}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
