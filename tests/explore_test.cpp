// State-space explorer tests: exact schedule counts on toy configurations,
// sleep-set pruning soundness, deterministic trace replay (in-process and
// across processes via the vmp_explore tool), and the checked-in regression
// trace corpus for the PR 5 lifecycle review bugs.
//
// The build injects VMP_EXPLORE_TOOL (path to the vmp_explore binary) and
// VMP_TRACE_DIR (path to tests/traces) as compile definitions.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "explore/explorer.h"
#include "explore/lifecycle_scenario.h"
#include "explore/trace.h"

namespace vmp::explore {
namespace {

// -- Toy scenarios -----------------------------------------------------------

/// N events tied at t=1; each appends its letter to a log.  No two events
/// commute, so the explorer must enumerate every permutation: N! schedules.
class TieScenario : public Scenario {
 public:
  explicit TieScenario(int n) : n_(n) {}
  std::string name() const override { return "toy-tie"; }
  util::Status setup(sim::Engine* engine) override {
    for (int i = 0; i < n_; ++i) {
      const char letter = static_cast<char>('a' + i);
      engine->schedule_at(1.0, [this, letter] { log_ += letter; },
                          std::string(1, letter));
    }
    return util::Status();
  }
  std::string digest() override { return digest_hex(log_); }
  std::vector<Invariant> invariants() override { return {}; }

 protected:
  int n_;
  std::string log_;
};

/// Three tied events over two counters: a adds, b adds, c doubles.  a and b
/// commute (declared independent); either is dependent with c.  Distinct
/// terminal states: 4 of the 6 orders (ab/ba and cab/cba collapse).
class CommuteScenario : public Scenario {
 public:
  std::string name() const override { return "toy-commute"; }
  explicit CommuteScenario(bool declare_independence)
      : declare_(declare_independence) {}
  util::Status setup(sim::Engine* engine) override {
    engine->schedule_at(1.0, [this] { x_ += 1; }, "a");
    engine->schedule_at(1.0, [this] { y_ += 3; }, "b");
    engine->schedule_at(1.0, [this] { x_ *= 2; y_ *= 2; }, "c");
    return util::Status();
  }
  bool independent(const std::string& tag_a,
                   const std::string& tag_b) const override {
    if (!declare_) return false;
    return (tag_a == "a" && tag_b == "b") || (tag_a == "b" && tag_b == "a");
  }
  std::string digest() override {
    return "x=" + std::to_string(x_) + ",y=" + std::to_string(y_);
  }
  std::vector<Invariant> invariants() override { return {}; }

 private:
  bool declare_;
  int x_ = 0;
  int y_ = 0;
};

/// Two tied events whose "bad" order violates an invariant — the explorer
/// must find it and emit a replayable trace.
class BuggyScenario : public TieScenario {
 public:
  BuggyScenario() : TieScenario(2) {}
  std::string name() const override { return "toy-buggy"; }
  std::vector<Invariant> invariants() override {
    return {{"a-before-b", [this] {
               if (log_ == "ba") {
                 return util::Status(util::ErrorCode::kInternal,
                                     "b fired before a");
               }
               return util::Status();
             }}};
  }
};

ExploreOptions quiet_options() {
  ExploreOptions options;
  options.max_schedules = 10000;
  return options;
}

// -- Exact schedule counts ---------------------------------------------------

TEST(ExplorerTest, TwoTiedEventsYieldTwoSchedules) {
  auto report = explore([] { return std::make_unique<TieScenario>(2); },
                        quiet_options());
  ASSERT_TRUE(report.ok()) << report.error().message();
  EXPECT_EQ(report.value().schedules, 2u);
  EXPECT_EQ(report.value().terminal_states, 2u);
  EXPECT_EQ(report.value().distinct_digests.size(), 2u);
  EXPECT_TRUE(report.value().complete());
  EXPECT_TRUE(report.value().violations.empty());
}

TEST(ExplorerTest, ThreeWayTieYieldsSixSchedules) {
  auto report = explore([] { return std::make_unique<TieScenario>(3); },
                        quiet_options());
  ASSERT_TRUE(report.ok()) << report.error().message();
  EXPECT_EQ(report.value().schedules, 6u);  // 3!
  EXPECT_EQ(report.value().terminal_states, 6u);
  EXPECT_EQ(report.value().distinct_digests.size(), 6u);
}

TEST(ExplorerTest, ScheduleBudgetReportsIncomplete) {
  ExploreOptions options;
  options.max_schedules = 3;
  auto report =
      explore([] { return std::make_unique<TieScenario>(3); }, options);
  ASSERT_TRUE(report.ok()) << report.error().message();
  EXPECT_EQ(report.value().schedules, 3u);
  EXPECT_TRUE(report.value().schedule_budget_hit);
  EXPECT_FALSE(report.value().complete());
}

// -- Sleep-set pruning -------------------------------------------------------

TEST(ExplorerTest, SleepSetsPruneOnlyCommutingOrders) {
  auto unpruned = explore(
      [] { return std::make_unique<CommuteScenario>(false); },
      quiet_options());
  ASSERT_TRUE(unpruned.ok()) << unpruned.error().message();
  EXPECT_EQ(unpruned.value().schedules, 6u);
  EXPECT_EQ(unpruned.value().distinct_digests.size(), 4u);
  EXPECT_EQ(unpruned.value().pruned_choices, 0u);

  auto pruned = explore(
      [] { return std::make_unique<CommuteScenario>(true); },
      quiet_options());
  ASSERT_TRUE(pruned.ok()) << pruned.error().message();
  // Fewer runs, yet NO distinct terminal state may be dropped.
  EXPECT_LT(pruned.value().schedules, unpruned.value().schedules);
  EXPECT_GT(pruned.value().pruned_choices + pruned.value().sleep_aborted_runs,
            0u);
  EXPECT_EQ(pruned.value().distinct_digests,
            unpruned.value().distinct_digests);
}

TEST(ExplorerTest, DisablingSleepSetsRestoresFullEnumeration) {
  ExploreOptions options = quiet_options();
  options.sleep_sets = false;
  auto report = explore(
      [] { return std::make_unique<CommuteScenario>(true); }, options);
  ASSERT_TRUE(report.ok()) << report.error().message();
  EXPECT_EQ(report.value().schedules, 6u);
  EXPECT_EQ(report.value().pruned_choices, 0u);
  EXPECT_EQ(report.value().sleep_aborted_runs, 0u);
}

// -- Violations and replay ---------------------------------------------------

TEST(ExplorerTest, ViolationYieldsReplayableTrace) {
  auto report = explore([] { return std::make_unique<BuggyScenario>(); },
                        quiet_options());
  ASSERT_TRUE(report.ok()) << report.error().message();
  ASSERT_EQ(report.value().violations.size(), 1u);
  const ExploreViolation& violation = report.value().violations.front();
  EXPECT_EQ(violation.invariant, "a-before-b");

  // The trace round-trips through XML and replays to the recorded digest,
  // reproducing the violation.
  auto parsed = Trace::from_xml_string(violation.trace.to_xml());
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  EXPECT_EQ(parsed.value().violations,
            std::vector<std::string>{"a-before-b"});
  auto replayed = replay([] { return std::make_unique<BuggyScenario>(); },
                         parsed.value());
  ASSERT_TRUE(replayed.ok()) << replayed.error().message();
  EXPECT_TRUE(replayed.value().digest_matches);
  ASSERT_EQ(replayed.value().violations.size(), 1u);
}

TEST(ExplorerTest, DumpedScheduleReplaysToSameDigest) {
  ExploreOptions options = quiet_options();
  options.dump_schedule = 4;  // an arbitrary non-first schedule
  auto report =
      explore([] { return std::make_unique<TieScenario>(3); }, options);
  ASSERT_TRUE(report.ok()) << report.error().message();
  ASSERT_TRUE(report.value().dumped_trace.has_value());
  const Trace& trace = *report.value().dumped_trace;
  EXPECT_EQ(trace.schedule, 4u);
  auto replayed =
      replay([] { return std::make_unique<TieScenario>(3); }, trace);
  ASSERT_TRUE(replayed.ok()) << replayed.error().message();
  EXPECT_TRUE(replayed.value().digest_matches);
  EXPECT_TRUE(replayed.value().violations.empty());
}

TEST(ExplorerTest, ReplayRejectsDivergentTrace) {
  ExploreOptions options = quiet_options();
  options.dump_schedule = 0;
  auto report =
      explore([] { return std::make_unique<TieScenario>(2); }, options);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().dumped_trace.has_value());
  Trace trace = *report.value().dumped_trace;
  // A trace from a 2-event scenario cannot drive a 3-event one.
  auto mismatched =
      replay([] { return std::make_unique<TieScenario>(3); }, trace);
  EXPECT_FALSE(mismatched.ok());
}

// -- Lifecycle scenarios -----------------------------------------------------

TEST(ExplorerTest, ZombieReuseRaceExploresBothOrders) {
  LifecycleConfig config;
  config.variant = "zombie_reuse";
  auto factory = lifecycle_factory(config);
  ASSERT_TRUE(factory.ok()) << factory.error().message();
  auto report = explore(factory.value(), quiet_options());
  ASSERT_TRUE(report.ok()) << report.error().message();
  EXPECT_EQ(report.value().schedules, 2u);  // evict/publish 2-way tie
  EXPECT_TRUE(report.value().violations.empty())
      << report.value().violations.front().invariant << ": "
      << report.value().violations.front().message;
}

TEST(ExplorerTest, EvictRollbackExploresFaultAndRace) {
  LifecycleConfig config;
  config.variant = "evict_rollback";
  auto factory = lifecycle_factory(config);
  ASSERT_TRUE(factory.ok()) << factory.error().message();
  auto report = explore(factory.value(), quiet_options());
  ASSERT_TRUE(report.ok()) << report.error().message();
  // descriptor-removal fault (2 outcomes) x release/evict tie (2 orders).
  EXPECT_EQ(report.value().schedules, 4u);
  EXPECT_TRUE(report.value().violations.empty());
}

TEST(ExplorerTest, UnknownVariantRejected) {
  LifecycleConfig config;
  config.variant = "nonsense";
  EXPECT_FALSE(lifecycle_factory(config).ok());
}

// -- Regression trace corpus (the PR 5 review bugs) --------------------------

class TraceCorpusTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TraceCorpusTest, FixtureReplaysToRecordedDigest) {
  const std::filesystem::path path =
      std::filesystem::path(VMP_TRACE_DIR) / GetParam();
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();

  auto trace = Trace::from_xml_string(buffer.str());
  ASSERT_TRUE(trace.ok()) << trace.error().message();
  EXPECT_TRUE(trace.value().violations.empty())
      << "regression fixtures must be clean on HEAD";
  auto factory = factory_for_trace(trace.value());
  ASSERT_TRUE(factory.ok()) << factory.error().message();
  auto result = replay(factory.value(), trace.value());
  ASSERT_TRUE(result.ok()) << result.error().message();
  EXPECT_TRUE(result.value().digest_matches)
      << "replay produced " << result.value().digest << ", fixture recorded "
      << trace.value().digest;
  EXPECT_TRUE(result.value().violations.empty())
      << result.value().violations.front();
}

INSTANTIATE_TEST_SUITE_P(Pr5Bugs, TraceCorpusTest,
                         ::testing::Values("zombie_reuse.xml",
                                           "publish_reservation.xml",
                                           "evict_rollback.xml"));

// -- Cross-process determinism ----------------------------------------------

/// Replaying the same fixture in two separate tool processes must print
/// byte-identical reports (same digest, same decision count): the digest has
/// no pids, paths, or timestamps in it.
TEST(ExplorerTest, ReplayIsBitIdenticalAcrossProcesses) {
  const std::string fixture =
      (std::filesystem::path(VMP_TRACE_DIR) / "zombie_reuse.xml").string();
  const std::filesystem::path out_dir =
      std::filesystem::temp_directory_path() /
      ("vmp-explore-proc-" + std::to_string(::getpid()));
  std::filesystem::create_directories(out_dir);
  std::string outputs[2];
  for (int i = 0; i < 2; ++i) {
    const std::string out = (out_dir / ("run" + std::to_string(i))).string();
    const std::string command = std::string(VMP_EXPLORE_TOOL) + " --replay " +
                                fixture + " > " + out + " 2>&1";
    ASSERT_EQ(std::system(command.c_str()), 0) << command;
    std::ifstream in(out);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    outputs[i] = buffer.str();
  }
  std::filesystem::remove_all(out_dir);
  EXPECT_FALSE(outputs[0].empty());
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_NE(outputs[0].find("REPLAY OK"), std::string::npos) << outputs[0];
}

// -- Trace XML round-trip ----------------------------------------------------

TEST(TraceTest, XmlRoundTripPreservesEveryField) {
  Trace trace;
  trace.scenario = "lifecycle";
  trace.config = "variant=mixed|plants=2";
  trace.digest = "0123456789abcdef";
  trace.schedule = 41;
  trace.violations = {"ledger-matches-disk"};
  trace.decisions.push_back(Decision::tie(3.0, {2, 5, 9}, 5));
  trace.decisions.push_back(
      Decision::fault("store.write", "warehouse/g0/descriptor.xml", true));
  trace.decisions.push_back(Decision::tie(4.0, {10}, 10));

  auto parsed = Trace::from_xml_string(trace.to_xml());
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  const Trace& t = parsed.value();
  EXPECT_EQ(t.scenario, trace.scenario);
  EXPECT_EQ(t.config, trace.config);
  EXPECT_EQ(t.digest, trace.digest);
  EXPECT_EQ(t.schedule, trace.schedule);
  EXPECT_EQ(t.violations, trace.violations);
  ASSERT_EQ(t.decisions.size(), 3u);
  EXPECT_EQ(t.decisions[0].kind, Decision::Kind::kTie);
  EXPECT_EQ(t.decisions[0].ready, (std::vector<std::uint64_t>{2, 5, 9}));
  EXPECT_EQ(t.decisions[0].chosen, 5u);
  EXPECT_EQ(t.decisions[1].kind, Decision::Kind::kFault);
  EXPECT_EQ(t.decisions[1].point, "store.write");
  EXPECT_TRUE(t.decisions[1].fire);
  EXPECT_EQ(t.decisions[2].chosen, 10u);
}

TEST(TraceTest, DigestIsStableFnv1a) {
  // Pin the digest primitive: traces checked into tests/traces/ depend on
  // it never changing.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(digest_hex(""), "cbf29ce484222325");
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

}  // namespace
}  // namespace vmp::explore
