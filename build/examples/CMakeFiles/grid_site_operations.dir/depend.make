# Empty dependencies file for grid_site_operations.
# This may be replaced when dependencies are built.
