file(REMOVE_RECURSE
  "CMakeFiles/architect_test.dir/architect_test.cpp.o"
  "CMakeFiles/architect_test.dir/architect_test.cpp.o.d"
  "architect_test"
  "architect_test.pdb"
  "architect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/architect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
