// Explorable configurations of the warehouse lifecycle subsystem.
//
// Each variant builds a real store + warehouse + lifecycle manager in a
// private temp directory and schedules a small script of publish / acquire /
// evict / release operations at EQUAL sim times, so the explorer enumerates
// every ordering (and, when a fault plan is set, every fire/no-fire outcome
// of each eligible hook).  Variants:
//
//   mixed               — plants × goldens cross-traffic: publish, lease,
//                         evict and re-publish under an optional disk
//                         budget.  The general sweep CI runs.
//   zombie_reuse        — evict-of-a-leased-image racing a publish of the
//                         SAME id (PR 5 review bug: id reuse over a zombie).
//   publish_reservation — two publishes racing for a budget that fits one,
//                         with a descriptor-write fault, so a failed publish
//                         must return its admission reservation (PR 5 review
//                         bug: publish I/O accounting under the lock).
//   evict_rollback      — zombify whose descriptor removal fails, forcing
//                         the re-attach rollback path (PR 5 review bug:
//                         eviction rollback), racing a release and a retry.
//
// All variants check the same five invariants at every terminal state:
// ledger matches disk, no leased image deleted, publish reservations drained
// to zero, warm_start() is a fixpoint of crash recovery, and the orphan
// reaper leaves nothing it should not.
#pragma once

#include <cstdint>
#include <string>

#include "explore/explorer.h"
#include "util/error.h"

namespace vmp::explore {

struct LifecycleConfig {
  /// mixed | zombie_reuse | publish_reservation | evict_rollback
  std::string variant = "mixed";
  /// Concurrent actors ("plants") issuing operations.  Used by `mixed`.
  int plants = 2;
  /// Distinct golden-image ids the plants publish against.  Used by `mixed`.
  int goldens = 2;
  /// Warehouse disk budget, MB.  0 = unlimited.
  std::uint64_t budget_mb = 0;
  /// Fault plan spec (fault/fault.h grammar); empty = the variant's default
  /// (mixed and zombie_reuse default to none).
  std::string fault_spec;

  /// Canonical '|'-separated spec, e.g.
  /// "variant=mixed|plants=2|goldens=2|budget_mb=192|fault=...".  '|' is the
  /// separator because fault specs contain ',' and ';'.
  std::string to_spec() const;
  static util::Result<LifecycleConfig> parse(const std::string& spec);
};

/// Validate the config (variant name, actor counts, fault spec) and build a
/// factory producing a fresh scenario instance per run.
util::Result<ScenarioFactory> lifecycle_factory(const LifecycleConfig& config);

/// Resolve the factory for a recorded trace from its scenario name + config
/// attributes ("lifecycle" is the only registered name).
util::Result<ScenarioFactory> factory_for_trace(const Trace& trace);

}  // namespace vmp::explore
