#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vmp::obs {

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.empty()) return;
  if (counts.empty()) {
    counts = other.counts;
    total = other.total;
    return;
  }
  if (counts.size() < other.counts.size()) {
    counts.resize(other.counts.size(), 0);
  }
  for (std::size_t i = 0; i < other.counts.size(); ++i) {
    counts[i] += other.counts[i];
  }
  total += other.total;
}

double HistogramSnapshot::quantile(double q) const {
  if (empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) return LogHistogram::bucket_mid(i);
  }
  // total disagreed with the counts (corrupt snapshot): fall back to the
  // highest occupied bucket.
  for (std::size_t i = counts.size(); i-- > 0;) {
    if (counts[i] != 0) return LogHistogram::bucket_mid(i);
  }
  return 0.0;
}

std::string HistogramSnapshot::encode() const {
  std::string out;
  char item[48];
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    std::snprintf(item, sizeof(item), "%zu:%llu", i,
                  static_cast<unsigned long long>(counts[i]));
    if (!out.empty()) out += ',';
    out += item;
  }
  return out;
}

std::optional<HistogramSnapshot> HistogramSnapshot::decode(
    const std::string& text) {
  HistogramSnapshot snap;
  if (text.empty()) return snap;
  snap.counts.assign(LogHistogram::kBucketCount, 0);
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(pos, comma - pos);
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) return std::nullopt;
    char* end = nullptr;
    const unsigned long long bucket =
        std::strtoull(item.c_str(), &end, 10);
    if (end != item.c_str() + colon ||
        bucket >= LogHistogram::kBucketCount) {
      return std::nullopt;
    }
    const char* count_text = item.c_str() + colon + 1;
    const unsigned long long count = std::strtoull(count_text, &end, 10);
    if (end == count_text || *end != '\0') return std::nullopt;
    snap.counts[bucket] += count;
    snap.total += count;
    pos = comma + 1;
  }
  if (snap.total == 0) snap.counts.clear();
  return snap;
}

bool HistogramSnapshot::operator==(const HistogramSnapshot& other) const {
  if (total != other.total) return false;
  const std::size_t n = std::max(counts.size(), other.counts.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t a = i < counts.size() ? counts[i] : 0;
    const std::uint64_t b = i < other.counts.size() ? other.counts[i] : 0;
    if (a != b) return false;
  }
  return true;
}

HistogramSnapshot LogHistogram::snapshot() const {
  HistogramSnapshot snap;
  snap.counts.assign(kBucketCount, 0);
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
    snap.counts[i] = c;
    snap.total += c;
  }
  if (snap.total == 0) snap.counts.clear();
  return snap;
}

std::uint64_t LogHistogram::total() const {
  std::uint64_t t = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    t += counts_[i].load(std::memory_order_relaxed);
  }
  return t;
}

void LogHistogram::reset() {
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

std::size_t LogHistogram::bucket_index(double v) {
  if (!(v >= std::ldexp(1.0, kMinExp))) return 0;  // includes NaN, <= 0
  if (v >= std::ldexp(1.0, kMaxExp)) return kBucketCount - 1;
  int exp = 0;
  const double frac = std::frexp(v, &exp);  // v = frac * 2^exp, frac in [0.5,1)
  const int octave = exp - 1;               // v in [2^octave, 2^(octave+1))
  const auto sub = static_cast<std::size_t>(
      (frac * 2.0 - 1.0) * static_cast<double>(kSubBuckets));
  return 1 + static_cast<std::size_t>(octave - kMinExp) * kSubBuckets +
         std::min(sub, kSubBuckets - 1);
}

double LogHistogram::bucket_lower(std::size_t bucket) {
  if (bucket == 0) return 0.0;
  if (bucket >= kBucketCount - 1) return std::ldexp(1.0, kMaxExp);
  const std::size_t linear = bucket - 1;
  const int octave = kMinExp + static_cast<int>(linear / kSubBuckets);
  const double sub = static_cast<double>(linear % kSubBuckets);
  return std::ldexp(1.0 + sub / static_cast<double>(kSubBuckets), octave);
}

double LogHistogram::bucket_upper(std::size_t bucket) {
  if (bucket >= kBucketCount - 1) return std::ldexp(1.0, kMaxExp);
  return bucket_lower(bucket + 1);
}

double LogHistogram::bucket_mid(std::size_t bucket) {
  return 0.5 * (bucket_lower(bucket) + bucket_upper(bucket));
}

}  // namespace vmp::obs
