// Unit tests for the VM Warehouse: publishing, descriptors, lookup, rescan.
#include <gtest/gtest.h>

#include <filesystem>

#include "warehouse/warehouse.h"
#include "workload/request_gen.h"

namespace vmp::warehouse {
namespace {

storage::MachineSpec small_spec(std::uint64_t mem_mb = 32) {
  storage::MachineSpec spec;
  spec.os = "linux-mandrake-8.1";
  spec.memory_bytes = mem_mb << 20;
  spec.suspended = true;
  spec.disk = storage::DiskSpec{"disk0", 512ull << 20, 4,
                                storage::DiskMode::kNonPersistent};
  return spec;
}

class WarehouseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("vmp-wh-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    store_ = std::make_unique<storage::ArtifactStore>(root_);
    warehouse_ = std::make_unique<Warehouse>(store_.get(), "warehouse");
  }
  void TearDown() override {
    warehouse_.reset();
    store_.reset();
    std::filesystem::remove_all(root_);
  }

  std::filesystem::path root_;
  std::unique_ptr<storage::ArtifactStore> store_;
  std::unique_ptr<Warehouse> warehouse_;
};

TEST_F(WarehouseTest, PublishMaterializesArtifacts) {
  hv::GuestState guest;
  guest.os = "linux-mandrake-8.1";
  guest.packages = {"vnc-server"};
  auto image = warehouse_->publish_new("golden-32mb", "vmware-gsx",
                                       small_spec(), guest,
                                       {"install-os{distro=r8}"});
  ASSERT_TRUE(image.ok()) << image.error().to_string();

  const std::string dir = image.value().layout.dir;
  EXPECT_EQ(dir, "warehouse/golden-32mb");
  EXPECT_TRUE(store_->exists(dir + "/machine.cfg"));
  EXPECT_TRUE(store_->exists(dir + "/memory.vmss"));
  EXPECT_TRUE(store_->exists(dir + "/descriptor.xml"));
  EXPECT_TRUE(store_->exists(dir + "/guest.state"));
  EXPECT_TRUE(store_->exists(dir + "/disk0-s001.vmdk"));
  EXPECT_EQ(warehouse_->size(), 1u);
}

TEST_F(WarehouseTest, DuplicateIdRejected) {
  ASSERT_TRUE(warehouse_
                  ->publish_new("g", "vmware-gsx", small_spec(),
                                hv::GuestState{}, {})
                  .ok());
  auto dup = warehouse_->publish_new("g", "vmware-gsx", small_spec(),
                                     hv::GuestState{}, {});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code(), util::ErrorCode::kAlreadyExists);
}

TEST_F(WarehouseTest, InvalidSpecRejected) {
  storage::MachineSpec bad;  // empty os, zero memory
  EXPECT_FALSE(warehouse_->publish_new("g", "x", bad, {}, {}).ok());
  EXPECT_FALSE(warehouse_
                   ->publish_new("", "x", small_spec(), hv::GuestState{}, {})
                   .ok());
}

TEST_F(WarehouseTest, LookupAndContains) {
  ASSERT_TRUE(warehouse_
                  ->publish_new("g1", "vmware-gsx", small_spec(),
                                hv::GuestState{}, {"sig-a", "sig-b"})
                  .ok());
  EXPECT_TRUE(warehouse_->contains("g1"));
  EXPECT_FALSE(warehouse_->contains("g2"));
  auto image = warehouse_->lookup("g1");
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image.value().performed,
            (std::vector<std::string>{"sig-a", "sig-b"}));
  EXPECT_FALSE(warehouse_->lookup("g2").ok());
}

TEST_F(WarehouseTest, ListFiltersByBackend) {
  ASSERT_TRUE(warehouse_
                  ->publish_new("g1", "vmware-gsx", small_spec(),
                                hv::GuestState{}, {})
                  .ok());
  storage::MachineSpec uml = small_spec();
  uml.suspended = false;
  ASSERT_TRUE(
      warehouse_->publish_new("u1", "uml", uml, hv::GuestState{}, {}).ok());
  EXPECT_EQ(warehouse_->list().size(), 2u);
  EXPECT_EQ(warehouse_->list_backend("vmware-gsx").size(), 1u);
  EXPECT_EQ(warehouse_->list_backend("uml").size(), 1u);
  EXPECT_TRUE(warehouse_->list_backend("xen").empty());
}

TEST_F(WarehouseTest, RemoveDeletesDirectory) {
  ASSERT_TRUE(warehouse_
                  ->publish_new("g1", "vmware-gsx", small_spec(),
                                hv::GuestState{}, {})
                  .ok());
  ASSERT_TRUE(warehouse_->remove("g1").ok());
  EXPECT_FALSE(store_->exists("warehouse/g1"));
  EXPECT_FALSE(warehouse_->remove("g1").ok());
  EXPECT_EQ(warehouse_->size(), 0u);
}

TEST_F(WarehouseTest, AttachRestoresADetachedImage) {
  ASSERT_TRUE(warehouse_
                  ->publish_new("g1", "vmware-gsx", small_spec(),
                                hv::GuestState{}, {"a", "b"})
                  .ok());
  auto detached = warehouse_->detach("g1");
  ASSERT_TRUE(detached.ok());
  EXPECT_FALSE(warehouse_->contains("g1"));
  EXPECT_TRUE(store_->exists("warehouse/g1/descriptor.xml"));

  // Attach is the pure index inverse of detach: no disk I/O, the image is
  // servable again with its action history (and digests) intact.
  ASSERT_TRUE(warehouse_->attach(detached.value()).ok());
  auto restored = warehouse_->lookup("g1");
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().performed,
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(warehouse_->match_candidates(
                            "vmware-gsx",
                            [](const GoldenImage&) { return true; },
                            ~0ull)
                .candidates.size(),
            1u);

  // A taken id refuses attach, and an empty id is invalid.
  auto dup = warehouse_->attach(detached.value());
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code(), util::ErrorCode::kAlreadyExists);
  EXPECT_FALSE(warehouse_->attach(GoldenImage{}).ok());
}

TEST_F(WarehouseTest, DescriptorRoundTrip) {
  GoldenImage image;
  image.id = "golden-64mb";
  image.backend = "vmware-gsx";
  image.spec = small_spec(64);
  image.performed = {"install-os{distro=redhat-8.0}",
                     "install-package{package=vnc-server}"};
  auto parsed = parse_descriptor(render_descriptor(image));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().id, image.id);
  EXPECT_EQ(parsed.value().backend, image.backend);
  EXPECT_EQ(parsed.value().spec.memory_bytes, image.spec.memory_bytes);
  EXPECT_EQ(parsed.value().spec.disk.span_count, image.spec.disk.span_count);
  EXPECT_EQ(parsed.value().performed, image.performed);
}

TEST_F(WarehouseTest, DescriptorRejectsMalformed) {
  EXPECT_FALSE(parse_descriptor("<golden/>").ok());          // no id/machine
  EXPECT_FALSE(parse_descriptor("not xml at all").ok());
  EXPECT_FALSE(parse_descriptor("<golden id=\"g\"/>").ok()); // no machine
}

TEST_F(WarehouseTest, RescanRebuildsFromDisk) {
  hv::GuestState guest;
  guest.os = "linux-mandrake-8.1";
  guest.users["arijit"] = "/home/arijit";
  ASSERT_TRUE(warehouse_
                  ->publish_new("g1", "vmware-gsx", small_spec(), guest,
                                {"sig-a"})
                  .ok());
  ASSERT_TRUE(warehouse_
                  ->publish_new("g2", "uml",
                                [] {
                                  auto s = small_spec(64);
                                  s.suspended = false;
                                  return s;
                                }(),
                                hv::GuestState{}, {})
                  .ok());

  // A fresh warehouse instance over the same store starts empty, then
  // rebuilds its index from descriptor.xml files (paper §3.1: durable
  // state lives on disk, not in the service).
  Warehouse recovered(store_.get(), "warehouse");
  EXPECT_EQ(recovered.size(), 0u);
  ASSERT_TRUE(recovered.rescan().ok());
  EXPECT_EQ(recovered.size(), 2u);
  auto g1 = recovered.lookup("g1");
  ASSERT_TRUE(g1.ok());
  EXPECT_EQ(g1.value().performed, (std::vector<std::string>{"sig-a"}));
  EXPECT_EQ(g1.value().guest.users.at("arijit"), "/home/arijit");
  EXPECT_EQ(g1.value().layout.dir, "warehouse/g1");
}

TEST_F(WarehouseTest, RescanIgnoresStrayDirectories) {
  ASSERT_TRUE(store_->write_file("warehouse/not-an-image/file.txt", "x").ok());
  ASSERT_TRUE(warehouse_->rescan().ok());
  EXPECT_EQ(warehouse_->size(), 0u);
}

TEST_F(WarehouseTest, PaperGoldenFleet) {
  ASSERT_TRUE(workload::publish_paper_goldens(warehouse_.get()).ok());
  EXPECT_EQ(warehouse_->size(), 3u);
  auto g256 = warehouse_->lookup("golden-256mb");
  ASSERT_TRUE(g256.ok());
  EXPECT_EQ(g256.value().spec.memory_bytes, 256ull << 20);
  EXPECT_EQ(g256.value().spec.disk.capacity_bytes, 2048ull << 20);
  EXPECT_EQ(g256.value().spec.disk.span_count, 16u);  // paper: 16 files
  EXPECT_EQ(g256.value().performed.size(), 3u);        // In-VIGO A..C
  EXPECT_TRUE(g256.value().spec.suspended);

  ASSERT_TRUE(workload::publish_uml_golden(warehouse_.get(), 32).ok());
  auto uml = warehouse_->lookup("golden-uml-32mb");
  ASSERT_TRUE(uml.ok());
  EXPECT_FALSE(uml.value().spec.suspended);
  EXPECT_EQ(uml.value().backend, "uml");
}

}  // namespace
}  // namespace vmp::warehouse
