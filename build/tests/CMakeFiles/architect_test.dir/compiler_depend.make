# Empty compiler generated dependencies file for architect_test.
# This may be replaced when dependencies are built.
