// vmp_explore: bounded state-space exploration of the warehouse lifecycle
// protocols, and deterministic replay of recorded counterexample traces.
//
//   vmp_explore --scenario lifecycle --variant mixed --plants 2 --goldens 2
//               --budget-mb 192 --fault "store.write:target=descriptor.xml,times=1"
//   vmp_explore --replay trace.xml
//   vmp_explore --scenario lifecycle --variant zombie_reuse
//               --dump-schedule 0 --trace tests/traces/zombie_reuse.xml
//
// Exit codes: 0 = explored clean / replay reproduced the recorded digest,
// 2 = invariant violation found (trace written) or replay diverged,
// 1 = usage or harness error.  See tools/README.md for the CI budget knob.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "explore/explorer.h"
#include "explore/lifecycle_scenario.h"
#include "explore/trace.h"

namespace {

using vmp::explore::ExploreOptions;
using vmp::explore::ExploreReport;
using vmp::explore::LifecycleConfig;
using vmp::explore::Trace;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --scenario lifecycle [options]\n"
      << "       " << argv0 << " --replay TRACE.xml\n"
      << "\n"
      << "scenario options:\n"
      << "  --variant NAME        mixed | zombie_reuse | publish_reservation\n"
      << "                        | evict_rollback (default mixed)\n"
      << "  --plants N            concurrent actors, 1..4 (default 2)\n"
      << "  --goldens N           distinct golden ids, 1..4 (default 2)\n"
      << "  --budget-mb N         warehouse disk budget, 0 = unlimited\n"
      << "  --fault SPEC          fault plan (fault/fault.h grammar)\n"
      << "  --config SPEC         full '|'-separated config (overrides the\n"
      << "                        flags above)\n"
      << "\n"
      << "exploration options:\n"
      << "  --max-schedules N     schedule budget (default 50000) -- the CI\n"
      << "                        knob; the run reports budget exhaustion\n"
      << "  --max-steps N         per-run engine step budget\n"
      << "  --no-sleep-sets       disable commuting-pair pruning\n"
      << "  --keep-going          do not stop at the first violation\n"
      << "  --dump-schedule K     record the K-th terminal schedule to the\n"
      << "                        --trace path even if clean\n"
      << "  --trace PATH          where to write traces (default trace.xml)\n";
  return 1;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

int run_replay(const std::string& path) {
  std::string text;
  if (!read_file(path, &text)) {
    std::cerr << "vmp_explore: cannot read " << path << "\n";
    return 1;
  }
  auto trace = Trace::from_xml_string(text);
  if (!trace.ok()) {
    std::cerr << "vmp_explore: " << trace.error().message() << "\n";
    return 1;
  }
  auto factory = vmp::explore::factory_for_trace(trace.value());
  if (!factory.ok()) {
    std::cerr << "vmp_explore: " << factory.error().message() << "\n";
    return 1;
  }
  auto result = vmp::explore::replay(factory.value(), trace.value());
  if (!result.ok()) {
    std::cerr << "vmp_explore: " << result.error().message() << "\n";
    return 2;
  }
  std::cout << "replayed " << trace.value().decisions.size()
            << " decisions of scenario '" << trace.value().scenario << "' ("
            << trace.value().config << ")\n"
            << "terminal digest " << result.value().digest
            << (result.value().digest_matches ? " == " : " != ")
            << trace.value().digest << " recorded\n";
  for (const std::string& violation : result.value().violations) {
    std::cout << "invariant violated: " << violation << "\n";
  }
  const bool clean =
      result.value().digest_matches && result.value().violations.empty();
  std::cout << (clean ? "REPLAY OK" : "REPLAY FAILED") << "\n";
  return clean ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario;
  std::string replay_path;
  std::string trace_path = "trace.xml";
  std::string config_spec;
  LifecycleConfig config;
  ExploreOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--scenario" && (value = next())) {
      scenario = value;
    } else if (arg == "--replay" && (value = next())) {
      replay_path = value;
    } else if (arg == "--variant" && (value = next())) {
      config.variant = value;
    } else if (arg == "--plants" && (value = next())) {
      config.plants = std::atoi(value);
    } else if (arg == "--goldens" && (value = next())) {
      config.goldens = std::atoi(value);
    } else if (arg == "--budget-mb" && (value = next())) {
      config.budget_mb = static_cast<std::uint64_t>(std::atoll(value));
    } else if (arg == "--fault" && (value = next())) {
      config.fault_spec = value;
    } else if (arg == "--config" && (value = next())) {
      config_spec = value;
    } else if (arg == "--max-schedules" && (value = next())) {
      options.max_schedules = static_cast<std::uint64_t>(std::atoll(value));
    } else if (arg == "--max-steps" && (value = next())) {
      options.max_steps_per_run = static_cast<std::uint64_t>(std::atoll(value));
    } else if (arg == "--no-sleep-sets") {
      options.sleep_sets = false;
    } else if (arg == "--keep-going") {
      options.stop_on_violation = false;
    } else if (arg == "--dump-schedule" && (value = next())) {
      options.dump_schedule = std::atoll(value);
    } else if (arg == "--trace" && (value = next())) {
      trace_path = value;
    } else {
      return usage(argv[0]);
    }
  }

  if (!replay_path.empty()) return run_replay(replay_path);
  if (scenario != "lifecycle") return usage(argv[0]);

  if (!config_spec.empty()) {
    auto parsed = LifecycleConfig::parse(config_spec);
    if (!parsed.ok()) {
      std::cerr << "vmp_explore: " << parsed.error().message() << "\n";
      return 1;
    }
    config = parsed.value();
  }

  auto factory = vmp::explore::lifecycle_factory(config);
  if (!factory.ok()) {
    std::cerr << "vmp_explore: " << factory.error().message() << "\n";
    return 1;
  }
  auto report = vmp::explore::explore(factory.value(), options);
  if (!report.ok()) {
    std::cerr << "vmp_explore: " << report.error().message() << "\n";
    return 1;
  }
  const ExploreReport& r = report.value();
  std::cout << "scenario lifecycle (" << config.to_spec() << ")\n"
            << "schedules explored:  " << r.schedules
            << (r.schedule_budget_hit ? "  (budget exhausted -- INCOMPLETE)"
                                      : "  (complete)")
            << "\n"
            << "terminal states:     " << r.terminal_states << "\n"
            << "distinct digests:    " << r.distinct_digests.size() << "\n"
            << "decision points:     " << r.decision_points << " ("
            << r.branch_points << " branching)\n"
            << "sleep-set pruning:   " << r.pruned_choices
            << " choices skipped, " << r.sleep_aborted_runs
            << " runs cut as covered\n";
  if (r.truncated_runs != 0 || r.depth_clipped_runs != 0) {
    std::cout << "budget clipping:     " << r.truncated_runs
              << " runs hit the step budget, " << r.depth_clipped_runs
              << " the decision budget\n";
  }

  if (r.dumped_trace.has_value()) {
    if (!write_file(trace_path, r.dumped_trace->to_xml())) {
      std::cerr << "vmp_explore: cannot write " << trace_path << "\n";
      return 1;
    }
    std::cout << "schedule " << r.dumped_trace->schedule << " (digest "
              << r.dumped_trace->digest << ") written to " << trace_path
              << "\n";
  }

  if (!r.violations.empty()) {
    const auto& first = r.violations.front();
    std::cout << "INVARIANT VIOLATED: " << first.invariant << ": "
              << first.message << "\n";
    // The dumped trace (if any) owns the path; violations get it otherwise.
    if (!r.dumped_trace.has_value()) {
      if (!write_file(trace_path, first.trace.to_xml())) {
        std::cerr << "vmp_explore: cannot write " << trace_path << "\n";
      } else {
        std::cout << "counterexample written to " << trace_path
                  << " -- re-execute with: vmp_explore --replay " << trace_path
                  << "\n";
      }
    }
    // Flight-recorder dump: the violating run's lifecycle/fault timeline,
    // one JSON object per line, next to the trace.
    const std::string flight_path = trace_path + ".flight.jsonl";
    std::string flight_jsonl;
    for (const auto& record : first.flight) {
      flight_jsonl += record.to_json();
      flight_jsonl += '\n';
    }
    if (!write_file(flight_path, flight_jsonl)) {
      std::cerr << "vmp_explore: cannot write " << flight_path << "\n";
    } else {
      std::cout << "flight recorder (" << first.flight.size()
                << " events) written to " << flight_path << "\n";
    }
    return 2;
  }
  std::cout << "all invariants held on every explored schedule\n";
  return 0;
}
