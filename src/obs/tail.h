// Tail-sampled trace retention: keep full causal evidence for exactly the
// requests that hurt p99/p999, at near-zero cost for the rest.
//
// The paper's headline claim is low VM-creation latency via cloning and
// golden-image hits, but the concurrent pipeline and lifecycle backpressure
// shape the TAIL of create latency through queueing, evict-to-fit stalls,
// lease contention, and injected faults — causes the aggregate histograms
// and the event journal cannot explain for a SPECIFIC slow request.
// Following the Dapper-style tracing line (PAPERS.md), the TailSampler
// makes armed tracing affordable fleet-wide by deciding, at every root-span
// completion (DESIGN.md §14):
//
//   * estimate the per-operation latency quantile from a fixed-size
//     reservoir of recent durations (no global sort, no unbounded state);
//   * retain the complete span tree only when the create landed strictly
//     above that estimate — plus EVERY errored/faulted create — and drain
//     everything else out of the tracer buffer, so "armed" no longer means
//     "grows with history";
//   * correlate a retained trace with the journal flight recorder: every
//     JournalRecord and fault firing stamped with the same trace id joins
//     the exemplar, rendering one merged timeline of spans interleaved with
//     the evictions, lease waits, and fault firings that caused them;
//   * attribute the retained tree's critical path (obs/critical_path.h)
//     and export per-stage self-time histograms (tail.self.<stage>.seconds)
//     into the MetricsRegistry, where the fleet aggregator rolls them up;
//   * bound everything by a fixed retention budget: when full, the
//     shortest non-error exemplar is evicted first.
//
// Exemplars dump as <trace-id>.exemplar.jsonl (header line, then span
// lines, then journal-record lines) and are reconstructed into a human
// timeline by tools/tail_report.py.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/critical_path.h"
#include "obs/journal.h"
#include "obs/trace.h"

namespace vmp::obs {

struct TailSamplerConfig {
  /// Retain a trace whose root duration lands strictly above this quantile
  /// of the per-operation reservoir.
  double quantile = 0.95;
  /// Recent durations kept per operation (root span name); the quantile is
  /// estimated over this window, so it tracks drift.
  std::size_t reservoir = 512;
  /// Samples an operation needs before the quantile gate arms; during
  /// warmup only errored creates are retained (a handful of fast early
  /// requests must not define "slow").
  std::size_t warmup = 32;
  /// Retention budget: complete exemplars kept at any moment.
  std::size_t max_retained = 16;
  /// Journal records copied into one exemplar (newest kept).
  std::size_t max_events = 512;
  /// Export tail.self.<stage>.seconds critical-path histograms on retain.
  bool record_metrics = true;
};

/// One retained slow/errored request: the full span tree plus every journal
/// record (evictions, lease transitions, fault firings) stamped with its
/// trace id, and the critical path computed at retention time.
struct TailExemplar {
  std::string trace_id;
  std::string op;          // root span name
  std::string status;      // root status
  std::string cause;       // "slow" or "error"
  double duration_s = 0.0;
  double threshold_s = 0.0;  // quantile estimate at decision time (0 = warmup)
  std::vector<Span> spans;            // completion order
  std::vector<JournalRecord> events;  // correlated journal records, seq order
  CriticalPath path;                  // critical path of `spans`

  /// The <id>.exemplar.jsonl format: one header object (exemplar metadata +
  /// critical path), then one line per span, then one line per journal
  /// record.  tools/tail_report.py merges these into a causal timeline.
  std::string to_jsonl() const;
};

class TailSampler {
 public:
  /// The process-wide sampler (what VmMonitor publishes from).
  static TailSampler& instance();

  explicit TailSampler(TailSamplerConfig config = {});
  ~TailSampler();
  TailSampler(const TailSampler&) = delete;
  TailSampler& operator=(const TailSampler&) = delete;

  /// Arm against a tracer + journal (defaults: the process-wide instances).
  /// Installs itself as the tracer's root sink and arms the tracer if it
  /// is not already armed.  Clears previously retained exemplars.
  void arm(TailSamplerConfig config = {});
  void arm(TailSamplerConfig config, Tracer* tracer, Journal* journal);
  /// Uninstall the root sink.  Retained exemplars stay readable.
  void disarm();
  bool armed() const;

  const TailSamplerConfig& config() const { return config_; }

  /// The decision point; the tracer's root sink lands here.  Public so
  /// tests (and exotic integrations) can feed roots directly.
  void observe_root(const Span& root);

  // -- Introspection ----------------------------------------------------------
  /// Root spans decided over this sampler's lifetime.
  std::uint64_t observed() const;
  /// Exemplars ever retained (including ones later evicted by the budget).
  std::uint64_t retained_total() const;
  /// Retained exemplars pushed back out by the retention budget.
  std::uint64_t budget_evictions() const;
  /// Current quantile estimate for one operation; negative while the
  /// operation is still in warmup.
  double threshold(const std::string& op) const;

  std::vector<TailExemplar> exemplars() const;
  std::optional<TailExemplar> exemplar(const std::string& trace_id) const;
  /// Drop retained exemplars AND reservoir state (arming does this too).
  void clear();

  /// Write every retained exemplar as <trace-id>.exemplar.jsonl under
  /// `dir` (created if needed); returns how many files were written.
  std::size_t dump(const std::filesystem::path& dir) const;

 private:
  struct Reservoir {
    std::vector<double> samples;  // ring of the last `reservoir` durations
    std::size_t next = 0;
    std::uint64_t count = 0;          // durations ever added
    double cached_threshold = -1.0;   // quantile estimate (amortized)
    std::uint64_t cached_at_count = 0;
  };

  void add_sample_locked(Reservoir& res, double duration_s);
  /// Quantile estimate, recomputed every reservoir/8 inserts; negative
  /// during warmup.
  double threshold_locked(Reservoir& res) const;
  void retain_locked(TailExemplar exemplar);

  TailSamplerConfig config_;
  mutable std::mutex mutex_;
  bool armed_ = false;
  Tracer* tracer_ = nullptr;
  Journal* journal_ = nullptr;
  std::map<std::string, Reservoir> ops_;
  std::vector<TailExemplar> retained_;
  std::uint64_t observed_ = 0;
  std::uint64_t retained_total_ = 0;
  std::uint64_t budget_evictions_ = 0;
};

}  // namespace vmp::obs
