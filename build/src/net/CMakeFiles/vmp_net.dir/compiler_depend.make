# Empty compiler generated dependencies file for vmp_net.
# This may be replaced when dependencies are built.
