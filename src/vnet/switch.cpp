#include "vnet/switch.h"

namespace vmp::vnet {

using util::Error;
using util::ErrorCode;
using util::Status;

std::uint32_t HostOnlySwitch::attach(FrameSink sink, bool uplink) {
  const std::uint32_t port = next_port_++;
  ports_.emplace(port, Port{std::move(sink), uplink});
  return port;
}

Status HostOnlySwitch::detach(std::uint32_t port) {
  if (ports_.erase(port) == 0) {
    return Status(ErrorCode::kNotFound,
                  name_ + ": no port " + std::to_string(port));
  }
  // Flush MAC table entries pointing at the removed port.
  for (auto it = mac_table_.begin(); it != mac_table_.end();) {
    if (it->second == port) {
      it = mac_table_.erase(it);
    } else {
      ++it;
    }
  }
  return Status();
}

Status HostOnlySwitch::inject(std::uint32_t ingress_port,
                              const EthernetFrame& frame) {
  auto ingress = ports_.find(ingress_port);
  if (ingress == ports_.end()) {
    return Status(ErrorCode::kNotFound,
                  name_ + ": inject on unknown port " +
                      std::to_string(ingress_port));
  }

  // Learn the source.
  if (!frame.src.is_broadcast()) {
    mac_table_[frame.src] = ingress_port;
  }

  // Known unicast: deliver to the learned port only.
  if (!frame.dst.is_broadcast()) {
    auto learned = mac_table_.find(frame.dst);
    if (learned != mac_table_.end() && learned->second != ingress_port) {
      auto port = ports_.find(learned->second);
      if (port != ports_.end()) {
        ++frames_switched_;
        port->second.sink(frame);
        return Status();
      }
    }
    if (learned != mac_table_.end() && learned->second == ingress_port) {
      // Destination is on the ingress port; nothing to do (hairpin drop).
      return Status();
    }
  }

  // Broadcast or unknown destination: flood.
  ++frames_flooded_;
  for (auto& [id, port] : ports_) {
    if (id == ingress_port) continue;
    port.sink(frame);
  }
  return Status();
}

std::optional<std::uint32_t> HostOnlySwitch::learned_port(
    const MacAddress& mac) const {
  auto it = mac_table_.find(mac);
  if (it == mac_table_.end()) return std::nullopt;
  return it->second;
}

}  // namespace vmp::vnet
