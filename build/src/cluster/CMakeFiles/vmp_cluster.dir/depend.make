# Empty dependencies file for vmp_cluster.
# This may be replaced when dependencies are built.
