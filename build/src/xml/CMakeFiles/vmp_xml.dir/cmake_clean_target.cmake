file(REMOVE_RECURSE
  "libvmp_xml.a"
)
