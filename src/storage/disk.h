// Virtual disk model.
//
// Paper, Section 4.1: golden machines use non-persistent virtual disks so
// that "multiple clones [can] share the base virtual hard disk of the golden
// machine (avoiding copying of large files), and write all changes to
// private (and smaller) redo log files"; the experiment's golden disk
// "occupies 2 GBytes of storage (spanned across 16 files)".
//
// DiskSpec describes such a disk: total capacity, span count, and mode.
// The artefact naming matches that layout: "<name>-s%03d.vmdk" spans plus a
// "<name>.redo" log for non-persistent sessions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.h"

namespace vmp::storage {

enum class DiskMode {
  kPersistent,     // writes go to the base files; cannot be shared by clones
  kNonPersistent,  // base is read-only; writes land in a per-clone redo log
};

const char* disk_mode_name(DiskMode mode) noexcept;
util::Result<DiskMode> parse_disk_mode(const std::string& name);

struct DiskSpec {
  std::string name = "disk0";
  std::uint64_t capacity_bytes = 0;
  std::uint32_t span_count = 1;  // VMware splits big disks into 2GB spans
  DiskMode mode = DiskMode::kNonPersistent;

  /// File names of the base spans, in order ("disk0-s001.vmdk", ...).
  std::vector<std::string> span_file_names() const;

  /// Redo log file name for a session ("disk0.redo").
  std::string redo_file_name() const { return name + ".redo"; }

  /// Bytes per span (last span absorbs the remainder).
  std::uint64_t span_size(std::uint32_t index) const;

  util::Status validate() const;
};

}  // namespace vmp::storage
