#include "core/fleet.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "obs/export.h"
#include "util/logging.h"
#include "util/stats.h"

namespace vmp::core {

using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

const util::Logger kLog("fleet");

struct FleetMetrics {
  obs::Counter* sweeps;
  obs::Counter* pull_failures;

  static FleetMetrics& get() {
    static FleetMetrics m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::instance();
      return FleetMetrics{r.counter("fleet.sweep.count"),
                          r.counter("fleet.pull_fail.count")};
    }();
    return m;
  }
};

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// {"id": "...", "attrs": {...}} on one line (the fleet_report.py format).
std::string ad_to_json_line(const std::string& id, const classad::ClassAd& ad) {
  std::string out = "{\"id\": \"" + json_escape(id) + "\", \"attrs\": {";
  bool first = true;
  for (const std::string& name : ad.names()) {
    const classad::Value v = ad.evaluate(name);
    std::string rendered;
    switch (v.type()) {
      case classad::ValueType::kBoolean:
        rendered = v.as_boolean() ? "true" : "false";
        break;
      case classad::ValueType::kInteger:
        rendered = std::to_string(v.as_integer());
        break;
      case classad::ValueType::kReal: {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.9g", v.as_real());
        rendered = buf;
        break;
      }
      case classad::ValueType::kString:
        rendered = "\"" + json_escape(v.as_string()) + "\"";
        break;
      default:
        rendered = "null";
    }
    if (!first) out += ", ";
    first = false;
    out += "\"" + json_escape(name) + "\": " + rendered;
  }
  out += "}}";
  return out;
}

}  // namespace

FleetAggregator::FleetAggregator(FleetAggregatorConfig config,
                                 net::MessageBus* bus,
                                 net::ServiceRegistry* registry,
                                 VmInformationSystem* info)
    : config_(std::move(config)),
      bus_(bus),
      registry_(registry),
      info_(info),
      epoch_(std::chrono::steady_clock::now()) {}

FleetAggregator::~FleetAggregator() { stop_periodic(); }

void FleetAggregator::set_clock(std::function<double()> clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_ = std::move(clock);
}

double FleetAggregator::now() const {
  std::function<double()> clock;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    clock = clock_;
  }
  if (clock) return clock();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

Result<classad::ClassAd> FleetAggregator::pull_metrics_ad(
    const std::string& plant) {
  net::Message m = net::Message::request("vmplant.query", config_.name, plant,
                                         kObsMetricsId);
  m.body().add_child("vm").set_attr("id", kObsMetricsId);
  auto response = net::call_expecting_success(bus_, m);
  if (!response.ok()) return response.propagate<classad::ClassAd>();
  return classad::ClassAd::from_xml(response.value().body());
}

std::optional<double> FleetAggregator::sli_quantile(
    const obs::TimerStats& stats) const {
  if (stats.count == 0) return std::nullopt;
  if (!stats.hist.empty()) {
    return stats.hist.quantile(config_.slo.target_quantile);
  }
  // Legacy ad without a histogram: nearest exported quantile.
  const double q = config_.slo.target_quantile;
  if (q >= 0.999) return stats.p999_s;
  if (q >= 0.99) return stats.p99_s;
  if (q >= 0.9) return stats.p90_s;
  return stats.p50_s;
}

std::size_t FleetAggregator::sweep() {
  const double t = now();
  // Bus round-trips happen outside the state lock.  Registry records with
  // property broker=true are federation shard brokers, not plants: they
  // answer the same metrics pull but are folded into per-shard broker ads
  // instead of SLO verdicts.
  std::vector<std::pair<std::string, Result<classad::ClassAd>>> pulls;
  std::vector<std::pair<std::string, Result<classad::ClassAd>>> broker_pulls;
  for (const net::ServiceRecord& plant : registry_->discover("vmplant")) {
    auto broker_prop = plant.properties.find("broker");
    const bool is_broker =
        broker_prop != plant.properties.end() && broker_prop->second == "true";
    (is_broker ? broker_pulls : pulls)
        .emplace_back(plant.address, pull_metrics_ad(plant.address));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t answered = 0;
  for (auto& [broker, pulled] : broker_pulls) {
    BrokerSweepState& state = brokers_[broker];
    state.facts.broker = broker;
    if (!pulled.ok()) {
      FleetMetrics::get().pull_failures->add();
      kLog.debug() << broker << " silent this sweep: "
                   << pulled.error().to_string();
      continue;
    }
    ++answered;
    const classad::ClassAd& ad = pulled.value();
    const obs::MetricsSnapshot snap = obs::metrics_snapshot_from_ad(ad);
    const classad::Value members = ad.evaluate("BrokerMembers");
    if (members.type() == classad::ValueType::kInteger) {
      state.facts.members = members.as_integer();
    }
    const classad::Value headroom = ad.evaluate("SubtreeHeadroomBytes");
    if (headroom.type() == classad::ValueType::kInteger) {
      state.facts.subtree_headroom_bytes = headroom.as_integer();
    }
    state.facts.creations_forwarded =
        snap.counter(broker + ".broker.creations_forwarded.count");
    state.facts.bids_cached_served =
        snap.counter(broker + ".broker.bids.cached.count");
    state.facts.bids_refreshed =
        snap.counter(broker + ".broker.bids.refreshed.count");
    state.facts.bid_cache_size =
        snap.gauge(broker + ".broker.bid_cache.size.gauge");
    state.facts.last_seen_s = t;
    state.ever_seen = true;
  }
  for (auto& [plant, pulled] : pulls) {
    PlantState& state = plants_[plant];
    if (!state.slo) {
      state.slo = std::make_unique<obs::SloTracker>(
          config_.slo, config_.ring_buckets, config_.ring_bucket_width_s);
      state.verdict.plant = plant;
    }
    if (!pulled.ok()) {
      FleetMetrics::get().pull_failures->add();
      kLog.debug() << plant << " silent this sweep: "
                   << pulled.error().to_string();
      continue;  // staleness is judged at publish time
    }
    ++answered;
    const obs::MetricsSnapshot snap =
        obs::metrics_snapshot_from_ad(pulled.value());
    const std::uint64_t good =
        snap.counter(plant + "." + config_.good_counter_suffix);
    const std::uint64_t bad =
        snap.counter(plant + "." + config_.bad_counter_suffix);
    // A counter below the last reading means the plant restarted (registry
    // reset): treat the full reading as new events.
    const std::uint64_t good_delta =
        good >= state.last_good ? good - state.last_good : good;
    const std::uint64_t bad_delta =
        bad >= state.last_bad ? bad - state.last_bad : bad;
    state.slo->observe(t, good_delta, bad_delta);
    state.last_good = good;
    state.last_bad = bad;
    if (const obs::TimerStats* sli =
            snap.timer_stats(plant + "." + config_.sli_timer_suffix)) {
      state.sli = *sli;
    }
    state.verdict.sli_quantile_s = sli_quantile(state.sli);
    state.verdict.short_burn = state.slo->short_burn(t);
    state.verdict.long_burn = state.slo->long_burn(t);
    state.verdict.health = state.slo->health(t, state.verdict.sli_quantile_s);
    state.verdict.good_total = good;
    state.verdict.bad_total = bad;
    state.verdict.lifecycle_headroom_bytes =
        snap.gauge("lifecycle.headroom_bytes.gauge");
    state.verdict.journal_dropped =
        snap.counter("lifecycle.journal.dropped.count");
    // Latest per-stage critical-path self-time histograms from the plant's
    // tail sampler (tail.self.<stage>.seconds, folded on export).
    state.tail_self.clear();
    for (const auto& [name, stats] : snap.timers) {
      if (name.rfind("tail_self_", 0) == 0) state.tail_self[name] = stats;
    }
    state.verdict.last_seen_s = t;
    state.ever_seen = true;
  }
  publish_locked(t);
  FleetMetrics::get().sweeps->add();
  sweeps_.fetch_add(1);
  return answered;
}

void FleetAggregator::publish_locked(double now_s) {
  obs::MetricsSnapshot fleet;
  obs::TimerStats fleet_sli;
  std::uint64_t good_total = 0;
  std::uint64_t bad_total = 0;
  std::int64_t headroom_total = 0;
  std::uint64_t journal_dropped_total = 0;
  std::map<std::string, obs::TimerStats> tail_self_total;
  std::size_t fresh = 0;
  for (auto& [plant, state] : plants_) {
    const bool is_fresh =
        state.ever_seen &&
        now_s - state.verdict.last_seen_s <= config_.stale_after_s;
    state.fresh = is_fresh;
    const std::string ad_id = kObsHealthPrefix + plant;
    if (!is_fresh) {
      (void)info_->remove(ad_id);  // stale verdicts age out
      continue;
    }
    ++fresh;
    classad::ClassAd ad;
    ad.set_string(fleet_attrs::kKind, "health");
    ad.set_string(fleet_attrs::kPlant, plant);
    ad.set_real(fleet_attrs::kHealth, state.verdict.health);
    ad.set_real(fleet_attrs::kShortBurn, state.verdict.short_burn);
    ad.set_real(fleet_attrs::kLongBurn, state.verdict.long_burn);
    if (state.verdict.sli_quantile_s.has_value()) {
      ad.set_real(fleet_attrs::kSliQuantileSeconds,
                  *state.verdict.sli_quantile_s);
    }
    ad.set_integer(fleet_attrs::kGoodTotal,
                   static_cast<std::int64_t>(state.verdict.good_total));
    ad.set_integer(fleet_attrs::kBadTotal,
                   static_cast<std::int64_t>(state.verdict.bad_total));
    ad.set_integer(fleet_attrs::kHeadroomBytes,
                   state.verdict.lifecycle_headroom_bytes);
    ad.set_integer(fleet_attrs::kJournalDropped,
                   static_cast<std::int64_t>(state.verdict.journal_dropped));
    ad.set_real(fleet_attrs::kLastSeenSeconds, state.verdict.last_seen_s);
    info_->store(ad_id, ad);

    fleet_sli.merge(state.sli);
    good_total += state.verdict.good_total;
    bad_total += state.verdict.bad_total;
    headroom_total += state.verdict.lifecycle_headroom_bytes;
    journal_dropped_total += state.verdict.journal_dropped;
    for (const auto& [name, stats] : state.tail_self) {
      tail_self_total[name].merge(stats);
    }
  }
  // Per-shard broker ads + the federation slice of the rollup.
  std::size_t fresh_brokers = 0;
  std::uint64_t broker_forwarded_total = 0;
  std::uint64_t broker_cached_total = 0;
  std::uint64_t broker_refreshed_total = 0;
  for (auto& [broker, state] : brokers_) {
    const bool is_fresh =
        state.ever_seen &&
        now_s - state.facts.last_seen_s <= config_.stale_after_s;
    state.fresh = is_fresh;
    const std::string ad_id = kObsBrokerPrefix + broker;
    if (!is_fresh) {
      (void)info_->remove(ad_id);
      continue;
    }
    ++fresh_brokers;
    classad::ClassAd ad;
    ad.set_string(fleet_attrs::kKind, "broker");
    ad.set_string(fleet_attrs::kBroker, broker);
    ad.set_integer(fleet_attrs::kBrokerMembers, state.facts.members);
    ad.set_integer(
        fleet_attrs::kForwarded,
        static_cast<std::int64_t>(state.facts.creations_forwarded));
    ad.set_integer(fleet_attrs::kBidsCached,
                   static_cast<std::int64_t>(state.facts.bids_cached_served));
    ad.set_integer(fleet_attrs::kBidsRefreshed,
                   static_cast<std::int64_t>(state.facts.bids_refreshed));
    ad.set_integer(fleet_attrs::kBidCacheSize, state.facts.bid_cache_size);
    ad.set_integer(fleet_attrs::kSubtreeHeadroom,
                   state.facts.subtree_headroom_bytes);
    ad.set_real(fleet_attrs::kLastSeenSeconds, state.facts.last_seen_s);
    info_->store(ad_id, ad);
    broker_forwarded_total += state.facts.creations_forwarded;
    broker_cached_total += state.facts.bids_cached_served;
    broker_refreshed_total += state.facts.bids_refreshed;
  }
  fleet.timers["fleet." + config_.sli_timer_suffix] = fleet_sli;
  fleet.counters["fleet." + config_.good_counter_suffix] = good_total;
  fleet.counters["fleet." + config_.bad_counter_suffix] = bad_total;
  fleet.counters["fleet.lifecycle.journal.dropped.count"] =
      journal_dropped_total;
  fleet.gauges["fleet.plants.gauge"] = static_cast<std::int64_t>(fresh);
  fleet.gauges["fleet.lifecycle.headroom_bytes.gauge"] = headroom_total;
  if (fresh_brokers != 0) {
    fleet.gauges["fleet.brokers.gauge"] =
        static_cast<std::int64_t>(fresh_brokers);
    fleet.counters["fleet.broker.creations_forwarded.count"] =
        broker_forwarded_total;
    fleet.counters["fleet.broker.bids.cached.count"] = broker_cached_total;
    fleet.counters["fleet.broker.bids.refreshed.count"] =
        broker_refreshed_total;
  }
  for (const auto& [name, stats] : tail_self_total) {
    fleet.timers["fleet." + name] = stats;
  }
  classad::ClassAd rollup = obs::metrics_ad(fleet, util::FaultReport{});
  rollup.set_integer(fleet_attrs::kPlantCount,
                     static_cast<std::int64_t>(fresh));
  if (fresh_brokers != 0) {
    rollup.set_integer(fleet_attrs::kBrokerCount,
                       static_cast<std::int64_t>(fresh_brokers));
  }
  info_->store(kObsFleetMetricsId, rollup);
}

double FleetAggregator::health(const std::string& plant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = plants_.find(plant);
  if (it == plants_.end() || !it->second.fresh) return 1.0;
  return it->second.verdict.health;
}

std::vector<FleetAggregator::PlantHealth> FleetAggregator::plant_healths()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PlantHealth> out;
  for (const auto& [plant, state] : plants_) {
    if (state.fresh) out.push_back(state.verdict);
  }
  return out;
}

std::optional<FleetAggregator::PlantHealth> FleetAggregator::plant_health(
    const std::string& plant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = plants_.find(plant);
  if (it == plants_.end() || !it->second.fresh) return std::nullopt;
  return it->second.verdict;
}

std::vector<FleetAggregator::BrokerState> FleetAggregator::broker_states()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<BrokerState> out;
  for (const auto& [broker, state] : brokers_) {
    if (state.fresh) out.push_back(state.facts);
  }
  return out;
}

obs::MetricsSnapshot FleetAggregator::fleet_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  obs::MetricsSnapshot fleet;
  obs::TimerStats sli;
  std::uint64_t good_total = 0;
  std::uint64_t bad_total = 0;
  std::int64_t headroom_total = 0;
  std::uint64_t journal_dropped_total = 0;
  std::map<std::string, obs::TimerStats> tail_self_total;
  std::size_t fresh = 0;
  for (const auto& [plant, state] : plants_) {
    if (!state.fresh) continue;
    ++fresh;
    sli.merge(state.sli);
    good_total += state.verdict.good_total;
    bad_total += state.verdict.bad_total;
    headroom_total += state.verdict.lifecycle_headroom_bytes;
    journal_dropped_total += state.verdict.journal_dropped;
    for (const auto& [name, stats] : state.tail_self) {
      tail_self_total[name].merge(stats);
    }
  }
  fleet.timers["fleet." + config_.sli_timer_suffix] = sli;
  fleet.counters["fleet." + config_.good_counter_suffix] = good_total;
  fleet.counters["fleet." + config_.bad_counter_suffix] = bad_total;
  fleet.counters["fleet.lifecycle.journal.dropped.count"] =
      journal_dropped_total;
  fleet.gauges["fleet.plants.gauge"] = static_cast<std::int64_t>(fresh);
  fleet.gauges["fleet.lifecycle.headroom_bytes.gauge"] = headroom_total;
  for (const auto& [name, stats] : tail_self_total) {
    fleet.timers["fleet." + name] = stats;
  }
  return fleet;
}

std::size_t FleetAggregator::fresh_plants() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t fresh = 0;
  for (const auto& [plant, state] : plants_) {
    if (state.fresh) ++fresh;
  }
  return fresh;
}

void FleetAggregator::start_periodic(std::chrono::milliseconds interval) {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopping_ = false;
  }
  thread_ = std::thread([this, interval] {
    std::unique_lock<std::mutex> lock(stop_mutex_);
    while (!stopping_) {
      lock.unlock();
      sweep();
      lock.lock();
      stop_cv_.wait_for(lock, interval, [this] { return stopping_; });
    }
  });
}

void FleetAggregator::stop_periodic() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
    // A stopped aggregator leaves no stale verdicts behind: health and
    // rollup ads are only meaningful while sweeps keep them fresh.
    clear_published();
  }
}

void FleetAggregator::clear_published() {
  (void)info_->remove_prefixed(kObsHealthPrefix);
  (void)info_->remove_prefixed(kObsBrokerPrefix);
  (void)info_->remove(kObsFleetMetricsId);
}

bool FleetAggregator::export_jsonl(const std::string& path) const {
  std::vector<std::string> lines;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [plant, state] : plants_) {
      if (!state.fresh) continue;
      const std::string ad_id = kObsHealthPrefix + plant;
      auto ad = info_->query(ad_id);
      if (ad.ok()) lines.push_back(ad_to_json_line(ad_id, ad.value()));
    }
    for (const auto& [broker, state] : brokers_) {
      if (!state.fresh) continue;
      const std::string ad_id = kObsBrokerPrefix + broker;
      auto ad = info_->query(ad_id);
      if (ad.ok()) lines.push_back(ad_to_json_line(ad_id, ad.value()));
    }
  }
  auto rollup = info_->query(kObsFleetMetricsId);
  if (rollup.ok()) {
    lines.push_back(ad_to_json_line(kObsFleetMetricsId, rollup.value()));
  }
  std::ofstream out(path, std::ios::app);
  if (!out) return false;
  for (const std::string& line : lines) out << line << "\n";
  return true;
}

}  // namespace vmp::core
