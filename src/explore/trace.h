// Decision logs and counterexample traces for schedule exploration.
//
// A run of the state-space explorer (explore/explorer.h) is fully described
// by the sequence of decisions it made: which co-enabled event fired at each
// equal-time tie, and whether each eligible fault hook fired or not.  A
// Trace captures that sequence plus the scenario identity and the terminal
// state digest, serialized as trace.xml, so a failing schedule can be
// re-executed deterministically — `vmp_explore --replay trace.xml` — on any
// machine and land in the same terminal state (DESIGN.md §12).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.h"

namespace vmp::explore {

/// One decision the explorer made during a run.
struct Decision {
  enum class Kind { kTie, kFault };
  Kind kind = Kind::kTie;

  // kTie: the co-enabled event seqs at `when` (ascending) and the fired one.
  double when = 0.0;
  std::vector<std::uint64_t> ready;
  std::uint64_t chosen = 0;

  // kFault: the hook site and whether it fired.
  std::string point;
  std::string detail;
  bool fire = false;

  static Decision tie(double when, std::vector<std::uint64_t> ready,
                      std::uint64_t chosen);
  static Decision fault(std::string point, std::string detail, bool fire);
};

/// A recorded schedule: scenario identity + decisions + terminal digest.
struct Trace {
  /// Scenario registry name (explore/lifecycle_scenario.h) used by replay
  /// to reconstruct the configuration.
  std::string scenario;
  /// Scenario configuration spec (opaque to the trace layer).
  std::string config;
  /// Terminal-state digest recorded when the trace was captured; replay
  /// must reproduce it exactly.
  std::string digest;
  /// 0-based index of this schedule within the exploration that captured
  /// it (provenance only; replay does not use it).
  std::uint64_t schedule = 0;
  /// Names of invariants that failed at the terminal state ("" clean run —
  /// regression fixtures are clean-by-construction on HEAD).
  std::vector<std::string> violations;
  std::vector<Decision> decisions;

  std::string to_xml() const;
  static util::Result<Trace> from_xml_string(const std::string& text);
};

/// FNV-1a over a byte string; the digest primitive scenarios build their
/// terminal-state digests from (stable across platforms and processes).
std::uint64_t fnv1a64(const std::string& bytes);
/// 16-char lowercase hex of fnv1a64.
std::string digest_hex(const std::string& bytes);

}  // namespace vmp::explore
