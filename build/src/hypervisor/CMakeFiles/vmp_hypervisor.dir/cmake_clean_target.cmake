file(REMOVE_RECURSE
  "libvmp_hypervisor.a"
)
