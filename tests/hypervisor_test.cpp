// Unit tests for the guest model/agent and the GSX / UML hypervisor
// backends.
#include <gtest/gtest.h>

#include <filesystem>

#include "hypervisor/gsx.h"
#include "hypervisor/guest.h"
#include "hypervisor/uml.h"

namespace vmp::hv {
namespace {

// -- GuestState serialization ----------------------------------------------------

TEST(GuestStateTest, RenderParseRoundTrip) {
  GuestState s;
  s.os = "linux-mandrake-8.1";
  s.hostname = "ws1";
  s.ip = "10.0.0.5";
  s.mac = "02:56:4d:00:00:05";
  s.packages = {"vnc-server", "web-file-manager"};
  s.users = {{"arijit", "/home/arijit"}};
  s.mounts = {{"/home/arijit", "nfs://punch/home/arijit"}};
  s.running_services = {"vnc-server"};
  s.files = {{"/etc/motd", "hello\nworld\twith\ttabs"}};

  auto parsed = parse_guest_state(render_guest_state(s));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_TRUE(parsed.value() == s);
}

TEST(GuestStateTest, EmptyStateRoundTrips) {
  GuestState s;
  auto parsed = parse_guest_state(render_guest_state(s));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value() == s);
}

TEST(GuestStateTest, UnknownTagRejected) {
  EXPECT_FALSE(parse_guest_state("bogus\tx\n").ok());
}

// -- GuestAgent -------------------------------------------------------------------

class AgentTest : public ::testing::Test {
 protected:
  GuestOutput run(const std::string& script) {
    return agent_.execute(&state_, script);
  }
  GuestState state_;
  GuestAgent agent_;
};

TEST_F(AgentTest, InstallAndRequire) {
  auto out = run("install vnc-server\nrequire vnc-server\n");
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.commands_run, 2u);
  EXPECT_TRUE(state_.packages.count("vnc-server"));
}

TEST_F(AgentTest, RequireMissingFails) {
  auto out = run("require emacs");
  EXPECT_FALSE(out.success);
  EXPECT_NE(out.failure_message.find("emacs"), std::string::npos);
}

TEST_F(AgentTest, InstallOsSetsIdentity) {
  auto out = run("installos redhat-8.0");
  EXPECT_TRUE(out.success);
  EXPECT_EQ(state_.os, "redhat-8.0");
}

TEST_F(AgentTest, UserLifecycle) {
  EXPECT_TRUE(run("adduser alice").success);
  EXPECT_EQ(state_.users.at("alice"), "/home/alice");
  EXPECT_TRUE(run("adduser bob /export/bob").success);
  EXPECT_EQ(state_.users.at("bob"), "/export/bob");
  EXPECT_FALSE(run("adduser alice").success);  // duplicate
  EXPECT_TRUE(run("deluser alice").success);
  EXPECT_FALSE(run("deluser alice").success);
}

TEST_F(AgentTest, NetworkAndHostname) {
  EXPECT_TRUE(run("ifconfig 10.1.2.3 02:56:4d:00:00:01").success);
  EXPECT_EQ(state_.ip, "10.1.2.3");
  EXPECT_EQ(state_.mac, "02:56:4d:00:00:01");
  EXPECT_TRUE(run("hostname ws7").success);
  EXPECT_EQ(state_.hostname, "ws7");
}

TEST_F(AgentTest, MountLifecycle) {
  EXPECT_TRUE(run("mount nfs://server/home /home/u").success);
  EXPECT_EQ(state_.mounts.at("/home/u"), "nfs://server/home");
  EXPECT_FALSE(run("mount other /home/u").success);  // busy
  EXPECT_TRUE(run("umount /home/u").success);
  EXPECT_FALSE(run("umount /home/u").success);
}

TEST_F(AgentTest, ServicesRequireInstalledPackage) {
  EXPECT_FALSE(run("start vnc-server").success);
  EXPECT_TRUE(run("install vnc-server\nstart vnc-server").success);
  EXPECT_TRUE(state_.running_services.count("vnc-server"));
  EXPECT_TRUE(run("stop vnc-server").success);
  EXPECT_FALSE(state_.running_services.count("vnc-server"));
}

TEST_F(AgentTest, WriteFileAndOutputs) {
  auto out = run("writefile /etc/conf key=value with spaces\n"
                 "output ip 10.0.0.9\noutput note all good");
  EXPECT_TRUE(out.success);
  EXPECT_EQ(state_.files.at("/etc/conf"), "key=value with spaces");
  EXPECT_EQ(out.outputs.at("ip"), "10.0.0.9");
  EXPECT_EQ(out.outputs.at("note"), "all good");
}

TEST_F(AgentTest, CommentsAndBlankLinesSkipped) {
  auto out = run("# comment\n\n   \ninstall x\n");
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.commands_run, 1u);
}

TEST_F(AgentTest, FailStopsExecution) {
  auto out = run("install a\nfail deliberate break\ninstall b");
  EXPECT_FALSE(out.success);
  EXPECT_EQ(out.failure_message, "deliberate break");
  EXPECT_TRUE(state_.packages.count("a"));
  EXPECT_FALSE(state_.packages.count("b"));  // stopped before b
}

TEST_F(AgentTest, FlakyFailsNTimesThenSucceeds) {
  EXPECT_FALSE(run("flaky t1 2").success);
  EXPECT_FALSE(run("flaky t1 2").success);
  EXPECT_TRUE(run("flaky t1 2").success);
  EXPECT_TRUE(run("flaky t1 2").success);
  // Distinct tokens are independent.
  EXPECT_FALSE(run("flaky t2 1").success);
  EXPECT_TRUE(run("flaky t2 1").success);
}

TEST_F(AgentTest, SshKeygenRequiresUserAndIsDeterministic) {
  EXPECT_FALSE(run("sshkeygen ghost").success);
  ASSERT_TRUE(run("hostname ws1\nifconfig 10.0.0.2\nadduser alice").success);
  auto out1 = run("sshkeygen alice");
  ASSERT_TRUE(out1.success);
  const std::string key1 = out1.outputs.at("SSHKey_alice");
  EXPECT_FALSE(key1.empty());
  EXPECT_TRUE(state_.files.count("/home/alice/.ssh/id_rsa.pub"));
  // Same identity -> same fingerprint; different host -> different key.
  auto out2 = run("sshkeygen alice");
  EXPECT_EQ(out2.outputs.at("SSHKey_alice"), key1);
  ASSERT_TRUE(run("hostname ws2").success);
  auto out3 = run("sshkeygen alice");
  EXPECT_NE(out3.outputs.at("SSHKey_alice"), key1);
}

TEST_F(AgentTest, GridCertWritesCredentialAndOutput) {
  EXPECT_FALSE(run("gridcert ghost /O=Grid/CN=x").success);
  ASSERT_TRUE(run("adduser bob").success);
  auto out = run("gridcert bob /O=Grid/OU=ACIS/CN=Bob Smith");
  ASSERT_TRUE(out.success);
  EXPECT_EQ(out.outputs.at("GSISubject_bob"), "/O=Grid/OU=ACIS/CN=Bob Smith");
  EXPECT_EQ(state_.files.at("/etc/grid-security/bob.pem"),
            "SUBJECT=/O=Grid/OU=ACIS/CN=Bob Smith");
  EXPECT_FALSE(run("gridcert bob").success);  // missing subject
}

TEST_F(AgentTest, UnknownCommandFails) {
  EXPECT_FALSE(run("explode now").success);
}

TEST_F(AgentTest, MissingArgumentsFail) {
  EXPECT_FALSE(run("install").success);
  EXPECT_FALSE(run("adduser").success);
  EXPECT_FALSE(run("mount just-one").success);
  EXPECT_FALSE(run("output keyonly").success);
  EXPECT_FALSE(run("flaky token notanumber").success);
}

// -- Hypervisor fixtures --------------------------------------------------------------

class HypervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("vmp-hv-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    store_ = std::make_unique<storage::ArtifactStore>(root_);
  }
  void TearDown() override {
    store_.reset();
    std::filesystem::remove_all(root_);
  }

  CloneSource make_golden(bool suspended, std::uint64_t mem_mb = 64,
                          const std::string& dir = "warehouse/golden") {
    storage::MachineSpec spec;
    spec.os = "linux-mandrake-8.1";
    spec.memory_bytes = mem_mb << 20;
    spec.suspended = suspended;
    spec.disk = storage::DiskSpec{"disk0", 256ull << 20, suspended ? 4u : 1u,
                                  storage::DiskMode::kNonPersistent};
    storage::ImageLayout layout{dir};
    EXPECT_TRUE(storage::materialize_image(store_.get(), layout, spec).ok());

    CloneSource source;
    source.layout = layout;
    source.spec = spec;
    source.guest.os = spec.os;
    source.guest.packages = {"vnc-server"};
    return source;
  }

  std::filesystem::path root_;
  std::unique_ptr<storage::ArtifactStore> store_;
};

// -- GSX -------------------------------------------------------------------------------

TEST_F(HypervisorTest, GsxCloneResumeLifecycle) {
  GsxHypervisor gsx(store_.get());
  EXPECT_EQ(gsx.type(), "vmware-gsx");
  EXPECT_TRUE(gsx.resumes_from_checkpoint());

  const CloneSource golden = make_golden(/*suspended=*/true);
  auto id = gsx.clone_vm(golden, "clones/vm1", "vm1");
  ASSERT_TRUE(id.ok()) << id.error().to_string();

  const VmInstance* vm = gsx.find("vm1");
  ASSERT_NE(vm, nullptr);
  EXPECT_EQ(vm->power, PowerState::kStopped);
  EXPECT_EQ(vm->guest.os, "linux-mandrake-8.1");
  EXPECT_TRUE(vm->guest.packages.count("vnc-server"));

  ASSERT_TRUE(gsx.start_vm("vm1").ok());
  EXPECT_EQ(gsx.find("vm1")->power, PowerState::kRunning);
  // Resume keeps services/state (no boot) — the golden's packages persist.
  EXPECT_TRUE(gsx.find("vm1")->guest.packages.count("vnc-server"));

  ASSERT_TRUE(gsx.power_off("vm1").ok());
  EXPECT_EQ(gsx.find("vm1")->power, PowerState::kStopped);
  ASSERT_TRUE(gsx.destroy_vm("vm1").ok());
  EXPECT_FALSE(store_->exists("clones/vm1"));
}

TEST_F(HypervisorTest, GsxRefusesBootOnlyGolden) {
  GsxHypervisor gsx(store_.get());
  const CloneSource golden = make_golden(/*suspended=*/false);
  auto id = gsx.clone_vm(golden, "clones/vm1", "vm1");
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.error().code(), util::ErrorCode::kFailedPrecondition);
}

TEST_F(HypervisorTest, GsxSuspendWritesCheckpoint) {
  GsxHypervisor gsx(store_.get());
  auto id = gsx.clone_vm(make_golden(true), "clones/vm1", "vm1");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(gsx.start_vm("vm1").ok());
  ASSERT_TRUE(gsx.execute_on_guest("vm1", "adduser eve").ok());
  ASSERT_TRUE(gsx.suspend_vm("vm1").ok());
  EXPECT_EQ(gsx.find("vm1")->power, PowerState::kSuspended);
  // guest.state on disk reflects the suspended guest.
  auto text = store_->read_file("clones/vm1/guest.state");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text.value().find("eve"), std::string::npos);
}

TEST_F(HypervisorTest, DuplicateVmIdRejected) {
  GsxHypervisor gsx(store_.get());
  ASSERT_TRUE(gsx.clone_vm(make_golden(true), "clones/a", "vm1").ok());
  auto dup = gsx.clone_vm(make_golden(true), "clones/b", "vm1");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code(), util::ErrorCode::kAlreadyExists);
}

TEST_F(HypervisorTest, OperationsOnMissingVmFail) {
  GsxHypervisor gsx(store_.get());
  EXPECT_FALSE(gsx.start_vm("ghost").ok());
  EXPECT_FALSE(gsx.power_off("ghost").ok());
  EXPECT_FALSE(gsx.destroy_vm("ghost").ok());
  EXPECT_FALSE(gsx.execute_on_guest("ghost", "install x").ok());
}

TEST_F(HypervisorTest, DoubleStartRejected) {
  GsxHypervisor gsx(store_.get());
  ASSERT_TRUE(gsx.clone_vm(make_golden(true), "clones/a", "vm1").ok());
  ASSERT_TRUE(gsx.start_vm("vm1").ok());
  EXPECT_FALSE(gsx.start_vm("vm1").ok());
}

TEST_F(HypervisorTest, InjectedStartFailureFiresOnce) {
  GsxHypervisor gsx(store_.get());
  ASSERT_TRUE(gsx.clone_vm(make_golden(true), "clones/a", "vm1").ok());
  gsx.inject_start_failure("vm1");
  EXPECT_FALSE(gsx.start_vm("vm1").ok());
  EXPECT_TRUE(gsx.start_vm("vm1").ok());  // recovers on retry
}

TEST_F(HypervisorTest, GuestExecutionRequiresRunning) {
  GsxHypervisor gsx(store_.get());
  ASSERT_TRUE(gsx.clone_vm(make_golden(true), "clones/a", "vm1").ok());
  EXPECT_FALSE(gsx.execute_on_guest("vm1", "install x").ok());
}

TEST_F(HypervisorTest, IsoScriptPath) {
  GsxHypervisor gsx(store_.get());
  ASSERT_TRUE(gsx.clone_vm(make_golden(true), "clones/a", "vm1").ok());
  ASSERT_TRUE(gsx.start_vm("vm1").ok());

  // No ISO connected yet.
  EXPECT_FALSE(gsx.execute_connected_script("vm1").ok());

  auto iso = gsx.connect_script_iso("vm1", "install emacs\noutput ed emacs");
  ASSERT_TRUE(iso.ok());
  EXPECT_TRUE(store_->exists(iso.value()));

  auto out = gsx.execute_connected_script("vm1");
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().success);
  EXPECT_EQ(out.value().outputs.at("ed"), "emacs");
  EXPECT_TRUE(gsx.find("vm1")->guest.packages.count("emacs"));

  // Second ISO: the daemon executes the most recently connected CD.
  ASSERT_TRUE(gsx.connect_script_iso("vm1", "install vim").ok());
  ASSERT_TRUE(gsx.execute_connected_script("vm1").ok());
  EXPECT_TRUE(gsx.find("vm1")->guest.packages.count("vim"));
  EXPECT_EQ(gsx.find("vm1")->connected_isos.size(), 2u);
}

TEST_F(HypervisorTest, ResidentMemoryAccounting) {
  GsxHypervisor gsx(store_.get());
  ASSERT_TRUE(gsx.clone_vm(make_golden(true, 64), "clones/a", "vm1").ok());
  ASSERT_TRUE(gsx.clone_vm(make_golden(true, 32, "warehouse/golden32"),
                           "clones/b", "vm2")
                  .ok());
  EXPECT_EQ(gsx.resident_memory_bytes(), 0u);  // both stopped
  ASSERT_TRUE(gsx.start_vm("vm1").ok());
  EXPECT_EQ(gsx.resident_memory_bytes(), 64ull << 20);
  ASSERT_TRUE(gsx.start_vm("vm2").ok());
  EXPECT_EQ(gsx.resident_memory_bytes(), 96ull << 20);
  ASSERT_TRUE(gsx.destroy_vm("vm1").ok());
  EXPECT_EQ(gsx.resident_memory_bytes(), 32ull << 20);
  EXPECT_EQ(gsx.instance_ids().size(), 1u);
}

// -- UML --------------------------------------------------------------------------------

TEST_F(HypervisorTest, UmlBootLifecycle) {
  UmlHypervisor uml(store_.get());
  EXPECT_EQ(uml.type(), "uml");
  EXPECT_FALSE(uml.resumes_from_checkpoint());

  CloneSource golden = make_golden(/*suspended=*/false);
  golden.guest.running_services = {"vnc-server"};  // was running at capture
  auto id = uml.clone_vm(golden, "clones/u1", "u1");
  ASSERT_TRUE(id.ok()) << id.error().to_string();

  ASSERT_TRUE(uml.start_vm("u1").ok());
  // Boot resets transient runtime state: services are not running.
  EXPECT_TRUE(uml.find("u1")->guest.running_services.empty());
  // But installed packages (disk state) survive.
  EXPECT_TRUE(uml.find("u1")->guest.packages.count("vnc-server"));
}

TEST_F(HypervisorTest, UmlRefusesSuspendedGolden) {
  UmlHypervisor uml(store_.get());
  auto id = uml.clone_vm(make_golden(/*suspended=*/true), "clones/u1", "u1");
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.error().code(), util::ErrorCode::kFailedPrecondition);
}

TEST_F(HypervisorTest, UmlHasNoSuspendSupport) {
  UmlHypervisor uml(store_.get());
  ASSERT_TRUE(uml.clone_vm(make_golden(false), "clones/u1", "u1").ok());
  ASSERT_TRUE(uml.start_vm("u1").ok());
  EXPECT_FALSE(uml.suspend_vm("u1").ok());
}

TEST_F(HypervisorTest, UmlCloneIsCowShared) {
  UmlHypervisor uml(store_.get());
  ASSERT_TRUE(uml.clone_vm(make_golden(false), "clones/u1", "u1").ok());
  const VmInstance* vm = uml.find("u1");
  // The root file-system span is a link; no memory state was copied.
  EXPECT_EQ(vm->clone_report.disk.links_created, 1u);
  EXPECT_EQ(vm->clone_report.memory.bytes_written, 0u);
}

}  // namespace
}  // namespace vmp::hv
