// Fault-injection framework tests: FaultPlan parsing (spec string and XML),
// rule semantics (after/times/target/probability/windows), deterministic
// replay, and the zero-impact guarantee of a disarmed registry.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/plant.h"
#include "fault/fault.h"
#include "util/error.h"
#include "util/retry.h"
#include "warehouse/warehouse.h"
#include "workload/request_gen.h"

namespace vmp {
namespace {

using fault::FaultPlan;
using fault::FaultRegistry;
using fault::ScopedFaultPlan;
using util::ErrorCode;

// -- Parsing ------------------------------------------------------------------------

TEST(FaultPlanTest, EmptySpecYieldsEmptyPlan) {
  auto plan = FaultPlan::parse("");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().empty());
}

TEST(FaultPlanTest, ParsesFullRule) {
  auto plan = FaultPlan::parse(
      "store.write:target=clones,after=2,times=1,code=INTERNAL,p=0.5,"
      "from=1.5,until=9,msg=disk died", 7);
  ASSERT_TRUE(plan.ok()) << plan.error().to_string();
  ASSERT_EQ(plan.value().rules().size(), 1u);
  const fault::FaultRule& r = plan.value().rules()[0];
  EXPECT_EQ(r.point, "store.write");
  EXPECT_EQ(r.target, "clones");
  EXPECT_EQ(r.after, 2u);
  EXPECT_EQ(r.times, 1u);
  EXPECT_EQ(r.code, ErrorCode::kInternal);
  EXPECT_TRUE(r.code_explicit);
  EXPECT_DOUBLE_EQ(r.probability, 0.5);
  EXPECT_DOUBLE_EQ(r.from_time, 1.5);
  EXPECT_DOUBLE_EQ(r.until_time, 9.0);
  EXPECT_EQ(r.message, "disk died");
  EXPECT_EQ(plan.value().seed(), 7u);
}

TEST(FaultPlanTest, MultiRulePlansKeepOrder) {
  auto plan = FaultPlan::parse("bus.send;store.read:times=2;bus.timeout");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().rules().size(), 3u);
  EXPECT_EQ(plan.value().rules()[0].point, "bus.send");
  EXPECT_EQ(plan.value().rules()[1].point, "store.read");
  EXPECT_EQ(plan.value().rules()[2].point, "bus.timeout");
}

TEST(FaultPlanTest, RejectsUnknownPoint) {
  auto plan = FaultPlan::parse("store.wrte:times=1");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.error().code(), ErrorCode::kParseError);
}

TEST(FaultPlanTest, RejectsUnknownKeyBadCodeAndBadProbability) {
  EXPECT_EQ(FaultPlan::parse("bus.send:bogus=1").error().code(),
            ErrorCode::kParseError);
  EXPECT_EQ(FaultPlan::parse("bus.send:code=NOT_A_CODE").error().code(),
            ErrorCode::kParseError);
  EXPECT_EQ(FaultPlan::parse("bus.send:code=OK").error().code(),
            ErrorCode::kParseError);
  EXPECT_EQ(FaultPlan::parse("bus.send:p=1.5").error().code(),
            ErrorCode::kParseError);
}

TEST(FaultPlanTest, DefaultCodesPerPoint) {
  EXPECT_EQ(fault::default_code("bus.timeout"), ErrorCode::kTimeout);
  EXPECT_EQ(fault::default_code("hypervisor.resume"), ErrorCode::kInternal);
  EXPECT_EQ(fault::default_code("plant.configure_action"),
            ErrorCode::kConfigActionFailed);
  EXPECT_EQ(fault::default_code("store.write"), ErrorCode::kUnavailable);
  auto plan = FaultPlan::parse("bus.timeout");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().rules()[0].code, ErrorCode::kTimeout);
  EXPECT_FALSE(plan.value().rules()[0].code_explicit);
}

TEST(FaultPlanTest, SpecStringRoundTrips) {
  const std::string spec =
      "store.write:target=clones,after=2,times=1,code=INTERNAL;"
      "bus.send:p=0.25;hypervisor.resume:times=3";
  auto plan = FaultPlan::parse(spec, 99);
  ASSERT_TRUE(plan.ok());
  auto reparsed = FaultPlan::parse(plan.value().to_spec_string(), 99);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string();
  EXPECT_EQ(reparsed.value().to_spec_string(),
            plan.value().to_spec_string());
  ASSERT_EQ(reparsed.value().rules().size(), 3u);
  EXPECT_EQ(reparsed.value().rules()[0].after, 2u);
  EXPECT_EQ(reparsed.value().rules()[1].probability, 0.25);
}

TEST(FaultPlanTest, XmlFormMatchesSpecForm) {
  auto from_xml = FaultPlan::from_xml_string(
      "<fault-plan seed=\"5\">"
      "<fault point=\"store.write\" target=\"clones\" times=\"1\"/>"
      "<fault point=\"bus.timeout\" p=\"0.5\"/>"
      "</fault-plan>");
  ASSERT_TRUE(from_xml.ok()) << from_xml.error().to_string();
  auto from_spec =
      FaultPlan::parse("store.write:target=clones,times=1;bus.timeout:p=0.5", 5);
  ASSERT_TRUE(from_spec.ok());
  EXPECT_EQ(from_xml.value().to_spec_string(),
            from_spec.value().to_spec_string());
  EXPECT_EQ(from_xml.value().seed(), 5u);
}

TEST(FaultPlanTest, XmlRejectsUnknownPointToo) {
  auto plan = FaultPlan::from_xml_string(
      "<fault-plan><fault point=\"nope\"/></fault-plan>");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.error().code(), ErrorCode::kParseError);
}

// -- Registry semantics --------------------------------------------------------------

TEST(FaultRegistryTest, AfterAndTimesGateFiring) {
  ScopedFaultPlan scoped(
      FaultPlan::parse("store.read:after=2,times=2").value());
  FaultRegistry& reg = FaultRegistry::instance();
  // Consults 1,2 pass; 3,4 fire; 5+ pass (times exhausted).
  EXPECT_TRUE(fault::check(fault::points::kStoreRead, "f").ok());
  EXPECT_TRUE(fault::check(fault::points::kStoreRead, "f").ok());
  auto third = fault::check(fault::points::kStoreRead, "f");
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.error().code(), ErrorCode::kUnavailable);
  EXPECT_FALSE(fault::check(fault::points::kStoreRead, "f").ok());
  EXPECT_TRUE(fault::check(fault::points::kStoreRead, "f").ok());
  EXPECT_EQ(reg.fired(fault::points::kStoreRead), 2u);
  EXPECT_EQ(reg.checks(), 5u);
}

TEST(FaultRegistryTest, TargetFiltersOnDetailSubstring) {
  ScopedFaultPlan scoped(
      FaultPlan::parse("bus.send:target=plant1").value());
  EXPECT_TRUE(fault::check(fault::points::kBusSend, "plant0").ok());
  EXPECT_FALSE(fault::check(fault::points::kBusSend, "plant1").ok());
  EXPECT_TRUE(fault::check(fault::points::kBusSend, "plant2").ok());
  EXPECT_EQ(FaultRegistry::instance().fired_total(), 1u);
}

TEST(FaultRegistryTest, CustomMessageAndCodeSurface) {
  ScopedFaultPlan scoped(
      FaultPlan::parse("store.write:code=RESOURCE_EXHAUSTED,msg=disk full")
          .value());
  auto s = fault::check(fault::points::kStoreWrite, "x");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(s.error().message(), "disk full");
}

TEST(FaultRegistryTest, SimTimeWindowGatesRules) {
  ScopedFaultPlan scoped(
      FaultPlan::parse("bus.send:from=10,until=20").value());
  FaultRegistry& reg = FaultRegistry::instance();
  double now = 0.0;
  reg.set_clock([&now] { return now; });
  EXPECT_TRUE(fault::check(fault::points::kBusSend, "a").ok());   // before
  now = 10.0;
  EXPECT_FALSE(fault::check(fault::points::kBusSend, "a").ok());  // inside
  now = 19.9;
  EXPECT_FALSE(fault::check(fault::points::kBusSend, "a").ok());  // inside
  now = 20.0;
  EXPECT_TRUE(fault::check(fault::points::kBusSend, "a").ok());   // past
}

TEST(FaultRegistryTest, DeterministicReplaySameSeedSameSequence) {
  // Probabilistic plan driven through an identical consult schedule twice:
  // the firing sequence must replay byte-identically.
  const auto run = [](std::uint64_t seed) {
    ScopedFaultPlan scoped(
        FaultPlan::parse("store.write:p=0.5;bus.send:p=0.3,code=TIMEOUT", seed)
            .value());
    for (int i = 0; i < 64; ++i) {
      (void)fault::check(fault::points::kStoreWrite,
                         "file-" + std::to_string(i % 7));
      (void)fault::check(fault::points::kBusSend,
                         "plant" + std::to_string(i % 3));
    }
    return FaultRegistry::instance().sequence();
  };
  const std::vector<std::string> first = run(1234);
  const std::vector<std::string> second = run(1234);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
  // Entries are "point@detail" records in firing order.
  for (const std::string& entry : first) {
    EXPECT_NE(entry.find('@'), std::string::npos) << entry;
  }
}

TEST(FaultRegistryTest, ReportCountsPerPoint) {
  ScopedFaultPlan scoped(
      FaultPlan::parse("store.read:times=2;bus.send:times=1").value());
  (void)fault::check(fault::points::kStoreRead, "a");
  (void)fault::check(fault::points::kStoreRead, "b");
  (void)fault::check(fault::points::kStoreRead, "c");  // exhausted, passes
  (void)fault::check(fault::points::kBusSend, "d");
  util::FaultReport report = FaultRegistry::instance().report();
  EXPECT_EQ(report.count("store.read"), 2u);
  EXPECT_EQ(report.count("bus.send"), 1u);
  EXPECT_EQ(report.count("never.fired"), 0u);
  EXPECT_EQ(report.total(), 3u);
  EXPECT_NE(report.to_string().find("store.read=2"), std::string::npos);
}

TEST(FaultRegistryTest, ScopedPlanDisarmsOnDestruction) {
  {
    ScopedFaultPlan scoped(FaultPlan::parse("store.read").value());
    EXPECT_TRUE(FaultRegistry::instance().armed());
    EXPECT_FALSE(fault::check(fault::points::kStoreRead, "x").ok());
  }
  EXPECT_FALSE(FaultRegistry::instance().armed());
  EXPECT_TRUE(fault::check(fault::points::kStoreRead, "x").ok());
}

// -- Disabled registry: zero behavioral difference -----------------------------------

class FaultZeroImpactTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("vmp-fault-zero-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  // One full plant-level creation; returns the classad rendered to XML so
  // runs can be compared structurally.
  std::string run_creation(const std::string& subdir) {
    storage::ArtifactStore store(root_ / subdir);
    warehouse::Warehouse warehouse(&store, "warehouse");
    EXPECT_TRUE(workload::publish_paper_goldens(&warehouse).ok());
    core::VmPlant plant(core::PlantConfig{}, &store, &warehouse);
    auto ad = plant.create(workload::workspace_request(32, 0, "d"));
    EXPECT_TRUE(ad.ok());
    if (!ad.ok()) return "<failed>";
    xml::Element out("ad");
    ad.value().to_xml(&out);
    return out.to_string();
  }

  std::filesystem::path root_;
};

TEST_F(FaultZeroImpactTest, DisarmedRegistryChangesNothing) {
  FaultRegistry::instance().clear();
  const std::string baseline = run_creation("baseline");
  const std::string disarmed = run_creation("disarmed");
  EXPECT_EQ(baseline, disarmed);
  // An armed-but-empty plan is also inert (checks are counted, nothing
  // fires, results identical).
  std::string empty_armed;
  {
    ScopedFaultPlan scoped(FaultPlan::parse("").value());
    empty_armed = run_creation("empty-armed");
    EXPECT_EQ(FaultRegistry::instance().fired_total(), 0u);
    EXPECT_GT(FaultRegistry::instance().checks(), 0u);
  }
  EXPECT_EQ(baseline, empty_armed);
}

// -- Retry policy arithmetic ---------------------------------------------------------

TEST(RetryPolicyTest, BackoffIsDeterministicExponentialWithCeiling) {
  util::RetryPolicy policy;
  policy.initial_backoff_s = 0.5;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 3.0;
  EXPECT_DOUBLE_EQ(policy.backoff(0), 0.5);
  EXPECT_DOUBLE_EQ(policy.backoff(1), 1.0);
  EXPECT_DOUBLE_EQ(policy.backoff(2), 2.0);
  EXPECT_DOUBLE_EQ(policy.backoff(3), 3.0);  // clamped
  EXPECT_DOUBLE_EQ(policy.backoff(9), 3.0);
}

TEST(RetryPolicyTest, StateHonorsAttemptCap) {
  util::RetryPolicy policy;
  policy.max_attempts = 3;
  util::RetryState state(policy);
  EXPECT_TRUE(state.allow_retry());   // failure 1 -> retry 1
  EXPECT_TRUE(state.allow_retry());   // failure 2 -> retry 2
  EXPECT_FALSE(state.allow_retry());  // failure 3 == cap
  EXPECT_FALSE(state.timed_out());
  EXPECT_EQ(state.retries_granted(), 2);
  EXPECT_DOUBLE_EQ(state.elapsed_backoff_s(), 0.5 + 1.0);
}

TEST(RetryPolicyTest, StateHonorsSimTimeBudget) {
  util::RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_s = 4.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 64.0;
  policy.request_timeout_s = 10.0;
  util::RetryState state(policy);
  EXPECT_TRUE(state.allow_retry());   // 4s elapsed
  EXPECT_FALSE(state.allow_retry());  // +8s would exceed 10s budget
  EXPECT_TRUE(state.timed_out());
}

TEST(RetryPolicyTest, SingleAttemptPolicyNeverRetries) {
  util::RetryPolicy policy;
  policy.max_attempts = 1;
  util::RetryState state(policy);
  EXPECT_FALSE(state.allow_retry());
  EXPECT_FALSE(state.timed_out());
}

}  // namespace
}  // namespace vmp
