file(REMOVE_RECURSE
  "CMakeFiles/shop_test.dir/shop_test.cpp.o"
  "CMakeFiles/shop_test.dir/shop_test.cpp.o.d"
  "shop_test"
  "shop_test.pdb"
  "shop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
