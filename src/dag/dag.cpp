#include "dag/dag.h"

#include <algorithm>
#include <cstdlib>
#include <deque>

#include "util/logging.h"
#include "util/strings.h"

namespace vmp::dag {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

ConfigDag::ConfigDag(const ConfigDag& other) { *this = other; }

ConfigDag& ConfigDag::operator=(const ConfigDag& other) {
  if (this == &other) return *this;
  nodes_.clear();
  order_ = other.order_;
  for (const auto& [id, node] : other.nodes_) {
    Node copy;
    copy.action = node.action;
    copy.successors = node.successors;
    copy.predecessors = node.predecessors;
    if (node.error_subgraph) {
      copy.error_subgraph = std::make_unique<ConfigDag>(*node.error_subgraph);
    }
    nodes_.emplace(id, std::move(copy));
  }
  return *this;
}

Status ConfigDag::add_action(Action action) {
  if (action.id().empty()) {
    return Status(ErrorCode::kInvalidArgument, "action id must not be empty");
  }
  if (action.operation().empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "action operation must not be empty (id=" + action.id() + ")");
  }
  if (action.id() == "START" || action.id() == "FINISH") {
    return Status(ErrorCode::kInvalidArgument,
                  "START/FINISH are reserved node ids");
  }
  if (nodes_.count(action.id())) {
    return Status(ErrorCode::kAlreadyExists,
                  "duplicate action id: " + action.id());
  }
  order_.push_back(action.id());
  Node node;
  node.action = std::move(action);
  nodes_.emplace(order_.back(), std::move(node));
  return Status();
}

Status ConfigDag::add_edge(const std::string& from, const std::string& to) {
  if (from == to) {
    return Status(ErrorCode::kInvalidArgument, "self-loop on " + from);
  }
  auto from_it = nodes_.find(from);
  auto to_it = nodes_.find(to);
  if (from_it == nodes_.end()) {
    return Status(ErrorCode::kNotFound, "edge source not found: " + from);
  }
  if (to_it == nodes_.end()) {
    return Status(ErrorCode::kNotFound, "edge target not found: " + to);
  }
  if (from_it->second.successors.count(to)) {
    return Status(ErrorCode::kAlreadyExists,
                  "duplicate edge " + from + " -> " + to);
  }
  from_it->second.successors.insert(to);
  to_it->second.predecessors.insert(from);
  return Status();
}

Status ConfigDag::set_error_subgraph(const std::string& action_id,
                                     ConfigDag subgraph) {
  auto it = nodes_.find(action_id);
  if (it == nodes_.end()) {
    return Status(ErrorCode::kNotFound,
                  "no action for error sub-graph: " + action_id);
  }
  VMP_RETURN_IF_ERROR(subgraph.validate());
  it->second.error_subgraph = std::make_unique<ConfigDag>(std::move(subgraph));
  return Status();
}

bool ConfigDag::has_action(const std::string& id) const {
  return nodes_.count(id) != 0;
}

const Action* ConfigDag::action(const std::string& id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second.action;
}

const std::set<std::string>& ConfigDag::successors(const std::string& id) const {
  static const std::set<std::string> kEmpty;
  auto it = nodes_.find(id);
  return it == nodes_.end() ? kEmpty : it->second.successors;
}

const std::set<std::string>& ConfigDag::predecessors(
    const std::string& id) const {
  static const std::set<std::string> kEmpty;
  auto it = nodes_.find(id);
  return it == nodes_.end() ? kEmpty : it->second.predecessors;
}

std::size_t ConfigDag::edge_count() const {
  std::size_t n = 0;
  for (const auto& [id, node] : nodes_) n += node.successors.size();
  return n;
}

const ConfigDag* ConfigDag::error_subgraph(const std::string& action_id) const {
  auto it = nodes_.find(action_id);
  return it == nodes_.end() ? nullptr : it->second.error_subgraph.get();
}

Result<std::vector<std::string>> ConfigDag::topological_sort() const {
  // Kahn's algorithm with insertion-order tie-breaking: the ready list is
  // scanned in order_ sequence, so the output is deterministic.
  std::map<std::string, std::size_t> in_degree;
  for (const auto& [id, node] : nodes_) {
    in_degree[id] = node.predecessors.size();
  }

  std::vector<std::string> result;
  result.reserve(nodes_.size());
  std::set<std::string> emitted;

  while (result.size() < nodes_.size()) {
    bool progressed = false;
    for (const std::string& id : order_) {
      if (emitted.count(id)) continue;
      if (in_degree[id] != 0) continue;
      result.push_back(id);
      emitted.insert(id);
      for (const std::string& succ : nodes_.at(id).successors) {
        --in_degree[succ];
      }
      progressed = true;
    }
    if (!progressed) {
      // Remaining nodes all have in-degree > 0: cycle.  Name one member.
      std::string member;
      for (const std::string& id : order_) {
        if (!emitted.count(id)) {
          member = id;
          break;
        }
      }
      return Result<std::vector<std::string>>(
          Error(ErrorCode::kInvalidArgument,
                "configuration DAG contains a cycle through '" + member + "'"));
    }
  }
  return result;
}

Status ConfigDag::validate() const {
  auto sorted = topological_sort();
  if (!sorted.ok()) return sorted.error();
  // Validate error sub-graphs recursively.
  for (const auto& [id, node] : nodes_) {
    if (node.error_subgraph) {
      Status s = node.error_subgraph->validate();
      if (!s.ok()) {
        return Status(s.error().code(),
                      "error sub-graph of '" + id + "': " + s.error().message());
      }
    }
  }
  return Status();
}

std::set<std::string> ConfigDag::ancestors(const std::string& id) const {
  std::set<std::string> out;
  std::deque<std::string> frontier(predecessors(id).begin(),
                                   predecessors(id).end());
  while (!frontier.empty()) {
    const std::string current = frontier.front();
    frontier.pop_front();
    if (!out.insert(current).second) continue;
    for (const std::string& pred : predecessors(current)) {
      if (!out.count(pred)) frontier.push_back(pred);
    }
  }
  return out;
}

std::set<std::string> ConfigDag::descendants(const std::string& id) const {
  std::set<std::string> out;
  std::deque<std::string> frontier(successors(id).begin(),
                                   successors(id).end());
  while (!frontier.empty()) {
    const std::string current = frontier.front();
    frontier.pop_front();
    if (!out.insert(current).second) continue;
    for (const std::string& succ : successors(current)) {
      if (!out.count(succ)) frontier.push_back(succ);
    }
  }
  return out;
}

bool ConfigDag::orders_before(const std::string& before,
                              const std::string& after) const {
  return ancestors(after).count(before) != 0;
}

Result<std::map<std::string, std::string>> ConfigDag::signature_index() const {
  std::map<std::string, std::string> index;
  for (const std::string& id : order_) {
    const std::string sig = nodes_.at(id).action.signature();
    auto [it, inserted] = index.emplace(sig, id);
    if (!inserted) {
      return Result<std::map<std::string, std::string>>(Error(
          ErrorCode::kInvalidArgument,
          "duplicate action signature '" + sig + "' (nodes '" + it->second +
              "' and '" + id + "'); matching requires unique signatures"));
    }
  }
  return index;
}

std::size_t ConfigDag::total_nodes_with_subgraphs() const {
  std::size_t n = nodes_.size();
  for (const auto& [id, node] : nodes_) {
    if (node.error_subgraph) n += node.error_subgraph->total_nodes_with_subgraphs();
  }
  return n;
}

bool ConfigDag::operator==(const ConfigDag& other) const {
  if (order_ != other.order_) return false;
  for (const auto& [id, node] : nodes_) {
    auto it = other.nodes_.find(id);
    if (it == other.nodes_.end()) return false;
    const Node& theirs = it->second;
    if (node.action.signature() != theirs.action.signature() ||
        node.action.scope() != theirs.action.scope() ||
        node.action.script() != theirs.action.script() ||
        node.successors != theirs.successors) {
      return false;
    }
    const bool mine_has = node.error_subgraph != nullptr;
    const bool theirs_has = theirs.error_subgraph != nullptr;
    if (mine_has != theirs_has) return false;
    if (mine_has && !(*node.error_subgraph == *theirs.error_subgraph)) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// DagBuilder
// ---------------------------------------------------------------------------

namespace {
void record(util::Status* first_error, util::Status status) {
  if (first_error->ok() && !status.ok()) *first_error = std::move(status);
}
}  // namespace

DagBuilder& DagBuilder::guest(const std::string& id,
                              const std::string& operation,
                              std::map<std::string, std::string> params) {
  Action a(id, operation, ActionScope::kGuest);
  for (auto& [k, v] : params) a.set_param(k, std::move(v));
  return action(std::move(a));
}

DagBuilder& DagBuilder::host(const std::string& id,
                             const std::string& operation,
                             std::map<std::string, std::string> params) {
  Action a(id, operation, ActionScope::kHost);
  for (auto& [k, v] : params) a.set_param(k, std::move(v));
  return action(std::move(a));
}

DagBuilder& DagBuilder::action(Action a) {
  record(&first_error_, dag_.add_action(std::move(a)));
  return *this;
}

DagBuilder& DagBuilder::edge(const std::string& from, const std::string& to) {
  record(&first_error_, dag_.add_edge(from, to));
  return *this;
}

DagBuilder& DagBuilder::chain(const std::vector<std::string>& ids) {
  for (std::size_t i = 1; i < ids.size(); ++i) {
    edge(ids[i - 1], ids[i]);
  }
  return *this;
}

DagBuilder& DagBuilder::error_subgraph(const std::string& action_id,
                                       ConfigDag subgraph) {
  record(&first_error_, dag_.set_error_subgraph(action_id, std::move(subgraph)));
  return *this;
}

ConfigDag DagBuilder::build() {
  auto result = try_build();
  if (!result.ok()) {
    util::Logger("dag-builder").error()
        << "build failed: " << result.error().to_string();
    std::abort();
  }
  return std::move(result).value();
}

Result<ConfigDag> DagBuilder::try_build() {
  if (!first_error_.ok()) return first_error_.propagate<ConfigDag>();
  Status valid = dag_.validate();
  if (!valid.ok()) return valid.propagate<ConfigDag>();
  return std::move(dag_);
}

}  // namespace vmp::dag
