#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace vmp::obs {

void Timer::record(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  summary_.add(seconds);
  if (histogram_) histogram_->add(seconds);
}

void Timer::set_bins(double lo, double hi, double width) {
  std::lock_guard<std::mutex> lock(mutex_);
  histogram_ = std::make_unique<util::Histogram>(lo, hi, width);
}

util::Summary Timer::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return summary_;
}

std::optional<util::Histogram> Timer::histogram() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!histogram_) return std::nullopt;
  return *histogram_;
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

std::int64_t MetricsSnapshot::gauge(const std::string& name) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? 0 : it->second;
}

std::optional<double> MetricsSnapshot::ratio(
    const std::string& hit_counter, const std::string& miss_counter) const {
  const double hits = static_cast<double>(counter(hit_counter));
  const double misses = static_cast<double>(counter(miss_counter));
  if (hits + misses == 0.0) return std::nullopt;
  return hits / (hits + misses);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Timer* MetricsRegistry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<Timer>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, timer] : timers_) {
    const util::Summary s = timer->summary();
    TimerStats stats;
    stats.count = s.count();
    stats.sum_s = s.sum();
    stats.mean_s = s.mean();
    stats.min_s = s.min();
    stats.max_s = s.max();
    snap.timers[name] = stats;
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Handed-out pointers must stay valid: reset in place by replacing the
  // pointees' state, not the slots.
  for (auto& [name, counter] : counters_) {
    counter->~Counter();
    new (counter.get()) Counter();
  }
  for (auto& [name, gauge] : gauges_) gauge->set(0);
  for (auto& [name, timer] : timers_) {
    timer->~Timer();
    new (timer.get()) Timer();
  }
}

std::vector<std::string> MetricsRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(counters_.size() + gauges_.size() + timers_.size());
  for (const auto& [name, c] : counters_) out.push_back(name);
  for (const auto& [name, g] : gauges_) out.push_back(name);
  for (const auto& [name, t] : timers_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

std::string render_metrics_text(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  char line[256];
  if (!snapshot.counters.empty()) {
    out << "counters:\n";
    for (const auto& [name, value] : snapshot.counters) {
      std::snprintf(line, sizeof(line), "  %-40s %12llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      out << line;
    }
  }
  if (!snapshot.gauges.empty()) {
    out << "gauges:\n";
    for (const auto& [name, value] : snapshot.gauges) {
      std::snprintf(line, sizeof(line), "  %-40s %12lld\n", name.c_str(),
                    static_cast<long long>(value));
      out << line;
    }
  }
  if (!snapshot.timers.empty()) {
    out << "timers:\n";
    for (const auto& [name, stats] : snapshot.timers) {
      std::snprintf(line, sizeof(line),
                    "  %-40s n=%-8zu mean=%.6fs min=%.6fs max=%.6fs\n",
                    name.c_str(), stats.count, stats.mean_s, stats.min_s,
                    stats.max_s);
      out << line;
    }
  }
  return out.str();
}

}  // namespace vmp::obs
