// Figure 5: distribution of VM cloning latencies.
//
// Paper (§4.3): cloning is measured "from the time the PPP requests
// cloning to the completion of the VMware resume operation"; link-based
// cloning keeps times far below full copies, the memory state copy makes
// larger VMs slower, and variance grows with memory size.  Bins are 5 s
// wide, centered 5..70.
#include <cstdio>

#include "common.h"

int main() {
  using namespace vmp;
  bench::print_header(
      "Figure 5 — distribution of VM cloning latencies",
      "link-based cloning; memory-state copy dominates; variance grows "
      "with memory size; bins 5..70 s");

  bench::PaperExperimentConfig config;
  const auto results = bench::run_paper_experiment(config);

  for (const auto& series : results) {
    util::Histogram h(2.5, 72.5, 5);  // centers 5,10,...,70 as in the paper
    for (const auto& sample : series.samples) {
      h.add(sample.timing.clone_sec);
    }
    char label[128];
    std::snprintf(label, sizeof label, "%u MB golden machine (%zu clones)",
                  series.memory_mb, series.samples.size());
    bench::print_histogram(label, h);

    const util::Summary s = series.cloning_summary();
    std::printf("mean=%.1fs stddev=%.1fs variance=%.1f\n\n", s.mean(),
                s.stddev(), s.variance());
  }

  if (results.size() == 3) {
    const util::Summary s32 = results[0].cloning_summary();
    const util::Summary s64 = results[1].cloning_summary();
    const util::Summary s256 = results[2].cloning_summary();
    char measured[160];
    std::snprintf(measured, sizeof measured,
                  "clone means %.0f / %.0f / %.0f s", s32.mean(), s64.mean(),
                  s256.mean());
    bench::print_summary_row("fig5.cloning_means",
                             "single-digit to ~50 s, growing with memory",
                             measured);
    std::snprintf(measured, sizeof measured, "stddev %.1f / %.1f / %.1f s",
                  s32.stddev(), s64.stddev(), s256.stddev());
    bench::print_summary_row("fig5.variance_growth",
                             "larger variance for larger VMs", measured);
  }
  return 0;
}
