// Observability tests: metrics registry primitives, request tracing end to
// end through a shop->plant creation, the classad exporter and the monitor
// publishing obs:// ads into the VM Information System, trace propagation
// across a lost-then-retried bus message, and logger sinks/timestamps.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include "classad/classad.h"
#include "core/info_system.h"
#include "core/plant.h"
#include "core/shop.h"
#include "dag/dag.h"
#include "fault/fault.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "warehouse/warehouse.h"
#include "workload/request_gen.h"

namespace vmp {
namespace {

using obs::MetricsRegistry;
using obs::Tracer;

// -- Metrics primitives -------------------------------------------------------

TEST(MetricsTest, CounterAccumulatesAcrossThreads) {
  obs::Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10'000; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 80'000u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  obs::Gauge g;
  g.set(7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
}

TEST(MetricsTest, TimerFoldsSummaryAndOptionalHistogram) {
  obs::Timer t;
  t.record(1.0);
  t.record(3.0);
  EXPECT_EQ(t.summary().count(), 2u);
  EXPECT_DOUBLE_EQ(t.summary().mean(), 2.0);
  EXPECT_FALSE(t.histogram().has_value());

  t.set_bins(0.0, 4.0, 1.0);
  t.record(0.5);
  ASSERT_TRUE(t.histogram().has_value());
  EXPECT_EQ(t.summary().count(), 3u);
}

TEST(MetricsTest, RegistryHandsOutStablePointersAndSnapshots) {
  MetricsRegistry r;
  obs::Counter* c = r.counter("a.b.count");
  EXPECT_EQ(r.counter("a.b.count"), c);  // get-or-create is idempotent
  c->add(5);
  r.gauge("a.depth.gauge")->set(3);
  r.timer("a.lat.seconds")->record(0.25);

  obs::MetricsSnapshot snap = r.snapshot();
  EXPECT_EQ(snap.counter("a.b.count"), 5u);
  EXPECT_EQ(snap.gauge("a.depth.gauge"), 3);
  EXPECT_EQ(snap.counter("missing"), 0u);
  ASSERT_EQ(snap.timers.count("a.lat.seconds"), 1u);
  EXPECT_DOUBLE_EQ(snap.timers.at("a.lat.seconds").mean_s, 0.25);

  // reset() zeroes values but keeps handed-out pointers usable.
  r.reset();
  EXPECT_EQ(r.snapshot().counter("a.b.count"), 0u);
  c->add(2);
  EXPECT_EQ(r.snapshot().counter("a.b.count"), 2u);
}

TEST(MetricsTest, RatioAndTextRender) {
  MetricsRegistry r;
  r.counter("w.hit.count")->add(3);
  r.counter("w.miss.count")->add(1);
  obs::MetricsSnapshot snap = r.snapshot();
  ASSERT_TRUE(snap.ratio("w.hit.count", "w.miss.count").has_value());
  EXPECT_DOUBLE_EQ(*snap.ratio("w.hit.count", "w.miss.count"), 0.75);
  EXPECT_FALSE(snap.ratio("none.a", "none.b").has_value());

  const std::string text = obs::render_metrics_text(snap);
  EXPECT_NE(text.find("w.hit.count"), std::string::npos);
  EXPECT_NE(text.find("3"), std::string::npos);
}

// -- Tracer primitives --------------------------------------------------------

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::instance().arm(); }
  void TearDown() override {
    Tracer::instance().disarm();
    Tracer::instance().set_clock(nullptr);
  }
};

TEST_F(TracerTest, DisarmedScopedSpanRecordsNothing) {
  Tracer::instance().disarm();
  {
    obs::ScopedSpan span("noop", "test");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(Tracer::instance().span_count(), 0u);
}

TEST_F(TracerTest, NestedSpansFormOneTraceWithParentLinks) {
  {
    obs::ScopedSpan outer("outer", "test");
    obs::ScopedSpan inner("inner", "test");
    (void)outer;
    (void)inner;
  }
  auto spans = Tracer::instance().spans();
  ASSERT_EQ(spans.size(), 2u);  // inner finishes first
  const obs::Span& inner = spans[0];
  const obs::Span& outer = spans[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_EQ(inner.parent_id, outer.span_id);
  EXPECT_EQ(inner.trace_id, outer.trace_id);
  EXPECT_EQ(Tracer::instance().trace_ids().size(), 1u);
}

TEST_F(TracerTest, SeparateRootsGetSeparateTraceIds) {
  { obs::ScopedSpan a("a", "test"); }
  { obs::ScopedSpan b("b", "test"); }
  EXPECT_EQ(Tracer::instance().trace_ids().size(), 2u);
}

TEST_F(TracerTest, ExplicitParentContextWins) {
  obs::TraceContext wire;
  {
    obs::ScopedSpan remote("remote", "test");
    wire = remote.context();
  }
  {
    obs::ScopedSpan local("local", "test");  // ambient span on this thread
    obs::ScopedSpan child("child", "test", "", wire);
    (void)local;
    (void)child;
  }
  auto spans = Tracer::instance().spans();
  const obs::Span* child = nullptr;
  for (const auto& s : spans) {
    if (s.name == "child") child = &s;
  }
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->trace_id, wire.trace_id);
  EXPECT_EQ(child->parent_id, wire.span_id);
}

TEST_F(TracerTest, ContextGuardAdoptsWireContext) {
  obs::TraceContext wire;
  {
    obs::ScopedSpan remote("remote", "test");
    wire = remote.context();
  }
  {
    obs::ContextGuard guard(wire);
    obs::ScopedSpan handler("handler", "test");
    (void)handler;
  }
  EXPECT_FALSE(obs::current_context().valid());  // guard restored
  const auto spans = Tracer::instance().spans();
  const obs::Span* handler = nullptr;
  for (const auto& s : spans) {
    if (s.name == "handler") handler = &s;
  }
  ASSERT_NE(handler, nullptr);
  EXPECT_EQ(handler->trace_id, wire.trace_id);
  EXPECT_EQ(handler->parent_id, wire.span_id);
}

TEST_F(TracerTest, InstantSpansAndStatusPropagate) {
  {
    obs::ScopedSpan op("op", "test");
    Tracer::instance().instant("op.retry", "test", "retry", "attempt 1");
    op.set_status("TIMEOUT");
  }
  auto spans = Tracer::instance().spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "op.retry");
  EXPECT_EQ(spans[0].status, "retry");
  EXPECT_TRUE(spans[0].ok());  // retries are not failures
  EXPECT_DOUBLE_EQ(spans[0].duration_s(), 0.0);
  EXPECT_EQ(spans[1].status, "TIMEOUT");
  EXPECT_FALSE(spans[1].ok());
}

TEST_F(TracerTest, PluggableClockStampsSpans) {
  double now = 100.0;
  Tracer::instance().set_clock([&now] { return now; });
  {
    obs::ScopedSpan op("op", "test");
    now = 103.5;
  }
  auto spans = Tracer::instance().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0].start_s, 100.0);
  EXPECT_DOUBLE_EQ(spans[0].end_s, 103.5);
}

TEST_F(TracerTest, WriteJsonlEmitsOneObjectPerSpan) {
  {
    obs::ScopedSpan op("op\"quoted\"", "test", "detail");
  }
  const auto path = std::filesystem::temp_directory_path() /
                    "vmp-obs-test-trace.jsonl";
  std::filesystem::remove(path);
  ASSERT_TRUE(Tracer::instance().write_jsonl(path.string()));
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\\\"quoted\\\""), std::string::npos);
  }
  EXPECT_EQ(lines, 1u);
  std::filesystem::remove(path);
}

// -- Exporter -----------------------------------------------------------------

TEST(ExportTest, AttrNameFoldsMetricNames) {
  EXPECT_EQ(obs::attr_name("bus.call.count"), "bus_call_count");
  EXPECT_EQ(obs::attr_name("clone-full.seconds"), "clone_full_seconds");
}

TEST(ExportTest, MetricsAdCarriesCountersTimersAndHitRatio) {
  obs::MetricsSnapshot snap;
  snap.counters["ppp.plan_hit.count"] = 3;
  snap.counters["ppp.plan_miss.count"] = 1;
  snap.gauges["vm.active.gauge"] = 2;
  snap.timers["bus.call.seconds"] = obs::TimerStats{4, 2.0, 0.5, 0.1, 0.9};

  classad::ClassAd ad = obs::metrics_ad(snap, util::FaultReport{});
  EXPECT_EQ(ad.get_string(obs::export_attrs::kKind).value(), "metrics");
  EXPECT_EQ(ad.get_integer("ppp_plan_hit_count").value(), 3);
  EXPECT_EQ(ad.get_integer("vm_active_gauge").value(), 2);
  EXPECT_EQ(ad.get_integer("bus_call_seconds_count").value(), 4);
  EXPECT_DOUBLE_EQ(ad.get_number("bus_call_seconds_mean").value(), 0.5);
  EXPECT_DOUBLE_EQ(
      ad.get_number(obs::export_attrs::kWarehouseHitRatio).value(), 0.75);
}

TEST(ExportTest, TraceSummaryRollsUpPhasesErrorsAndRetries) {
  std::vector<obs::Span> spans;
  obs::Span root;
  root.trace_id = "t1";
  root.span_id = 1;
  root.name = "shop.create";
  root.vm_id = "vm-1";
  root.start_s = 0.0;
  root.end_s = 5.0;
  obs::Span clone;
  clone.trace_id = "t1";
  clone.span_id = 2;
  clone.parent_id = 1;
  clone.name = "plant.clone";
  clone.start_s = 1.0;
  clone.end_s = 3.0;
  obs::Span retry;
  retry.trace_id = "t1";
  retry.span_id = 3;
  retry.parent_id = 1;
  retry.name = "shop.retry";
  retry.status = "retry";
  spans = {clone, retry, root};

  auto summaries = obs::summarize_traces(spans);
  ASSERT_EQ(summaries.size(), 1u);
  const obs::TraceSummary& s = summaries[0];
  EXPECT_EQ(s.trace_id, "t1");
  EXPECT_EQ(s.root_name, "shop.create");
  EXPECT_EQ(s.vm_id, "vm-1");
  EXPECT_DOUBLE_EQ(s.duration_s, 5.0);
  EXPECT_EQ(s.span_count, 3u);
  EXPECT_EQ(s.retry_count, 1u);
  EXPECT_EQ(s.error_count, 0u);
  EXPECT_DOUBLE_EQ(s.phase_seconds.at("plant.clone"), 2.0);

  classad::ClassAd ad = obs::trace_summary_ad(s);
  EXPECT_EQ(ad.get_string(obs::export_attrs::kKind).value(), "trace");
  EXPECT_EQ(ad.get_string(obs::export_attrs::kVmId).value(), "vm-1");
  EXPECT_EQ(ad.get_integer(obs::export_attrs::kSpanCount).value(), 3);
  EXPECT_DOUBLE_EQ(ad.get_number("Phase_plant_clone").value(), 2.0);
}

// -- End-to-end: trace + metrics through a real shop->plant creation ----------

class ObsEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("vmp-obs-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    store_ = std::make_unique<storage::ArtifactStore>(root_);
    warehouse_ =
        std::make_unique<warehouse::Warehouse>(store_.get(), "warehouse");
    ASSERT_TRUE(workload::publish_paper_goldens(warehouse_.get()).ok());
    core::PlantConfig pc;
    pc.name = "plant0";
    plant_ = std::make_unique<core::VmPlant>(pc, store_.get(), warehouse_.get());
    ASSERT_TRUE(plant_->attach_to_bus(&bus_, &registry_).ok());
    shop_ = std::make_unique<core::VmShop>(core::ShopConfig{}, &bus_, &registry_);
    ASSERT_TRUE(shop_->attach_to_bus().ok());
    MetricsRegistry::instance().reset();
    Tracer::instance().arm();
  }
  void TearDown() override {
    Tracer::instance().disarm();
    shop_.reset();
    plant_.reset();
    warehouse_.reset();
    store_.reset();
    std::filesystem::remove_all(root_);
  }

  const obs::Span* find_span(const std::vector<obs::Span>& spans,
                             const std::string& name) {
    for (const auto& s : spans) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }

  std::filesystem::path root_;
  std::unique_ptr<storage::ArtifactStore> store_;
  std::unique_ptr<warehouse::Warehouse> warehouse_;
  net::MessageBus bus_;
  net::ServiceRegistry registry_;
  std::unique_ptr<core::VmPlant> plant_;
  std::unique_ptr<core::VmShop> shop_;
};

TEST_F(ObsEndToEndTest, CreateYieldsSpanTreeCoveringBidMatchCloneConfigureAttach) {
  auto ad = shop_->create(workload::workspace_request(32, 0, "ufl.edu"));
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  const std::string vm_id = ad.value().get_string(core::attrs::kVmId).value();

  // Every span of the creation belongs to one trace.
  auto trace_ids = Tracer::instance().trace_ids();
  ASSERT_EQ(trace_ids.size(), 1u);
  auto spans = Tracer::instance().trace(trace_ids[0]);

  const obs::Span* root = obs::find_root(spans);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "shop.create");
  EXPECT_EQ(root->vm_id, vm_id);
  EXPECT_TRUE(root->ok());

  // The full creation pipeline shows up: bid -> match -> clone ->
  // configure -> attach.
  for (const char* phase :
       {"shop.bid", "bus.call", "ppp.match", "plant.create", "plant.clone",
        "storage.clone", "hypervisor.resume", "plant.configure",
        "configure.action", "vnet.attach"}) {
    EXPECT_NE(find_span(spans, phase), nullptr) << "missing span " << phase;
  }

  // Wire propagation: plant.create's parent is the shop-side context that
  // rode the message (the shop.create span), not the bus.call client span
  // that happened to be open on the same thread.
  const obs::Span* plant_create = find_span(spans, "plant.create");
  ASSERT_NE(plant_create, nullptr);
  EXPECT_EQ(plant_create->parent_id, root->span_id);
  EXPECT_EQ(plant_create->vm_id, vm_id);

  // The tree is connected: every non-root span's parent exists.
  std::set<std::uint64_t> ids;
  for (const auto& s : spans) ids.insert(s.span_id);
  for (const auto& s : spans) {
    if (s.parent_id != 0) {
      EXPECT_TRUE(ids.count(s.parent_id))
          << s.name << " has dangling parent " << s.parent_id;
    }
  }

  // Metrics: the creation incremented the whole pipeline's counters.
  obs::MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counter("shop.create.count"), 1u);
  EXPECT_EQ(snap.counter("plant.create.count"), 1u);
  EXPECT_EQ(snap.counter("ppp.plan_hit.count"), 1u);
  EXPECT_GE(snap.counter("ppp.match_hit.count"), 1u);
  EXPECT_GE(snap.counter("bus.call.count"), 2u);  // estimate + create
  EXPECT_GE(snap.counter("storage.clone_linked.count"), 1u);
  EXPECT_GE(snap.counter("vnet.acquire.count"), 1u);
  EXPECT_GE(snap.counter("plant.configure_action.count"), 1u);
  EXPECT_EQ(snap.gauge("bus.inflight.gauge"), 0);
  ASSERT_EQ(snap.timers.count("bus.call.seconds"), 1u);
  EXPECT_GE(snap.timers.at("bus.call.seconds").count, 2u);
}

TEST_F(ObsEndToEndTest, MatchKindCountersClassifyNonMatchingGoldens) {
  // The 32 MB request hardware-matches only golden-32mb; the DAG prefix
  // matches it too.  A second request whose DAG diverges from every golden
  // image's performed prefix still plans (full configuration from scratch
  // is not an error) — but here we assert the per-kind classification by
  // sending a request whose config is a subset mismatch for the goldens
  // that pass the hardware filter.
  auto request = workload::workspace_request(32, 0, "ufl.edu");
  ASSERT_TRUE(shop_->create(request).ok());
  obs::MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  const std::uint64_t classified = snap.counter("ppp.match_hit.count") +
                                   snap.counter("ppp.match_subset_fail.count") +
                                   snap.counter("ppp.match_prefix_fail.count") +
                                   snap.counter("ppp.match_order_fail.count");
  EXPECT_GE(classified, 1u);
  EXPECT_EQ(snap.counter("ppp.plan_hit.count"), 1u);
  ASSERT_TRUE(
      snap.ratio("ppp.plan_hit.count", "ppp.plan_miss.count").has_value());
  EXPECT_DOUBLE_EQ(
      *snap.ratio("ppp.plan_hit.count", "ppp.plan_miss.count"), 1.0);
}

TEST_F(ObsEndToEndTest, MonitorSweepPublishesObsClassAds) {
  auto ad = shop_->create(workload::workspace_request(32, 0, "ufl.edu"));
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  const std::string vm_id = ad.value().get_string(core::attrs::kVmId).value();

  core::VmInformationSystem& info = plant_->info_system();
  core::VmMonitor monitor(&plant_->hypervisor(), &info);
  monitor.enable_obs_export();
  monitor.refresh_all();

  // obs://metrics is queryable and carries pipeline counters + hit ratio.
  auto metrics = info.query(core::kObsMetricsId);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics.value().get_string(obs::export_attrs::kKind).value(),
            "metrics");
  EXPECT_EQ(metrics.value().get_integer("shop_create_count").value(), 1);
  EXPECT_GE(metrics.value().get_integer("ppp_match_hit_count").value(), 1);
  EXPECT_DOUBLE_EQ(
      metrics.value().get_number(obs::export_attrs::kWarehouseHitRatio).value(),
      1.0);

  // obs://trace/<vm> summarizes the creation's span tree.
  auto trace = info.query(core::kObsTracePrefix + vm_id);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace.value().get_string(obs::export_attrs::kRootSpan).value(),
            "shop.create");
  EXPECT_GE(trace.value().get_integer(obs::export_attrs::kSpanCount).value(), 5);
  EXPECT_TRUE(trace.value().has("Phase_plant_clone"));

  // The VM's own ad is untouched and still queryable.
  EXPECT_TRUE(info.query(vm_id).ok());
  // Gauges were refreshed from hypervisor power states during the sweep.
  EXPECT_EQ(MetricsRegistry::instance().snapshot().gauge("vm.active.gauge"), 1);
}

TEST_F(ObsEndToEndTest, PeriodicMonitorPublishesAndStopLeavesNoStaleAds) {
  ASSERT_TRUE(shop_->create(workload::workspace_request(32, 0, "ufl.edu")).ok());
  core::VmInformationSystem& info = plant_->info_system();
  core::VmMonitor monitor(&plant_->hypervisor(), &info);
  monitor.enable_obs_export();
  monitor.start_periodic(std::chrono::milliseconds(1));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (monitor.sweeps() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(monitor.sweeps(), 2u);
  EXPECT_TRUE(info.contains(core::kObsMetricsId));

  monitor.stop_periodic();
  // No obs:// ad survives the stop; the VM ads do.
  for (const std::string& id : info.vm_ids()) {
    EXPECT_FALSE(id.starts_with(core::kObsAdPrefix)) << id;
  }
  EXPECT_EQ(info.size(), 1u);
}

TEST_F(ObsEndToEndTest, LostThenRetriedMessageKeepsOneTraceWithRetrySpan) {
  // One plant: call 1 is the estimate (passes), call 2 the create (lost).
  // The shop's transport retry resends to the same plant; the whole
  // request — including the retry — must stay a single trace.
  fault::ScopedFaultPlan scoped(
      fault::FaultPlan::parse("bus.send:after=1,times=1").value());
  auto ad = shop_->create(workload::workspace_request(32, 0, "ufl.edu"));
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  EXPECT_EQ(shop_->retries(), 1u);

  auto trace_ids = Tracer::instance().trace_ids();
  ASSERT_EQ(trace_ids.size(), 1u);
  auto spans = Tracer::instance().trace(trace_ids[0]);

  const obs::Span* retry = find_span(spans, "shop.retry");
  ASSERT_NE(retry, nullptr);
  EXPECT_EQ(retry->status, "retry");
  EXPECT_TRUE(retry->ok());

  // Both bus.call legs (lost + retried) and the eventual plant.create all
  // hang off the same root.
  const obs::Span* root = obs::find_root(spans);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "shop.create");
  std::size_t bus_calls = 0;
  for (const auto& s : spans) {
    if (s.name == "bus.call" && s.parent_id == root->span_id) ++bus_calls;
  }
  EXPECT_GE(bus_calls, 2u);
  const obs::Span* plant_create = find_span(spans, "plant.create");
  ASSERT_NE(plant_create, nullptr);
  EXPECT_EQ(plant_create->parent_id, root->span_id);

  obs::MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counter("shop.retry.count"), 1u);
  EXPECT_GE(snap.counter("bus.error.count"), 1u);

  // The exporter surfaces the retry in the per-VM trace summary.
  auto summaries = obs::summarize_traces(spans);
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].retry_count, 1u);
}

// -- Logger satellites --------------------------------------------------------

class LogCaptureTest : public ::testing::Test {
 protected:
  void TearDown() override {
    util::set_log_sink(nullptr);
    util::set_log_clock(nullptr);
    util::set_log_level(util::LogLevel::kWarn);
  }
};

TEST_F(LogCaptureTest, SinkReceivesRecordsWithTimestamps) {
  std::vector<util::LogRecord> records;
  util::set_log_sink([&records](const util::LogRecord& r) {
    records.push_back(r);
  });
  util::Logger("obs-test").warn() << "hello " << 42;
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].component, "obs-test");
  EXPECT_EQ(records[0].message, "hello 42");
  EXPECT_EQ(records[0].level, util::LogLevel::kWarn);
  EXPECT_GE(records[0].wall_time_s, 0.0);
  EXPECT_LT(records[0].sim_time_s, 0.0);  // no sim clock installed
}

TEST_F(LogCaptureTest, SimClockStampsRecords) {
  util::set_log_clock([] { return 12.5; });
  std::vector<util::LogRecord> records;
  util::set_log_sink([&records](const util::LogRecord& r) {
    records.push_back(r);
  });
  util::Logger("obs-test").error() << "boom";
  ASSERT_EQ(records.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0].sim_time_s, 12.5);
}

TEST_F(LogCaptureTest, LineOutlivesTemporaryLogger) {
  // The Line stores the component by value, so the idiomatic
  // Logger("x").warn() << ... stays safe even though the Logger temporary
  // dies before the Line flushes.
  util::set_log_level(util::LogLevel::kDebug);
  std::vector<util::LogRecord> records;
  util::set_log_sink([&records](const util::LogRecord& r) {
    records.push_back(r);
  });
  util::Logger(std::string("ephemeral-") + "component").debug()
      << "still " << "alive";
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].component, "ephemeral-component");
  EXPECT_EQ(records[0].message, "still alive");
}

TEST_F(LogCaptureTest, TracerMirrorsSpanEndsIntoLogger) {
  util::set_log_level(util::LogLevel::kDebug);
  std::vector<util::LogRecord> records;
  util::set_log_sink([&records](const util::LogRecord& r) {
    records.push_back(r);
  });
  Tracer::instance().arm();
  Tracer::instance().set_log_spans(true);
  { obs::ScopedSpan op("mirrored.op", "test"); }
  Tracer::instance().set_log_spans(false);
  Tracer::instance().disarm();
  bool saw = false;
  for (const auto& r : records) {
    if (r.component == "trace" &&
        r.message.find("mirrored.op") != std::string::npos) {
      saw = true;
    }
  }
  EXPECT_TRUE(saw);
}

}  // namespace
}  // namespace vmp
