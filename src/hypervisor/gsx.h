// VMware-GSX-style "classic" hosted VMM backend.
//
// Clones are created from suspended golden checkpoints (the .vmss memory
// state is physically copied — paper footnote 2 — while disk spans are
// symlinked) and start by *resuming*, which is what makes instantiation
// fast: no guest boot occurs.
#pragma once

#include "hypervisor/hypervisor.h"

namespace vmp::hv {

class GsxHypervisor final : public Hypervisor {
 public:
  explicit GsxHypervisor(storage::ArtifactStore* store) : Hypervisor(store) {}

  std::string type() const override { return "vmware-gsx"; }
  bool resumes_from_checkpoint() const override { return true; }

 protected:
  util::Status do_start(VmInstance* vm) override;
  util::Status validate_clone_source(const CloneSource& source) const override;
};

}  // namespace vmp::hv
