// Structured event journal for the warehouse lifecycle: an always-armed
// in-memory flight recorder plus an optional crash-durable segment log.
//
// The lifecycle protocols (publish / evict / lease / zombie, DESIGN.md §11)
// were observable only through aggregate counters: no record of WHICH
// transitions happened in WHAT order, and GDSF hit/usage history died with
// the process, so every warm_start() restarted the eviction policy cold.
// Following the memoized-derivation view of the CMS Virtual Data work
// (PAPERS.md) — the provenance log IS the recovery substrate — one typed
// event stream now serves three consumers (DESIGN.md §13):
//
//   * Flight recorder — a fixed-size ring of typed records (kind, image id,
//     journal-clock + wall timestamps, byte delta), always armed, at
//     obs::Tracer-class overhead (one mutex + a slot write; bench/
//     obs_overhead budgets it).  An invariant violation or vmp_explore
//     counterexample dumps the ring alongside trace.xml, so every
//     counterexample ships its own timeline.
//   * Durable sink — append-only, length-prefixed, checksummed segment
//     files under the store root, rotated by size.  Replay is torn-tail
//     tolerant: a record cut mid-write by a crash (or a segment left empty
//     by a mid-rotation crash) is dropped, everything before it and every
//     later segment survives — segment starts are clean resync points.
//   * Warm restart — lifecycle::LifecycleManager::warm_start() folds a
//     replayed journal into the rescanned ledger, restoring per-image
//     hit/usage order and the GDSF aging clock so eviction quality resumes
//     hot after a crash (bench/warehouse_churn's crash-mid-churn scenario
//     holds the replayed hit rate to within 2% of an uninterrupted run).
//
// On-disk record format (all integers little-endian, see DESIGN.md §13):
//
//   [u32 payload_len] [payload] [u32 fnv1a32(payload)]
//   payload := u8 kind | u64 seq | f64 time_s | f64 wall_s |
//              i64 bytes_delta | u64 aux | f64 value | u16 id_len | id
//              [u16 trace_len | trace]
//
// The trailing trace block (DESIGN.md §14) is present only when the record
// was appended from inside a traced request: a record whose payload ends at
// the id decodes with an empty trace_id, so pre-trace journals (and tools)
// stay readable in both directions.
//
// Segments are "seg-NNNNNN.vmj" under the journal directory; names sort in
// write order.  Sequence numbers are journal-global and survive reopen:
// open_durable() replays the existing segments first and continues from the
// last sequence it saw, which also hands the caller the replayed history
// (recovered()).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.h"

namespace vmp::obs {

/// Typed lifecycle transitions (the closed set the report tool and replay
/// switch on; values are the on-disk encoding — append only, never renumber).
enum class JournalEvent : std::uint8_t {
  kPublishReserve = 1,  // admission reserved the estimate (+bytes_delta)
  kPublishCommit = 2,   // measured footprint charged (+bytes_delta)
  kPublishReject = 3,   // admission or materialization failed (aux = code)
  kEvictBegin = 4,      // evict() / evict-to-fit victim admitted past guards
  kEvictCommit = 5,     // unleased eviction: tree deleted (-bytes_delta)
  kEvictRollback = 6,   // leased eviction aborted, image re-attached
  kLeaseAcquire = 7,    // clone leased the base (aux = hits after)
  kLeaseRelease = 8,    // one lease returned (aux = leases after)
  kZombify = 9,         // leased eviction detached the image (no bytes yet)
  kReap = 10,           // last release deleted a zombie tree (-bytes_delta)
  kOrphanReap = 11,     // orphan sweep removed a dir (-bytes_delta)
  kWarmStart = 12,      // ledger rebuilt from disk (aux = images adopted)
  kAdopt = 13,          // warehouse-published image charged on first touch
  kFaultFired = 14,     // fault injection fired (id = "point@detail")
};

/// Stable lowercase name ("publish_commit", ...); "unknown" for bad bytes.
const char* journal_event_name(JournalEvent kind) noexcept;

/// One journal record.  `time_s` reads the journal's pluggable clock (the
/// DES sim clock when installed, wall seconds since process start
/// otherwise); `wall_s` is always wall seconds, so post-mortem timelines
/// keep a real-time axis even in simulated runs.
struct JournalRecord {
  std::uint64_t seq = 0;
  JournalEvent kind = JournalEvent::kPublishReserve;
  double time_s = 0.0;
  double wall_s = 0.0;
  std::int64_t bytes_delta = 0;  // ledger delta this transition caused
  std::uint64_t aux = 0;         // kind-specific (hits, leases, error code)
  double value = 0.0;            // kind-specific (GDSF clock at eviction)
  std::string image_id;          // image id; "point@detail" for kFaultFired
  /// Trace the appending thread was inside ("" when none): append() stamps
  /// obs::Tracer::current(), so lifecycle transitions and fault firings
  /// caused by a traced create correlate back to its span tree.
  std::string trace_id;

  /// One-line JSON object (the flight-dump format).
  std::string to_json() const;
};

/// Durable-sink tuning.
struct JournalDurableConfig {
  /// Rotate to a fresh segment once the current one reaches this size.
  std::uint64_t max_segment_bytes = 256ull << 10;
  /// fflush after every append (tightest crash window; slower).  Off, the
  /// stream flushes on rotation and close — torn-tail replay covers the
  /// rest.
  bool flush_each_append = false;
};

/// What replay() recovered from a journal directory.
struct JournalReplay {
  std::vector<JournalRecord> records;  // valid records, write order
  std::size_t segments = 0;            // segment files visited
  std::uint64_t last_seq = 0;          // highest sequence recovered
  /// True when at least one segment ended in a torn or corrupt record (a
  /// crash tail).  The bad tail is dropped; everything before it and every
  /// later segment is in `records`.
  bool torn_tail = false;
};

class Journal {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 4096;

  explicit Journal(std::size_t ring_capacity = kDefaultRingCapacity);
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// The process-wide journal: the flight recorder fault firings and the
  /// schedule explorer dump into, and the default sink for every
  /// LifecycleManager that is not handed its own instance.  First access
  /// arms fault-firing capture (fault::FaultRegistry's fire listener).
  static Journal& instance();

  /// Install a time source for `time_s` (e.g. the DES clock).  nullptr
  /// restores the default wall clock.
  void set_clock(std::function<double()> clock);
  double now() const;

  /// Append one event: always into the ring, and into the durable sink
  /// when one is open.  Cheap enough to stay on every lifecycle transition
  /// (bench/obs_overhead budgets the ring-only and durable paths).
  void append(JournalEvent kind, std::string_view image_id,
              std::int64_t bytes_delta = 0, std::uint64_t aux = 0,
              double value = 0.0);

  // -- Flight recorder --------------------------------------------------------
  /// Ring contents, oldest first (at most ring_capacity records).
  std::vector<JournalRecord> ring() const;
  /// Drop the ring (durable state untouched).  The explorer calls this at
  /// the start of every run so a counterexample dump holds exactly that
  /// run's timeline.
  void clear_ring();
  std::size_t ring_capacity() const { return capacity_; }
  /// Events appended over the journal's lifetime (ring overwrites included).
  std::uint64_t appended() const;
  /// Ring as JSONL, oldest first (one JournalRecord::to_json per line).
  std::string ring_jsonl() const;
  /// Write ring_jsonl() to a file; false when it cannot be opened.
  bool dump_ring_jsonl(const std::string& path) const;

  // -- Durable sink -----------------------------------------------------------
  /// Open (or re-open) a segmented journal under `dir`, creating it if
  /// needed.  Existing segments are replayed first: sequence numbering
  /// continues after the last recovered record and the replayed history is
  /// kept readable via recovered() — warm_start() consumes exactly that.
  /// Fails (kFailedPrecondition) when a durable sink is already open.
  util::Status open_durable(const std::filesystem::path& dir,
                            JournalDurableConfig config = {});
  /// Flush and close the current segment.  Idempotent.
  void close_durable();
  bool durable() const;
  /// Flush the current segment to the OS.  No-op without a durable sink.
  void flush();
  /// Segments this sink has written into (rotation count + 1); 0 when the
  /// sink is closed or has died (rotation could not open the next segment).
  std::size_t segments_open() const;
  /// Records this sink failed to persist since open_durable() — a dead
  /// sink (failed rotation) or a short write.  They stay in the ring only.
  std::uint64_t durable_dropped() const;
  /// The replay open_durable() performed, until close_durable().
  const std::optional<JournalReplay>& recovered() const;

  // -- Replay (static: no Journal instance required) --------------------------
  /// Read every segment under `dir` in name order.  Torn-tail tolerant:
  /// a short, oversized or checksum-failing record ends THAT SEGMENT's
  /// replay cleanly (torn_tail = true) and resumes at the next segment
  /// boundary instead of erroring — a crash tears at most one segment's
  /// tail, and post-crash reopens write into fresh segments that must
  /// still be read.  A missing or empty directory replays to zero records.
  static util::Result<JournalReplay> replay(const std::filesystem::path& dir);

  // -- Codec (exposed for tests and the Python report tool's fixtures) --------
  static void encode(const JournalRecord& record, std::string* out);
  /// Decode one record at `data`; returns bytes consumed, 0 on a torn or
  /// corrupt record.
  static std::size_t decode(const char* data, std::size_t size,
                            JournalRecord* record);

 private:
  void append_durable_locked(const JournalRecord& record);
  void rotate_locked();

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::function<double()> clock_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<JournalRecord> ring_;  // circular, size() <= capacity_
  std::size_t ring_next_ = 0;        // slot the next record lands in
  std::uint64_t next_seq_ = 1;
  std::uint64_t appended_ = 0;

  // Durable sink state (all under mutex_).
  std::filesystem::path dir_;
  JournalDurableConfig durable_config_;
  std::FILE* segment_ = nullptr;
  std::size_t segment_index_ = 0;   // 1-based index of the open segment
  std::uint64_t segment_bytes_ = 0;
  std::size_t segments_open_ = 0;
  std::uint64_t durable_dropped_ = 0;
  bool durable_dead_ = false;  // rotation failed; sink lost mid-run
  std::optional<JournalReplay> recovered_;
};

}  // namespace vmp::obs
