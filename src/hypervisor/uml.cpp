#include "hypervisor/uml.h"

namespace vmp::hv {

using util::Error;
using util::ErrorCode;
using util::Status;

Status UmlHypervisor::validate_clone_source(const CloneSource& source) const {
  if (source.spec.suspended) {
    return Status(ErrorCode::kFailedPrecondition,
                  "uml: golden image must be powered off (no checkpoint "
                  "support in this production line)");
  }
  if (source.spec.disk.mode != storage::DiskMode::kNonPersistent) {
    return Status(ErrorCode::kFailedPrecondition,
                  "uml: golden file system must be copy-on-write shareable");
  }
  return Status();
}

Status UmlHypervisor::do_start(VmInstance* vm) {
  // Boot: the root file-system spans must be reachable through the COW
  // links.  Booting resets transient guest runtime state (services stop;
  // configuration state on disk survives).
  for (const std::string& span : vm->layout.span_paths(vm->spec.disk)) {
    if (!store_->exists(span)) {
      return Status(ErrorCode::kFailedPrecondition,
                    "uml: missing file system span: " + span);
    }
  }
  vm->guest.running_services.clear();
  return Status();
}

}  // namespace vmp::hv
