file(REMOVE_RECURSE
  "libvmp_classad.a"
)
