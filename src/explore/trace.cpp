#include "explore/trace.h"

#include "util/strings.h"
#include "xml/xml.h"

namespace vmp::explore {

using util::Error;
using util::ErrorCode;
using util::Result;

Decision Decision::tie(double when, std::vector<std::uint64_t> ready,
                       std::uint64_t chosen) {
  Decision d;
  d.kind = Kind::kTie;
  d.when = when;
  d.ready = std::move(ready);
  d.chosen = chosen;
  return d;
}

Decision Decision::fault(std::string point, std::string detail, bool fire) {
  Decision d;
  d.kind = Kind::kFault;
  d.point = std::move(point);
  d.detail = std::move(detail);
  d.fire = fire;
  return d;
}

namespace {

std::string join_seqs(const std::vector<std::uint64_t>& seqs) {
  std::string out;
  for (std::uint64_t seq : seqs) {
    if (!out.empty()) out += ',';
    out += std::to_string(seq);
  }
  return out;
}

Result<std::vector<std::uint64_t>> parse_seqs(const std::string& text) {
  std::vector<std::uint64_t> out;
  for (const std::string& part : util::split(text, ',')) {
    long long parsed = 0;
    if (!util::parse_int64(util::trim(part), &parsed) || parsed < 0) {
      return Result<std::vector<std::uint64_t>>(
          Error(ErrorCode::kParseError,
                "trace: malformed seq list '" + text + "'"));
    }
    out.push_back(static_cast<std::uint64_t>(parsed));
  }
  return out;
}

}  // namespace

std::string Trace::to_xml() const {
  xml::Element root("trace");
  root.set_attr("scenario", scenario);
  root.set_attr("config", config);
  root.set_attr("digest", digest);
  root.set_attr("schedule", std::to_string(schedule));
  if (!violations.empty()) {
    root.set_attr("violations", util::join(violations, ";"));
  }
  for (const Decision& d : decisions) {
    if (d.kind == Decision::Kind::kTie) {
      xml::Element& tie = root.add_child("tie");
      tie.set_attr("when", util::format_double(d.when));
      tie.set_attr("ready", join_seqs(d.ready));
      tie.set_attr("chosen", std::to_string(d.chosen));
    } else {
      xml::Element& fault = root.add_child("fault");
      fault.set_attr("point", d.point);
      fault.set_attr("detail", d.detail);
      fault.set_attr("fire", d.fire ? "1" : "0");
    }
  }
  return root.to_string();
}

Result<Trace> Trace::from_xml_string(const std::string& text) {
  auto doc = xml::parse(text);
  if (!doc.ok()) return doc.propagate<Trace>();
  const xml::Element& root = *doc.value();
  if (root.name() != "trace") {
    return Result<Trace>(
        Error(ErrorCode::kParseError, "trace: expected <trace> root"));
  }
  Trace trace;
  trace.scenario = root.attr("scenario");
  trace.config = root.attr("config");
  trace.digest = root.attr("digest");
  trace.schedule = static_cast<std::uint64_t>(root.attr_int("schedule", 0));
  if (root.has_attr("violations")) {
    for (const std::string& name : util::split(root.attr("violations"), ';')) {
      if (!name.empty()) trace.violations.push_back(name);
    }
  }
  for (const auto& child : root.children()) {
    if (child->name() == "tie") {
      auto ready = parse_seqs(child->attr("ready"));
      if (!ready.ok()) return ready.propagate<Trace>();
      trace.decisions.push_back(
          Decision::tie(child->attr_double("when", 0.0),
                        std::move(ready).value(),
                        static_cast<std::uint64_t>(child->attr_int("chosen", 0))));
    } else if (child->name() == "fault") {
      trace.decisions.push_back(Decision::fault(child->attr("point"),
                                                child->attr("detail"),
                                                child->attr("fire") == "1"));
    } else {
      return Result<Trace>(Error(
          ErrorCode::kParseError,
          "trace: unknown decision element <" + child->name() + ">"));
    }
  }
  return trace;
}

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string digest_hex(const std::string& bytes) {
  static const char* kHex = "0123456789abcdef";
  std::uint64_t hash = fnv1a64(bytes);
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

}  // namespace vmp::explore
