// §4.3 UML production line: instantiation via full boot.
//
// Paper: "For a 32MB UML VM that is instantiated via a full reboot, the
// average cloning time is 76s."  The UML line shares COW file systems and
// configures guests from virtual CD-ROMs like the GSX line, but boots
// instead of resuming — no memory checkpoint exists to copy.
#include <cstdio>

#include "cluster/deployment.h"
#include "common.h"

int main() {
  using namespace vmp;
  bench::print_header(
      "§4.3 — UML production line (boot-based instantiation)",
      "32 MB UML VM via full reboot: average cloning time 76 s");

  cluster::DeploymentConfig config;
  config.plant_count = 8;
  config.backend = "uml";
  config.seed = 1976;
  cluster::SimulatedDeployment site(config);
  if (!workload::publish_uml_golden(&site.warehouse(), 32).ok()) return 1;

  const auto samples = site.run_sequence(
      workload::workspace_requests(32, 40, "acis.ufl.edu", "uml"));

  util::Summary clone, total;
  for (const auto& sample : samples) {
    clone.add(sample.timing.clone_sec);
    total.add(sample.timing.total_sec);
  }

  std::printf("%zu UML creations (40 requested)\n", samples.size());
  std::printf("cloning (clone request -> boot complete): mean=%.1fs "
              "stddev=%.1fs\n",
              clone.mean(), clone.stddev());
  std::printf("end-to-end creation:                      mean=%.1fs\n\n",
              total.mean());

  // Against the GSX line at the same memory size.
  cluster::DeploymentConfig gsx_config;
  gsx_config.plant_count = 8;
  gsx_config.seed = 1976;
  cluster::SimulatedDeployment gsx_site(gsx_config);
  if (!workload::publish_paper_goldens(&gsx_site.warehouse(), {32}).ok()) {
    return 1;
  }
  const auto gsx_samples = gsx_site.run_sequence(
      workload::workspace_requests(32, 40, "acis.ufl.edu"));
  util::Summary gsx_clone;
  for (const auto& sample : gsx_samples) {
    gsx_clone.add(sample.timing.clone_sec);
  }
  std::printf("GSX (resume) clone mean at 32 MB: %.1fs -> checkpointing "
              "avoids the boot entirely\n\n",
              gsx_clone.mean());

  char measured[96];
  std::snprintf(measured, sizeof measured, "%.0f s mean over %zu clones",
                clone.mean(), samples.size());
  bench::print_summary_row("uml.boot_clone_time", "76 s average", measured);
  std::snprintf(measured, sizeof measured, "%.1fx",
                clone.mean() / gsx_clone.mean());
  bench::print_summary_row("uml.vs_gsx_resume",
                           "boot far slower than resume (76 s vs <10 s)",
                           measured);
  return 0;
}
