// Overhead of the fault::check() hook on the hot store path.
//
// The hook's disabled cost is one relaxed atomic load; this bench measures
// it three ways so regressions in the "nobody is injecting" path show up:
//   1. raw hook calls, registry disarmed
//   2. raw hook calls, armed with a non-matching plan (mutex + rule scan)
//   3. ArtifactStore write_file throughput, disarmed vs armed
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "common.h"
#include "fault/fault.h"
#include "storage/artifact_store.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace vmp;
  bench::print_header(
      "fault hook overhead — cost of fault::check() on production paths",
      "disarmed hook is one relaxed atomic load; store throughput is "
      "unchanged when no plan is armed");

  constexpr int kHookIters = 2'000'000;
  constexpr int kWriteIters = 2'000;

  fault::FaultRegistry::instance().clear();
  {
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t ok = 0;
    for (int i = 0; i < kHookIters; ++i) {
      ok += fault::check(fault::points::kStoreWrite, "").ok();
    }
    std::printf("hook disarmed        : %8.2f ns/check (%llu ok)\n",
                seconds_since(start) * 1e9 / kHookIters,
                static_cast<unsigned long long>(ok));
  }

  {
    fault::ScopedFaultPlan scoped(
        fault::FaultPlan::parse("bus.send:target=never-matches").value());
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t ok = 0;
    for (int i = 0; i < kHookIters; ++i) {
      ok += fault::check(fault::points::kStoreWrite, "file").ok();
    }
    std::printf("hook armed, no match : %8.2f ns/check (%llu ok)\n",
                seconds_since(start) * 1e9 / kHookIters,
                static_cast<unsigned long long>(ok));
  }

  const auto sandbox =
      std::filesystem::temp_directory_path() / "vmplants-fault-bench";
  std::filesystem::remove_all(sandbox);
  storage::ArtifactStore store(sandbox);
  const std::string payload(4096, 'x');

  const auto write_sweep = [&](const char* label) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kWriteIters; ++i) {
      (void)store.write_file("bench/f" + std::to_string(i), payload);
    }
    std::printf("%s: %8.2f us/write_file\n", label,
                seconds_since(start) * 1e6 / kWriteIters);
  };

  fault::FaultRegistry::instance().clear();
  write_sweep("store disarmed       ");
  {
    fault::ScopedFaultPlan scoped(
        fault::FaultPlan::parse("store.write:target=never-matches").value());
    write_sweep("store armed, no match");
  }

  std::filesystem::remove_all(sandbox);
  return 0;
}
