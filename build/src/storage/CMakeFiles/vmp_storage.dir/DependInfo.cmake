
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/artifact_store.cpp" "src/storage/CMakeFiles/vmp_storage.dir/artifact_store.cpp.o" "gcc" "src/storage/CMakeFiles/vmp_storage.dir/artifact_store.cpp.o.d"
  "/root/repo/src/storage/clone_ops.cpp" "src/storage/CMakeFiles/vmp_storage.dir/clone_ops.cpp.o" "gcc" "src/storage/CMakeFiles/vmp_storage.dir/clone_ops.cpp.o.d"
  "/root/repo/src/storage/disk.cpp" "src/storage/CMakeFiles/vmp_storage.dir/disk.cpp.o" "gcc" "src/storage/CMakeFiles/vmp_storage.dir/disk.cpp.o.d"
  "/root/repo/src/storage/image_layout.cpp" "src/storage/CMakeFiles/vmp_storage.dir/image_layout.cpp.o" "gcc" "src/storage/CMakeFiles/vmp_storage.dir/image_layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
