// Unit tests for the core middleware: requests, cost models, info system,
// PPP planning, production line, and the plant daemon (direct interface).
#include <gtest/gtest.h>

#include <filesystem>

#include "core/cost.h"
#include "core/info_system.h"
#include "core/plant.h"
#include "core/ppp.h"
#include "core/production_line.h"
#include "core/request.h"
#include "hypervisor/gsx.h"
#include "workload/dag_library.h"
#include "workload/request_gen.h"

namespace vmp::core {
namespace {

// -- Request XML --------------------------------------------------------------

TEST(RequestTest, ValidateCatchesMissingFields) {
  CreateRequest r;
  EXPECT_FALSE(r.validate().ok());  // no id
  r.request_id = "req-1";
  EXPECT_FALSE(r.validate().ok());  // no domain
  r.domain = "ufl.edu";
  EXPECT_FALSE(r.validate().ok());  // no memory requirement
  r.hardware.memory_bytes = 64 << 20;
  EXPECT_TRUE(r.validate().ok());
}

TEST(RequestTest, XmlRoundTrip) {
  CreateRequest r = workload::workspace_request(64, 7, "ufl.edu");
  auto parsed = CreateRequest::from_xml_string(r.to_xml_string());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().request_id, r.request_id);
  EXPECT_EQ(parsed.value().client, r.client);
  EXPECT_EQ(parsed.value().domain, "ufl.edu");
  EXPECT_EQ(parsed.value().proxy_address, r.proxy_address);
  EXPECT_EQ(parsed.value().hardware.memory_bytes, 64ull << 20);
  EXPECT_TRUE(parsed.value().config == r.config);
}

TEST(RequestTest, HardwareMatching) {
  MachineRequirements req;
  req.os = "linux";
  req.memory_bytes = 64;
  req.min_disk_bytes = 100;
  EXPECT_TRUE(req.satisfied_by("linux", 64, 100));
  EXPECT_TRUE(req.satisfied_by("linux", 64, 200));
  EXPECT_FALSE(req.satisfied_by("windows", 64, 100));
  EXPECT_FALSE(req.satisfied_by("linux", 128, 100));  // exact memory match
  EXPECT_FALSE(req.satisfied_by("linux", 64, 50));
  // Unconstrained fields match anything.
  MachineRequirements loose;
  EXPECT_TRUE(loose.satisfied_by("anything", 1, 1));
}

TEST(RequestTest, FromXmlRejectsMissingDag) {
  EXPECT_FALSE(CreateRequest::from_xml_string(
                   "<create-request id=\"r\" domain=\"d\">"
                   "<hardware memory-bytes=\"1\"/></create-request>")
                   .ok());
}

// -- Cost models ----------------------------------------------------------------

PlantLoad basic_load() {
  PlantLoad load;
  load.active_vms = 0;
  load.max_vms = 32;
  load.host_memory_bytes = 1536ull << 20;
  load.resident_memory_bytes = 0;
  load.needs_new_network = true;
  load.network_available = true;
  load.request_memory_bytes = 64ull << 20;
  return load;
}

TEST(CostTest, PaperWorkedExample) {
  // §3.4: network cost 50, compute cost 4/VM.  An empty plant bids 50 for a
  // new domain; with the domain's network held, a plant with n VMs bids 4n.
  NetworkComputeCostModel model(50.0, 4.0);
  PlantLoad load = basic_load();
  EXPECT_DOUBLE_EQ(model.estimate(load).value(), 50.0);

  load.needs_new_network = false;
  load.active_vms = 12;
  EXPECT_DOUBLE_EQ(model.estimate(load).value(), 48.0);
  load.active_vms = 13;
  EXPECT_DOUBLE_EQ(model.estimate(load).value(), 52.0);  // crossover point
}

TEST(CostTest, NetworkComputeRefusesWhenFullOrNoNetwork) {
  NetworkComputeCostModel model;
  PlantLoad load = basic_load();
  load.active_vms = 32;
  EXPECT_FALSE(model.estimate(load).ok());
  load = basic_load();
  load.network_available = false;
  EXPECT_FALSE(model.estimate(load).ok());
}

TEST(CostTest, MemoryAvailableScalesWithScarcity) {
  MemoryAvailableCostModel model(100.0);
  PlantLoad load = basic_load();
  const double empty_bid = model.estimate(load).value();
  load.resident_memory_bytes = 1024ull << 20;
  const double loaded_bid = model.estimate(load).value();
  EXPECT_LT(empty_bid, loaded_bid);
}

TEST(CostTest, MemoryAvailableAllowsExpensiveOvercommit) {
  MemoryAvailableCostModel model(100.0);
  PlantLoad load = basic_load();
  load.resident_memory_bytes = 1536ull << 20;  // full
  auto bid = model.estimate(load);
  ASSERT_TRUE(bid.ok());
  EXPECT_GT(bid.value(), 100.0);  // over the normal scale
}

TEST(CostTest, Factory) {
  EXPECT_EQ(make_cost_model("memory-available")->name(), "memory-available");
  EXPECT_EQ(make_cost_model("network-compute")->name(), "network-compute");
  EXPECT_EQ(make_cost_model("anything-else")->name(), "network-compute");
}

// -- VmInformationSystem -----------------------------------------------------------

TEST(InfoSystemTest, StoreQueryRemove) {
  VmInformationSystem info;
  classad::ClassAd ad;
  ad.set_string("VMID", "vm-1");
  info.store("vm-1", ad);
  EXPECT_TRUE(info.contains("vm-1"));
  EXPECT_EQ(info.size(), 1u);
  auto q = info.query("vm-1");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().get_string("VMID").value(), "vm-1");
  ASSERT_TRUE(info.remove("vm-1").ok());
  EXPECT_FALSE(info.query("vm-1").ok());
  EXPECT_FALSE(info.remove("vm-1").ok());
}

TEST(InfoSystemTest, UpdateMergesAttributes) {
  VmInformationSystem info;
  classad::ClassAd ad;
  ad.set_string("State", "stopped");
  ad.set_integer("MemoryBytes", 1);
  info.store("vm-1", ad);

  classad::ClassAd updates;
  updates.set_string("State", "running");
  updates.set_string("IPAddress", "10.0.0.2");
  ASSERT_TRUE(info.update("vm-1", updates).ok());

  auto q = info.query("vm-1");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().get_string("State").value(), "running");
  EXPECT_EQ(q.value().get_string("IPAddress").value(), "10.0.0.2");
  EXPECT_EQ(q.value().get_integer("MemoryBytes").value(), 1);
  EXPECT_FALSE(info.update("ghost", updates).ok());
}

// -- Guest script compilation --------------------------------------------------------

TEST(CompileTest, KnownOperations) {
  dag::Action a("A", "install-package");
  a.set_param("package", "vnc");
  EXPECT_EQ(compile_guest_script(a).value(), "install vnc");

  dag::Action net("D", "configure-network");
  net.set_param("ip", "10.0.0.2");
  net.set_param("mac", "02:56:4d:00:00:02");
  EXPECT_EQ(compile_guest_script(net).value(),
            "ifconfig 10.0.0.2 02:56:4d:00:00:02");

  dag::Action user("E", "create-user");
  user.set_param("name", "arijit");
  EXPECT_EQ(compile_guest_script(user).value(), "adduser arijit");

  dag::Action mount("F", "mount");
  mount.set_param("source", "nfs://x");
  mount.set_param("mountpoint", "/home/a");
  EXPECT_EQ(compile_guest_script(mount).value(), "mount nfs://x /home/a");
}

TEST(CompileTest, MissingParamsRejected) {
  dag::Action a("A", "install-package");  // no package param
  EXPECT_FALSE(compile_guest_script(a).ok());
  dag::Action u("E", "create-user");
  EXPECT_FALSE(compile_guest_script(u).ok());
}

TEST(CompileTest, RunScriptUsesVerbatimBody) {
  dag::Action s("S", "run-script");
  s.set_script("install x\ninstall y");
  EXPECT_EQ(compile_guest_script(s).value(), "install x\ninstall y");
  dag::Action empty("S2", "run-script");
  EXPECT_FALSE(compile_guest_script(empty).ok());
}

TEST(CompileTest, UnknownOperationRejected) {
  dag::Action a("A", "defragment-disk");
  EXPECT_FALSE(compile_guest_script(a).ok());
}

// -- Plant fixture ----------------------------------------------------------------------

class PlantTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("vmp-core-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    store_ = std::make_unique<storage::ArtifactStore>(root_);
    warehouse_ = std::make_unique<warehouse::Warehouse>(store_.get(), "warehouse");
    ASSERT_TRUE(workload::publish_paper_goldens(warehouse_.get()).ok());

    PlantConfig config;
    config.name = "plant0";
    config.cost_model = "network-compute";
    plant_ = std::make_unique<VmPlant>(config, store_.get(), warehouse_.get());
  }
  void TearDown() override {
    plant_.reset();
    warehouse_.reset();
    store_.reset();
    std::filesystem::remove_all(root_);
  }

  std::filesystem::path root_;
  std::unique_ptr<storage::ArtifactStore> store_;
  std::unique_ptr<warehouse::Warehouse> warehouse_;
  std::unique_ptr<VmPlant> plant_;
};

// -- PPP ------------------------------------------------------------------------------------

TEST_F(PlantTest, PppPicksGoldenAndPlansSuffix) {
  ProductionProcessPlanner ppp(warehouse_.get());
  auto plan = ppp.plan(workload::workspace_request(64, 0, "ufl.edu"));
  ASSERT_TRUE(plan.ok()) << plan.error().to_string();
  EXPECT_EQ(plan.value().golden.id, "golden-64mb");
  EXPECT_EQ(plan.value().satisfied_nodes.size(), 3u);  // A, B, C cached
  EXPECT_EQ(plan.value().remaining_plan.size(), 6u);   // D..I to execute
  EXPECT_EQ(plan.value().hardware_candidates, 1u);     // memory filter
}

TEST_F(PlantTest, PppFailsWhenNoHardwareMatch) {
  ProductionProcessPlanner ppp(warehouse_.get());
  auto plan = ppp.plan(workload::workspace_request(128, 0, "ufl.edu"));
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.error().code(), util::ErrorCode::kNoMatchingImage);
}

TEST_F(PlantTest, PppFailsWhenDagDoesNotMatch) {
  // A request whose DAG lacks the golden's baked-in actions fails the
  // Subset test against every golden image.
  CreateRequest request = workload::workspace_request(64, 0, "ufl.edu");
  request.config = workload::minimal_config_dag("u", "10.0.0.9");
  ProductionProcessPlanner ppp(warehouse_.get());
  auto plan = ppp.plan(request);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.error().code(), util::ErrorCode::kNoMatchingImage);
}

TEST_F(PlantTest, PppPrefersMostConfiguredGolden) {
  // Publish a second 64 MB golden that additionally has D performed for
  // this exact request's parameters: it should win the ranking.
  CreateRequest request = workload::workspace_request(64, 0, "ufl.edu");
  std::vector<std::string> richer = workload::invigo_golden_history();
  richer.push_back(request.config.action("D")->signature());
  auto g64 = warehouse_->lookup("golden-64mb");
  ASSERT_TRUE(g64.ok());
  ASSERT_TRUE(warehouse_
                  ->publish_new("golden-64mb-preconf", "vmware-gsx",
                                g64.value().spec, g64.value().guest, richer)
                  .ok());
  ProductionProcessPlanner ppp(warehouse_.get());
  auto plan = ppp.plan(request);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().golden.id, "golden-64mb-preconf");
  EXPECT_EQ(plan.value().remaining_plan.size(), 5u);
}

// -- Plant create/query/collect ------------------------------------------------------------

TEST_F(PlantTest, EstimateFollowsPaperCostModel) {
  CreateRequest request = workload::workspace_request(64, 0, "ufl.edu");
  auto bid = plant_->estimate(request);
  ASSERT_TRUE(bid.ok());
  EXPECT_DOUBLE_EQ(bid.value(), 50.0);  // network cost for a new domain
}

TEST_F(PlantTest, CreateProducesConfiguredVm) {
  CreateRequest request = workload::workspace_request(64, 3, "ufl.edu");
  auto ad = plant_->create(request);
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();

  EXPECT_EQ(ad.value().get_string(attrs::kPlant).value(), "plant0");
  EXPECT_EQ(ad.value().get_string(attrs::kGoldenImage).value(), "golden-64mb");
  EXPECT_EQ(ad.value().get_integer(attrs::kActionsSatisfied).value(), 3);
  EXPECT_EQ(ad.value().get_integer(attrs::kActionsExecuted).value(), 6);
  EXPECT_EQ(ad.value().get_string(attrs::kState).value(), "running");
  EXPECT_EQ(ad.value().get_string(attrs::kDomain).value(), "ufl.edu");
  EXPECT_FALSE(ad.value().get_string(attrs::kNetwork).value().empty());

  // The guest really was configured by the scripts.
  const std::string vm_id = ad.value().get_string(attrs::kVmId).value();
  const hv::VmInstance* vm = plant_->hypervisor().find(vm_id);
  ASSERT_NE(vm, nullptr);
  EXPECT_EQ(vm->guest.ip, "10.64.0.5");  // request 3 -> ip .5
  EXPECT_TRUE(vm->guest.users.count("user3"));
  EXPECT_TRUE(vm->guest.running_services.count("vnc-server"));
  EXPECT_TRUE(vm->guest.running_services.count("web-file-manager"));
  EXPECT_TRUE(vm->guest.mounts.count("/home/user3"));

  // Monitor-refreshed dynamic attributes flow into queries.
  auto q = plant_->query(vm_id);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().get_string(attrs::kIp).value(), "10.64.0.5");
  EXPECT_EQ(plant_->active_vms(), 1u);
  EXPECT_EQ(plant_->resident_memory_bytes(), 64ull << 20);
}

TEST_F(PlantTest, CollectReleasesEverything) {
  CreateRequest request = workload::workspace_request(32, 0, "ufl.edu");
  auto ad = plant_->create(request);
  ASSERT_TRUE(ad.ok());
  const std::string vm_id = ad.value().get_string(attrs::kVmId).value();

  EXPECT_EQ(plant_->allocator().free_networks(), 3u);
  ASSERT_TRUE(plant_->collect(vm_id).ok());
  EXPECT_EQ(plant_->active_vms(), 0u);
  EXPECT_EQ(plant_->allocator().free_networks(), 4u);
  EXPECT_FALSE(plant_->query(vm_id).ok());
  EXPECT_FALSE(plant_->collect(vm_id).ok());
}

TEST_F(PlantTest, CreateFailsWhenNetworksExhausted) {
  // 4 host-only networks -> at most 4 distinct domains.
  for (int d = 0; d < 4; ++d) {
    auto ad = plant_->create(
        workload::workspace_request(32, d, "domain" + std::to_string(d)));
    ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  }
  auto fifth = plant_->create(workload::workspace_request(32, 9, "domain9"));
  ASSERT_FALSE(fifth.ok());
  EXPECT_EQ(fifth.error().code(), util::ErrorCode::kResourceExhausted);
  // Same-domain requests still work.
  EXPECT_TRUE(plant_->create(workload::workspace_request(32, 10, "domain0")).ok());
}

TEST_F(PlantTest, FailedActionAbortsAndCleansUp) {
  CreateRequest request = workload::workspace_request(64, 0, "ufl.edu");
  // Append a failing action to the DAG.
  dag::Action boom("Z", "inject-fail");
  boom.set_param("message", "boom");
  ASSERT_TRUE(request.config.add_action(boom).ok());
  ASSERT_TRUE(request.config.add_edge("I", "Z").ok());

  auto ad = plant_->create(request);
  ASSERT_FALSE(ad.ok());
  EXPECT_EQ(ad.error().code(), util::ErrorCode::kConfigActionFailed);
  // No VM left behind; network released.
  EXPECT_EQ(plant_->active_vms(), 0u);
  EXPECT_EQ(plant_->allocator().free_networks(), 4u);
  EXPECT_EQ(plant_->hypervisor().instance_ids().size(), 0u);
}

TEST_F(PlantTest, RetryPolicySurvivesTransientFailures) {
  CreateRequest request = workload::workspace_request(64, 0, "ufl.edu");
  dag::Action flaky("Z", "inject-flaky");
  flaky.set_param("token", "net-glitch");
  flaky.set_param("count", "2");
  flaky.set_error_policy(dag::ErrorPolicy::kRetry);
  flaky.set_max_retries(2);
  ASSERT_TRUE(request.config.add_action(flaky).ok());
  ASSERT_TRUE(request.config.add_edge("I", "Z").ok());

  auto ad = plant_->create(request);
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  EXPECT_EQ(ad.value().get_integer(attrs::kActionFailures).value(), 0);
}

TEST_F(PlantTest, RetryPolicyExhaustionAborts) {
  CreateRequest request = workload::workspace_request(64, 0, "ufl.edu");
  dag::Action flaky("Z", "inject-flaky");
  flaky.set_param("token", "hard-glitch");
  flaky.set_param("count", "5");
  flaky.set_error_policy(dag::ErrorPolicy::kRetry);
  flaky.set_max_retries(1);  // 2 attempts < 5 failures
  ASSERT_TRUE(request.config.add_action(flaky).ok());
  ASSERT_TRUE(request.config.add_edge("I", "Z").ok());
  EXPECT_FALSE(plant_->create(request).ok());
}

TEST_F(PlantTest, ContinuePolicyRecordsFailureInClassad) {
  CreateRequest request = workload::workspace_request(64, 0, "ufl.edu");
  dag::Action boom("Z", "inject-fail");
  boom.set_param("message", "optional step broke");
  boom.set_error_policy(dag::ErrorPolicy::kContinue);
  ASSERT_TRUE(request.config.add_action(boom).ok());
  ASSERT_TRUE(request.config.add_edge("I", "Z").ok());

  auto ad = plant_->create(request);
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  EXPECT_EQ(ad.value().get_integer(attrs::kActionFailures).value(), 1);
  EXPECT_NE(ad.value().get_string("ActionFailure_Z").value().find("broke"),
            std::string::npos);
}

TEST_F(PlantTest, ErrorSubgraphRepairsAndRetries) {
  CreateRequest request = workload::workspace_request(64, 0, "ufl.edu");
  // Action Z requires a package that is not installed; its error sub-graph
  // installs the package, after which the retry succeeds.
  dag::Action needs("Z", "require-package");
  needs.set_param("package", "matlab");
  ASSERT_TRUE(request.config.add_action(needs).ok());
  ASSERT_TRUE(request.config.add_edge("I", "Z").ok());
  dag::ConfigDag repair =
      dag::DagBuilder()
          .guest("fix", "install-package", {{"package", "matlab"}})
          .build();
  ASSERT_TRUE(request.config.set_error_subgraph("Z", repair).ok());

  auto ad = plant_->create(request);
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  const std::string vm_id = ad.value().get_string(attrs::kVmId).value();
  EXPECT_TRUE(
      plant_->hypervisor().find(vm_id)->guest.packages.count("matlab"));
}

TEST_F(PlantTest, EmitActionsFlowIntoClassad) {
  CreateRequest request = workload::workspace_request(64, 0, "ufl.edu");
  dag::Action emit("Z", "emit");
  emit.set_param("key", "SSHKeyFingerprint");
  emit.set_param("value", "ab:cd:ef");
  ASSERT_TRUE(request.config.add_action(emit).ok());
  ASSERT_TRUE(request.config.add_edge("I", "Z").ok());

  auto ad = plant_->create(request);
  ASSERT_TRUE(ad.ok());
  EXPECT_EQ(ad.value().get_string("SSHKeyFingerprint").value(), "ab:cd:ef");
}

TEST_F(PlantTest, CredentialsFlowIntoClassad) {
  // Paper §3.1: the returned classad lets the client access the guest
  // "with physical or virtual IP network addresses and SSH keys or
  // X.509/GSI certificates setup during its creation".
  CreateRequest request = workload::workspace_request(64, 0, "ufl.edu");
  dag::Action key("K", "setup-ssh-key");
  key.set_param("user", "user0");
  ASSERT_TRUE(request.config.add_action(key).ok());
  ASSERT_TRUE(request.config.add_edge("E", "K").ok());  // after create-user
  dag::Action cert("X509", "setup-gsi-cert");
  cert.set_param("user", "user0");
  cert.set_param("subject", "/O=Grid/CN=user0");
  ASSERT_TRUE(request.config.add_action(cert).ok());
  ASSERT_TRUE(request.config.add_edge("E", "X509").ok());

  auto ad = plant_->create(request);
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  EXPECT_FALSE(ad.value().get_string("SSHKey_user0").value().empty());
  EXPECT_EQ(ad.value().get_string("GSISubject_user0").value(),
            "/O=Grid/CN=user0");
  // The credential files exist in the guest.
  const std::string vm_id = ad.value().get_string(attrs::kVmId).value();
  const hv::VmInstance* vm = plant_->hypervisor().find(vm_id);
  EXPECT_TRUE(vm->guest.files.count("/home/user0/.ssh/id_rsa.pub"));
  EXPECT_TRUE(vm->guest.files.count("/etc/grid-security/user0.pem"));
}

TEST_F(PlantTest, HostActionsExecuteOnThePlant) {
  CreateRequest request = workload::workspace_request(64, 0, "ufl.edu");
  dag::Action nic("Z", "host-attach-nic");
  nic.set_scope(dag::ActionScope::kHost);
  ASSERT_TRUE(request.config.add_action(nic).ok());
  ASSERT_TRUE(request.config.add_edge("I", "Z").ok());
  dag::Action attr("Y", "host-set-attr");
  attr.set_scope(dag::ActionScope::kHost);
  attr.set_param("key", "Rack");
  attr.set_param("value", "e1350-07");
  ASSERT_TRUE(request.config.add_action(attr).ok());
  ASSERT_TRUE(request.config.add_edge("Z", "Y").ok());

  auto ad = plant_->create(request);
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  EXPECT_EQ(ad.value().get_string("Rack").value(), "e1350-07");
  EXPECT_EQ(ad.value().get_string(attrs::kNetwork).value(),
            "plant0-vmnet1");
}

TEST_F(PlantTest, AccountingAttributesPresent) {
  auto ad = plant_->create(workload::workspace_request(256, 0, "ufl.edu"));
  ASSERT_TRUE(ad.ok());
  // 256 MB memory copy dominates bytes copied.
  EXPECT_GE(ad.value().get_integer(attrs::kCloneBytesCopied).value(),
            static_cast<std::int64_t>(256ull << 20));
  EXPECT_EQ(ad.value().get_integer(attrs::kCloneLinks).value(), 16);
  EXPECT_EQ(ad.value().get_integer(attrs::kActiveVmsBefore).value(), 0);
  EXPECT_EQ(ad.value().get_integer(attrs::kResidentBeforeBytes).value(), 0);
  EXPECT_EQ(ad.value().get_integer(attrs::kIsosConnected).value(), 6);
}

TEST_F(PlantTest, MaxVmCapacityEnforced) {
  PlantConfig tiny;
  tiny.name = "tiny";
  tiny.max_vms = 2;
  VmPlant plant(tiny, store_.get(), warehouse_.get());
  ASSERT_TRUE(plant.create(workload::workspace_request(32, 0, "d")).ok());
  ASSERT_TRUE(plant.create(workload::workspace_request(32, 1, "d")).ok());
  auto third = plant.create(workload::workspace_request(32, 2, "d"));
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.error().code(), util::ErrorCode::kResourceExhausted);
}

TEST_F(PlantTest, UmlBackendPlant) {
  ASSERT_TRUE(workload::publish_uml_golden(warehouse_.get(), 32).ok());
  PlantConfig config;
  config.name = "umlplant";
  config.backend = "uml";
  VmPlant plant(config, store_.get(), warehouse_.get());

  auto ad = plant.create(workload::workspace_request(32, 0, "ufl.edu", "uml"));
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  EXPECT_EQ(ad.value().get_string(attrs::kBackend).value(), "uml");
  // UML clones copy no memory state.
  EXPECT_LT(ad.value().get_integer(attrs::kCloneBytesCopied).value(),
            static_cast<std::int64_t>(1 << 20));
}

}  // namespace
}  // namespace vmp::core
