// Contended-resource models layered on the DES engine.
//
// Three models cover everything the cluster simulation needs:
//
//  * SharedBandwidth — processor-sharing pipe.  N concurrent transfers each
//    progress at capacity/N.  Models the NFS server uplink (100 Mbit/s in
//    the paper's testbed) and host NICs; it is what makes cloning times
//    stretch when many clones run at once (Figure 6).
//
//  * FifoServer — k identical servers with a FIFO queue.  Models the
//    storage server's disk arms and per-host SCSI disks.
//
//  * CapacityPool — counted resource with blocking acquire.  Models host
//    memory for resumed VMs and the finite pool of host-only networks that
//    the cost function (Section 3.4) rations per client domain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "sim/engine.h"

namespace vmp::sim {

/// Processor-sharing pipe: all active jobs share `capacity` (units/second)
/// equally.  Completion callbacks fire inside engine events.
class SharedBandwidth {
 public:
  /// capacity: units per simulated second (e.g. bytes/s).
  SharedBandwidth(Engine* engine, double capacity, std::string name = "pipe");

  /// Begin transferring `units`; `on_done` fires when it completes.
  /// Returns a job id usable with `active()` queries.
  std::uint64_t start(double units, std::function<void()> on_done);

  std::size_t active() const { return jobs_.size(); }
  double capacity() const { return capacity_; }
  const std::string& name() const { return name_; }

  /// Total units moved through the pipe so far (for utilization accounting).
  double total_transferred() const { return total_transferred_; }

 private:
  struct Job {
    double remaining;
    std::function<void()> on_done;
  };

  /// Advance all jobs to now, then (re)schedule the next completion.
  void advance_and_reschedule();

  /// Completion event body: settle progress, collect finished jobs, then
  /// invoke their callbacks after internal state is consistent.
  void advance_and_reschedule_completions();

  Engine* engine_;
  double capacity_;
  std::string name_;
  std::map<std::uint64_t, Job> jobs_;
  std::uint64_t next_id_ = 1;
  SimTime last_update_ = 0.0;
  EventHandle next_completion_;
  double total_transferred_ = 0.0;
};

/// k-server FIFO queue: each job occupies one server for `service_time`.
class FifoServer {
 public:
  FifoServer(Engine* engine, std::size_t servers, std::string name = "fifo");

  /// Enqueue a job needing `service_time` seconds of a server.
  void submit(SimTime service_time, std::function<void()> on_done);

  std::size_t busy() const { return busy_; }
  std::size_t queued() const { return queue_.size(); }

 private:
  struct Job {
    SimTime service_time;
    std::function<void()> on_done;
  };
  void try_dispatch();

  Engine* engine_;
  std::size_t servers_;
  std::string name_;
  std::size_t busy_ = 0;
  std::deque<Job> queue_;
};

/// Counted capacity with blocking acquire; waiters are served FIFO.
class CapacityPool {
 public:
  CapacityPool(Engine* engine, double capacity, std::string name = "pool");

  /// Try to take `amount` immediately; false if insufficient.
  bool try_acquire(double amount);

  /// Acquire when available; `on_granted` fires (possibly immediately via a
  /// zero-delay event) once the amount has been reserved.
  void acquire(double amount, std::function<void()> on_granted);

  /// Return `amount` to the pool, waking waiters in order.
  void release(double amount);

  double available() const { return available_; }
  double capacity() const { return capacity_; }
  double in_use() const { return capacity_ - available_; }
  std::size_t waiters() const { return waiters_.size(); }

 private:
  struct Waiter {
    double amount;
    std::function<void()> on_granted;
  };
  void drain_waiters();

  Engine* engine_;
  double capacity_;
  double available_;
  std::string name_;
  std::deque<Waiter> waiters_;
};

}  // namespace vmp::sim
