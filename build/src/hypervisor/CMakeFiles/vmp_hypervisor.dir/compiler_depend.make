# Empty compiler generated dependencies file for vmp_hypervisor.
# This may be replaced when dependencies are built.
