#include "core/ppp.h"

namespace vmp::core {

using util::Error;
using util::ErrorCode;
using util::Result;

Result<ProductionPlan> ProductionProcessPlanner::plan(
    const CreateRequest& request) const {
  const std::string backend =
      request.backend.empty() ? "vmware-gsx" : request.backend;

  // Hardware filter first (memory / disk / OS), then DAG matching.
  std::vector<warehouse::GoldenImage> candidates;
  for (warehouse::GoldenImage& image : warehouse_->list_backend(backend)) {
    if (request.hardware.satisfied_by(image.spec.os, image.spec.memory_bytes,
                                      image.spec.disk.capacity_bytes)) {
      candidates.push_back(std::move(image));
    }
  }
  if (candidates.empty()) {
    return Result<ProductionPlan>(Error(
        ErrorCode::kNoMatchingImage,
        "no golden machine passes the hardware filter (backend=" + backend +
            ", os=" + request.hardware.os + ", memory=" +
            std::to_string(request.hardware.memory_bytes) + ")"));
  }

  std::vector<std::vector<std::string>> histories;
  histories.reserve(candidates.size());
  for (const auto& image : candidates) histories.push_back(image.performed);

  auto ranked = dag::rank_matches(request.config, histories);
  if (!ranked.ok()) return ranked.propagate<ProductionPlan>();
  if (ranked.value().empty()) {
    return Result<ProductionPlan>(Error(
        ErrorCode::kNoMatchingImage,
        "no golden machine passes the DAG matching tests (" +
            std::to_string(candidates.size()) + " hardware candidates)"));
  }

  const dag::RankedMatch& best = ranked.value().front();
  auto eval =
      dag::evaluate_match(request.config, histories[best.image_index]);
  if (!eval.ok()) return eval.propagate<ProductionPlan>();

  ProductionPlan plan;
  plan.golden = std::move(candidates[best.image_index]);
  plan.satisfied_nodes = std::move(eval.value().satisfied_nodes);
  plan.remaining_plan = std::move(eval.value().remaining_plan);
  plan.hardware_candidates = candidates.size();
  return plan;
}

}  // namespace vmp::core
