// Ethernet-layer primitives for the simulated VNET overlay.
//
// VNET (Sundararaj & Dinda, 2004; paper Section 3.3) bridges a VM placed on
// a host-only network back to its client's home network by relaying raw
// Ethernet frames over a TCP/SSL tunnel.  The simulation keeps the same
// abstraction level: MAC-addressed frames forwarded by learning switches
// and bridges, so isolation and reachability properties can be tested
// end-to-end.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/error.h"

namespace vmp::vnet {

/// 48-bit MAC address.
class MacAddress {
 public:
  MacAddress() = default;
  explicit MacAddress(std::array<std::uint8_t, 6> octets) : octets_(octets) {}

  /// Deterministic locally-administered unicast address from an index:
  /// 02:56:4d:xx:xx:xx ("VM" vendor bytes).
  static MacAddress from_index(std::uint32_t index);

  /// Parse "aa:bb:cc:dd:ee:ff".
  static util::Result<MacAddress> parse(const std::string& text);

  static MacAddress broadcast();

  bool is_broadcast() const;
  std::string to_string() const;

  friend bool operator==(const MacAddress& a, const MacAddress& b) {
    return a.octets_ == b.octets_;
  }
  friend bool operator<(const MacAddress& a, const MacAddress& b) {
    return a.octets_ < b.octets_;
  }

 private:
  std::array<std::uint8_t, 6> octets_{};
};

/// A layer-2 frame.  Payload is opaque to the overlay.
struct EthernetFrame {
  MacAddress dst;
  MacAddress src;
  std::uint16_t ethertype = 0x0800;  // IPv4 by default
  std::string payload;
};

}  // namespace vmp::vnet
