#include "core/cost.h"

namespace vmp::core {

using util::Error;
using util::ErrorCode;
using util::Result;

Result<double> NetworkComputeCostModel::estimate(const PlantLoad& load) const {
  if (load.max_vms != 0 && load.active_vms >= load.max_vms) {
    return Result<double>(
        Error(ErrorCode::kResourceExhausted, "plant at VM capacity"));
  }
  if (!load.network_available) {
    return Result<double>(Error(ErrorCode::kResourceExhausted,
                                "no host-only network for this domain"));
  }
  double cost = compute_cost_per_vm_ * static_cast<double>(load.active_vms);
  if (load.needs_new_network) cost += network_cost_;
  return cost;
}

Result<double> MemoryAvailableCostModel::estimate(const PlantLoad& load) const {
  if (load.max_vms != 0 && load.active_vms >= load.max_vms) {
    return Result<double>(
        Error(ErrorCode::kResourceExhausted, "plant at VM capacity"));
  }
  if (!load.network_available) {
    return Result<double>(Error(ErrorCode::kResourceExhausted,
                                "no host-only network for this domain"));
  }
  if (load.host_memory_bytes == 0) {
    return Result<double>(
        Error(ErrorCode::kFailedPrecondition, "plant reports no host memory"));
  }
  if (load.resident_memory_bytes + load.request_memory_bytes >
      load.host_memory_bytes) {
    // Allow overcommit, but make it very expensive rather than refusing:
    // the paper's experiments intentionally drive plants past 1 GB
    // aggregate VM memory on 1.5 GB hosts.
    const double over =
        static_cast<double>(load.resident_memory_bytes +
                            load.request_memory_bytes) /
        static_cast<double>(load.host_memory_bytes);
    return scale_ * (1.0 + over);
  }
  const double used_fraction =
      static_cast<double>(load.resident_memory_bytes +
                          load.request_memory_bytes) /
      static_cast<double>(load.host_memory_bytes);
  return scale_ * used_fraction;
}

std::unique_ptr<CostModel> make_cost_model(const std::string& name) {
  if (name == "memory-available") {
    return std::make_unique<MemoryAvailableCostModel>();
  }
  return std::make_unique<NetworkComputeCostModel>();
}

}  // namespace vmp::core
