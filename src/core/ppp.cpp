#include "core/ppp.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vmp::core {

using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

/// Match-kind counters (DESIGN.md §8): each hardware-passing candidate is
/// classified by the first DAG test it fails; plan outcomes feed the
/// warehouse hit ratio.
struct PppMetrics {
  obs::Counter* match_hit;
  obs::Counter* subset_fail;
  obs::Counter* prefix_fail;
  obs::Counter* order_fail;
  obs::Counter* plan_hit;
  obs::Counter* plan_miss;
  obs::Timer* plan_seconds;

  static PppMetrics& get() {
    static PppMetrics m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::instance();
      return PppMetrics{r.counter("ppp.match_hit.count"),
                        r.counter("ppp.match_subset_fail.count"),
                        r.counter("ppp.match_prefix_fail.count"),
                        r.counter("ppp.match_order_fail.count"),
                        r.counter("ppp.plan_hit.count"),
                        r.counter("ppp.plan_miss.count"),
                        r.timer("ppp.plan.seconds")};
    }();
    return m;
  }
};

}  // namespace

Result<ProductionPlan> ProductionProcessPlanner::plan(
    const CreateRequest& request) const {
  PppMetrics& metrics = PppMetrics::get();
  obs::ScopedSpan span("ppp.match", "ppp", request.request_id);
  const auto start = std::chrono::steady_clock::now();
  const auto record_elapsed = [&] {
    metrics.plan_seconds->record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  };

  const std::string backend =
      request.backend.empty() ? "vmware-gsx" : request.backend;

  // Hardware filter first (memory / disk / OS), then DAG matching.
  std::vector<warehouse::GoldenImage> candidates;
  for (warehouse::GoldenImage& image : warehouse_->list_backend(backend)) {
    if (request.hardware.satisfied_by(image.spec.os, image.spec.memory_bytes,
                                      image.spec.disk.capacity_bytes)) {
      candidates.push_back(std::move(image));
    }
  }
  if (candidates.empty()) {
    metrics.plan_miss->add();
    record_elapsed();
    span.set_status(util::error_code_name(ErrorCode::kNoMatchingImage));
    return Result<ProductionPlan>(Error(
        ErrorCode::kNoMatchingImage,
        "no golden machine passes the hardware filter (backend=" + backend +
            ", os=" + request.hardware.os + ", memory=" +
            std::to_string(request.hardware.memory_bytes) + ")"));
  }

  // One evaluation per candidate yields both the ranking and the
  // match-kind classification (subset / prefix / partial-order / hit).
  struct Scored {
    std::size_t index;
    dag::MatchEvaluation eval;
  };
  std::vector<Scored> matching;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    auto eval = dag::evaluate_match(request.config, candidates[i].performed);
    if (!eval.ok()) {
      record_elapsed();
      span.set_status(util::error_code_name(eval.error().code()));
      return eval.propagate<ProductionPlan>();
    }
    if (eval.value().matches()) {
      metrics.match_hit->add();
      matching.push_back(Scored{i, std::move(eval.value())});
    } else if (!eval.value().subset_ok) {
      metrics.subset_fail->add();
    } else if (!eval.value().prefix_ok) {
      metrics.prefix_fail->add();
    } else {
      metrics.order_fail->add();
    }
  }
  if (matching.empty()) {
    metrics.plan_miss->add();
    record_elapsed();
    span.set_status(util::error_code_name(ErrorCode::kNoMatchingImage));
    return Result<ProductionPlan>(Error(
        ErrorCode::kNoMatchingImage,
        "no golden machine passes the DAG matching tests (" +
            std::to_string(candidates.size()) + " hardware candidates)"));
  }

  // Most satisfied actions first (fewest remaining), stable on ties —
  // the same order dag::rank_matches produces.
  std::stable_sort(matching.begin(), matching.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.eval.satisfied_nodes.size() >
                            b.eval.satisfied_nodes.size();
                   });

  Scored& best = matching.front();
  ProductionPlan plan;
  plan.golden = std::move(candidates[best.index]);
  plan.satisfied_nodes = std::move(best.eval.satisfied_nodes);
  plan.remaining_plan = std::move(best.eval.remaining_plan);
  plan.hardware_candidates = candidates.size();

  metrics.plan_hit->add();
  record_elapsed();
  return plan;
}

}  // namespace vmp::core
