file(REMOVE_RECURSE
  "CMakeFiles/vnet_test.dir/vnet_test.cpp.o"
  "CMakeFiles/vnet_test.dir/vnet_test.cpp.o.d"
  "vnet_test"
  "vnet_test.pdb"
  "vnet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
