// The VM Warehouse: storage and lookup of "golden" images.
//
// Paper, Section 3.2: "The VM Warehouse stores 'golden' images of not only
// pre-built images with typical installations of popular operating systems,
// but also images that are set up and customized for an application by
// providing VM installers with the capability of publishing a VM image to
// the Warehouse, for subsequent instantiations through VMPlant."  And 4.1:
// "Golden machines are stored as files in sub-directories of the VM
// Warehouse; each golden machine is specified by a configuration file, and
// virtual disk and memory files.  XML files are used to describe such
// cached images in terms of their memory sizes, operating system installed,
// and the configuration actions that have already been performed."
//
// On disk (inside an ArtifactStore, which in the simulated cluster lives on
// the NFS server):
//   <base>/<image-id>/machine.cfg, memory.vmss, disk spans, redo, guest.state
//   <base>/<image-id>/descriptor.xml
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "hypervisor/guest.h"
#include "storage/artifact_store.h"
#include "storage/image_layout.h"
#include "util/error.h"

namespace vmp::warehouse {

struct GoldenImage {
  std::string id;
  std::string backend;  // production line: "vmware-gsx", "uml"
  storage::ImageLayout layout;
  storage::MachineSpec spec;
  hv::GuestState guest;
  /// Action signatures already performed, oldest first (the history the
  /// PPP's three matching tests run against).
  std::vector<std::string> performed;
};

/// Serialize/parse descriptor.xml.
std::string render_descriptor(const GoldenImage& image);
util::Result<GoldenImage> parse_descriptor(const std::string& xml_text);

// -- Action-multiset summaries ----------------------------------------------
// Two 64-bit digests over a signature list let the PPP prune candidates
// without touching the DAG machinery (DESIGN.md §10):
//
/// Bloom-style membership mask: 3 bits per signature.  If a golden image's
/// mask has any bit outside the request's mask, some performed signature is
/// not a request node and the Subset test MUST fail — so the image can be
/// rejected without evaluating it.  (The converse does not hold; survivors
/// still run the full tests.)
std::uint64_t action_mask(const std::vector<std::string>& signatures);

/// Order-insensitive multiset fingerprint (wrapping sum of per-signature
/// hashes, so duplicates count).  Equal multisets always have equal
/// fingerprints; a full match — golden history covering every request node —
/// implies fingerprint equality with the request, which lets the PPP probe
/// fingerprint-equal candidates first and stop at the first full match.
std::uint64_t action_fingerprint(const std::vector<std::string>& signatures);

/// Lightweight view of one hardware- and mask-passing image: exactly what
/// the PPP's DAG tests consume.  The scan used to copy full GoldenImage
/// objects (layout + spec + guest state) per candidate on every production
/// order; only the winning image is fetched in full, by id, after ranking.
struct CandidateView {
  std::string id;
  /// Action signatures already performed (the DAG tests' input).
  std::vector<std::string> performed;
  /// Precomputed performed-multiset fingerprint.
  std::uint64_t fingerprint = 0;
};

/// Result of the warehouse-side candidate scan for one production order.
struct CandidateSet {
  /// Hardware- and mask-passing images, id order.
  std::vector<CandidateView> candidates;
  /// How many images passed the hardware filter (before mask pruning).
  std::size_t hardware_candidates = 0;
  /// Hardware-passing images pruned by the mask (guaranteed Subset fails).
  std::size_t mask_rejected = 0;
};

class Warehouse {
 public:
  /// `base_dir` is the store-relative warehouse root (e.g. "warehouse").
  Warehouse(storage::ArtifactStore* store, std::string base_dir);

  /// Publish a golden image: materialize its artefacts and descriptor.
  /// Fails if the id is taken.
  util::Status publish(const GoldenImage& image);

  /// Publish by materializing from scratch (helper: builds layout from id).
  util::Result<GoldenImage> publish_new(
      const std::string& id, const std::string& backend,
      const storage::MachineSpec& spec, const hv::GuestState& guest,
      const std::vector<std::string>& performed);

  util::Result<GoldenImage> lookup(const std::string& id) const;
  bool contains(const std::string& id) const;
  /// True when the id is taken at all, INCLUDING a mid-publish placeholder
  /// claim that contains() hides.  The lifecycle orphan reaper checks this
  /// before sweeping a descriptor-less directory, so a publish that is
  /// still materializing its artefacts is never mistaken for debris.
  bool claimed(const std::string& id) const;
  util::Status remove(const std::string& id);

  /// Remove an image from the index WITHOUT touching its on-disk tree, and
  /// return it.  This is the lifecycle manager's eviction primitive: a
  /// detached image is invisible to lookup/match (so the PPP can never plan
  /// against it) while its artefacts stay on disk for clones still holding
  /// leases on them (lifecycle/lifecycle.h).
  util::Result<GoldenImage> detach(const std::string& id);

  /// Inverse of detach: re-insert a previously detached image into the
  /// index WITHOUT touching its on-disk tree.  The lifecycle manager's
  /// eviction rollback — when zombifying fails mid-way (descriptor still
  /// on disk) the image must become visible again.  Fails with
  /// kAlreadyExists if the id is taken, including a mid-publish claim.
  util::Status attach(GoldenImage image);

  /// All images (id-ordered); optionally filtered by backend.
  std::vector<GoldenImage> list() const;
  std::vector<GoldenImage> list_backend(const std::string& backend) const;

  /// One-pass candidate scan for the PPP: backend filter, then the caller's
  /// hardware predicate (counted), then the precomputed action-mask prune.
  /// Runs under a shared lock, so concurrent production orders scan in
  /// parallel and only publish/remove/rescan serialize them.
  /// `request_mask` of ~0 disables mask pruning (every image passes).
  CandidateSet match_candidates(
      const std::string& backend,
      const std::function<bool(const GoldenImage&)>& hardware_ok,
      std::uint64_t request_mask) const;

  /// Rebuild the in-memory index from descriptor.xml files on disk
  /// (service restoration after a failure — the paper's VMShop keeps no
  /// durable state; the warehouse's durable state *is* the disk).
  util::Status rescan();

  /// Replace the in-memory index with already-decoded images WITHOUT
  /// touching disk — the snapshot-restore primitive (core/snapshot.h,
  /// DESIGN.md §15): where rescan() reads and parses one descriptor.xml per
  /// image, restore_index() is pure in-memory rebuild (masks/fingerprints
  /// recomputed).  The caller vouches that the images' artefact trees exist
  /// in this store; ids must be unique and non-empty.
  util::Status restore_index(std::vector<GoldenImage> images);

  std::size_t size() const;
  const std::string& base_dir() const { return base_dir_; }
  storage::ArtifactStore* store() { return store_; }

 private:
  /// An image plus its precomputed digests, kept in lockstep by every
  /// mutation path (publish / remove / rescan).
  struct IndexedImage {
    GoldenImage image;
    std::uint64_t mask = 0;
    std::uint64_t fingerprint = 0;
  };
  static IndexedImage index_image(GoldenImage image);

  std::string dir_for(const std::string& id) const;

  /// Readers (lookup/contains/list/match_candidates/size) share; mutators
  /// take it exclusively.  Publish materializes its artefacts BEFORE taking
  /// the exclusive lock — the image directory is private until the index
  /// insert — so readers only ever block for the map insert itself.
  mutable std::shared_mutex mutex_;
  storage::ArtifactStore* store_;
  std::string base_dir_;
  std::map<std::string, IndexedImage> images_;
};

}  // namespace vmp::warehouse
