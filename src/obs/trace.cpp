#include "obs/trace.h"

#include <chrono>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace vmp::obs {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

/// Wall seconds since the process first asked for the time.
double wall_seconds() {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Per-thread stack of contexts: spans begun on this thread plus contexts
/// adopted from the wire (ContextGuard).  The open-span records parallel
/// the subset of entries begun locally.
thread_local std::vector<TraceContext> tl_context_stack;
thread_local std::vector<Span> tl_open_spans;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string Span::to_json() const {
  std::ostringstream out;
  out << "{\"trace\":\"" << json_escape(trace_id) << "\""
      << ",\"span\":" << span_id << ",\"parent\":" << parent_id
      << ",\"name\":\"" << json_escape(name) << "\""
      << ",\"component\":\"" << json_escape(component) << "\"";
  if (!detail.empty()) out << ",\"detail\":\"" << json_escape(detail) << "\"";
  if (!vm_id.empty()) out << ",\"vm\":\"" << json_escape(vm_id) << "\"";
  out << ",\"start\":" << start_s << ",\"end\":" << end_s
      << ",\"status\":\"" << json_escape(status) << "\"}";
  return out.str();
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::arm() {
  clear();
  detail::g_armed.store(true, std::memory_order_relaxed);
}

void Tracer::disarm() {
  detail::g_armed.store(false, std::memory_order_relaxed);
}

void Tracer::set_clock(std::function<double()> clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_ = std::move(clock);
}

double Tracer::now() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return clock_ ? clock_() : wall_seconds();
}

TraceContext Tracer::begin_span(const std::string& name,
                                const std::string& component,
                                const std::string& detail,
                                const TraceContext& parent) {
  Span span;
  span.name = name;
  span.component = component;
  span.detail = detail;
  span.span_id = next_span_id_.fetch_add(1, std::memory_order_relaxed);
  span.start_s = now();

  TraceContext effective_parent = parent;
  if (!effective_parent.valid() && !tl_context_stack.empty()) {
    effective_parent = tl_context_stack.back();
  }
  if (effective_parent.valid()) {
    span.trace_id = effective_parent.trace_id;
    span.parent_id = effective_parent.span_id;
  } else {
    span.trace_id =
        "trace-" +
        std::to_string(next_trace_.fetch_add(1, std::memory_order_relaxed));
    span.parent_id = 0;
  }

  TraceContext ctx{span.trace_id, span.span_id};
  tl_context_stack.push_back(ctx);
  tl_open_spans.push_back(std::move(span));
  return ctx;
}

void Tracer::end_span(const TraceContext& ctx, const std::string& status,
                      const std::string& vm_id) {
  if (tl_open_spans.empty()) return;
  Span span = std::move(tl_open_spans.back());
  tl_open_spans.pop_back();
  // The context stack entry for this span is on top unless a ContextGuard
  // leaked (it cannot: both are strict RAII); be defensive anyway.
  if (!tl_context_stack.empty() &&
      tl_context_stack.back().span_id == ctx.span_id) {
    tl_context_stack.pop_back();
  }
  span.end_s = now();
  span.status = status;
  span.vm_id = vm_id;
  if (log_spans_.load(std::memory_order_relaxed)) {
    util::Logger("trace").debug()
        << span.name << " [" << span.component << "] "
        << span.duration_s() << "s status=" << span.status
        << (span.detail.empty() ? "" : " " + span.detail);
  }
  // A finishing root is the tail sampler's decision point: copy it before
  // the move, land it in the buffer, then run the sink OUTSIDE the lock so
  // it can extract the trace back out.
  const bool notify_root =
      span.parent_id == 0 && root_sink_armed_.load(std::memory_order_relaxed);
  Span root_copy;
  if (notify_root) root_copy = span;
  RootSink sink;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    finished_.push_back(std::move(span));
    if (notify_root) sink = root_sink_;
  }
  if (sink) sink(root_copy);
}

void Tracer::instant(const std::string& name, const std::string& component,
                     const std::string& status, const std::string& detail) {
  if (!armed()) return;
  Span span;
  span.name = name;
  span.component = component;
  span.detail = detail;
  span.status = status;
  span.span_id = next_span_id_.fetch_add(1, std::memory_order_relaxed);
  span.start_s = span.end_s = now();
  if (!tl_context_stack.empty()) {
    span.trace_id = tl_context_stack.back().trace_id;
    span.parent_id = tl_context_stack.back().span_id;
  } else {
    span.trace_id =
        "trace-" +
        std::to_string(next_trace_.fetch_add(1, std::memory_order_relaxed));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  finished_.push_back(std::move(span));
}

TraceContext Tracer::current() {
  if (tl_context_stack.empty()) return TraceContext{};
  return tl_context_stack.back();
}

std::vector<Span> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return finished_;
}

std::vector<Span> Tracer::trace(const std::string& trace_id) const {
  std::vector<Span> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Span& s : finished_) {
    if (s.trace_id == trace_id) out.push_back(s);
  }
  return out;
}

std::vector<Span> Tracer::extract_trace(const std::string& trace_id) {
  std::vector<Span> out;
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t keep = 0;
  for (std::size_t i = 0; i < finished_.size(); ++i) {
    if (finished_[i].trace_id == trace_id) {
      out.push_back(std::move(finished_[i]));
    } else {
      if (keep != i) finished_[keep] = std::move(finished_[i]);
      ++keep;
    }
  }
  finished_.resize(keep);
  return out;
}

void Tracer::set_root_sink(RootSink sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  root_sink_ = std::move(sink);
  root_sink_armed_.store(static_cast<bool>(root_sink_),
                         std::memory_order_relaxed);
}

std::vector<std::string> Tracer::trace_ids() const {
  std::vector<std::string> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Span& s : finished_) {
    bool seen = false;
    for (const std::string& id : out) {
      if (id == s.trace_id) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(s.trace_id);
  }
  return out;
}

std::size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return finished_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  finished_.clear();
}

bool Tracer::write_jsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Span& s : finished_) out << s.to_json() << "\n";
  return static_cast<bool>(out);
}

ContextGuard::ContextGuard(const TraceContext& ctx) {
  if (!ctx.valid() || !tracer_armed()) return;
  tl_context_stack.push_back(ctx);
  restored_ = true;
}

ContextGuard::~ContextGuard() {
  if (restored_ && !tl_context_stack.empty()) tl_context_stack.pop_back();
}

std::map<std::uint64_t, std::vector<const Span*>> span_children(
    const std::vector<Span>& spans) {
  std::map<std::uint64_t, std::vector<const Span*>> index;
  for (const Span& s : spans) index[s.parent_id].push_back(&s);
  return index;
}

const Span* find_root(const std::vector<Span>& trace_spans) {
  for (const Span& s : trace_spans) {
    if (s.parent_id == 0) return &s;
  }
  return nullptr;
}

}  // namespace vmp::obs
