#include "core/ppp.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vmp::core {

using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

/// Match-kind counters (DESIGN.md §8): each hardware-passing candidate is
/// classified by the first DAG test it fails; plan outcomes feed the
/// warehouse hit ratio.
struct PppMetrics {
  obs::Counter* match_hit;
  obs::Counter* subset_fail;
  obs::Counter* prefix_fail;
  obs::Counter* order_fail;
  obs::Counter* plan_hit;
  obs::Counter* plan_miss;
  obs::Timer* plan_seconds;

  static PppMetrics& get() {
    static PppMetrics m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::instance();
      return PppMetrics{r.counter("ppp.match_hit.count"),
                        r.counter("ppp.match_subset_fail.count"),
                        r.counter("ppp.match_prefix_fail.count"),
                        r.counter("ppp.match_order_fail.count"),
                        r.counter("ppp.plan_hit.count"),
                        r.counter("ppp.plan_miss.count"),
                        r.timer("ppp.plan.seconds")};
    }();
    return m;
  }
};

}  // namespace

Result<ProductionPlan> ProductionProcessPlanner::plan(
    const CreateRequest& request) const {
  PppMetrics& metrics = PppMetrics::get();
  obs::ScopedSpan span("ppp.match", "ppp", request.request_id);
  const auto start = std::chrono::steady_clock::now();
  const auto record_elapsed = [&] {
    metrics.plan_seconds->record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  };

  const std::string backend =
      request.backend.empty() ? "vmware-gsx" : request.backend;

  // Digest the request's action multiset once.  A degenerate request DAG
  // with duplicate signatures defeats the digests (the Subset test rejects
  // repeats the mask cannot see), so fall back to an all-ones mask — every
  // candidate passes the prune and correctness rests on the full tests.
  std::vector<std::string> request_signatures;
  request_signatures.reserve(request.config.size());
  for (const std::string& id : request.config.node_ids()) {
    request_signatures.push_back(request.config.action(id)->signature());
  }
  std::uint64_t request_mask = warehouse::action_mask(request_signatures);
  std::uint64_t request_fingerprint =
      warehouse::action_fingerprint(request_signatures);
  bool digests_valid = request.config.signature_index().ok();
  if (!digests_valid) request_mask = ~0ull;

  // Hardware filter first (memory / disk / OS, counted for diagnostics),
  // then the warehouse's precomputed action-mask prune, then DAG matching.
  warehouse::CandidateSet scan = warehouse_->match_candidates(
      backend,
      [&request](const warehouse::GoldenImage& image) {
        return request.hardware.satisfied_by(image.spec.os,
                                             image.spec.memory_bytes,
                                             image.spec.disk.capacity_bytes);
      },
      request_mask);
  std::vector<warehouse::CandidateView>& candidates = scan.candidates;
  // A mask-pruned candidate is a proven Subset failure; classify it like
  // one so the match-kind counters still cover every hardware candidate.
  metrics.subset_fail->add(scan.mask_rejected);
  if (scan.hardware_candidates == 0) {
    metrics.plan_miss->add();
    record_elapsed();
    span.set_status(util::error_code_name(ErrorCode::kNoMatchingImage));
    return Result<ProductionPlan>(Error(
        ErrorCode::kNoMatchingImage,
        "no golden machine passes the hardware filter (backend=" + backend +
            ", os=" + request.hardware.os + ", memory=" +
            std::to_string(request.hardware.memory_bytes) + ")"));
  }

  // One evaluation per candidate yields both the ranking and the
  // match-kind classification (subset / prefix / partial-order / hit).
  //
  // Candidates whose performed-multiset fingerprint equals the request's
  // are probed first: a FULL match (history covers every request node)
  // implies multiset equality, so only those can fully match, and the first
  // one found — id order within each pass — is exactly the candidate the
  // stable sort below would rank first.  Finding one ends the scan early
  // with nothing left to configure.
  struct Scored {
    std::size_t index;
    dag::MatchEvaluation eval;
  };
  std::vector<Scored> matching;
  std::vector<std::size_t> probe_order;
  probe_order.reserve(candidates.size());
  if (digests_valid) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].fingerprint == request_fingerprint)
        probe_order.push_back(i);
    }
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].fingerprint != request_fingerprint)
        probe_order.push_back(i);
    }
  } else {
    for (std::size_t i = 0; i < candidates.size(); ++i) probe_order.push_back(i);
  }
  const std::size_t total_nodes = request.config.size();
  bool full_match = false;
  for (const std::size_t i : probe_order) {
    auto eval = dag::evaluate_match(request.config, candidates[i].performed);
    if (!eval.ok()) {
      record_elapsed();
      span.set_status(util::error_code_name(eval.error().code()));
      return eval.propagate<ProductionPlan>();
    }
    if (eval.value().matches()) {
      metrics.match_hit->add();
      const bool full = eval.value().satisfied_nodes.size() == total_nodes;
      matching.push_back(Scored{i, std::move(eval.value())});
      if (full && digests_valid) {
        full_match = true;
        break;  // nothing can rank higher; skip the remaining evaluations
      }
    } else if (!eval.value().subset_ok) {
      metrics.subset_fail->add();
    } else if (!eval.value().prefix_ok) {
      metrics.prefix_fail->add();
    } else {
      metrics.order_fail->add();
    }
  }
  if (matching.empty()) {
    metrics.plan_miss->add();
    record_elapsed();
    span.set_status(util::error_code_name(ErrorCode::kNoMatchingImage));
    return Result<ProductionPlan>(Error(
        ErrorCode::kNoMatchingImage,
        "no golden machine passes the DAG matching tests (" +
            std::to_string(scan.hardware_candidates) +
            " hardware candidates)"));
  }

  // Most satisfied actions first (fewest remaining), stable on ties — the
  // same order dag::rank_matches produces.  The probe order interleaved
  // fingerprint-equal candidates ahead of the rest, so re-sorting by index
  // first restores id order among equally-satisfied candidates.
  Scored* best = nullptr;
  if (full_match) {
    best = &matching.back();
  } else {
    std::stable_sort(matching.begin(), matching.end(),
                     [](const Scored& a, const Scored& b) {
                       return a.index < b.index;
                     });
    std::stable_sort(matching.begin(), matching.end(),
                     [](const Scored& a, const Scored& b) {
                       return a.eval.satisfied_nodes.size() >
                              b.eval.satisfied_nodes.size();
                     });
    best = &matching.front();
  }
  // The scan returned lightweight views; fetch the winner in full.  The
  // window between scan and fetch is real: a concurrent eviction can pull
  // the chosen image out from under the plan, in which case the miss
  // propagates (the shop fails over, exactly as for a mid-clone eviction).
  auto golden = warehouse_->lookup(candidates[best->index].id);
  if (!golden.ok()) {
    metrics.plan_miss->add();
    record_elapsed();
    span.set_status(util::error_code_name(ErrorCode::kNoMatchingImage));
    return Result<ProductionPlan>(
        Error(ErrorCode::kNoMatchingImage,
              "golden machine '" + candidates[best->index].id +
                  "' vanished between scan and plan (evicted?)"));
  }
  ProductionPlan plan;
  plan.golden = std::move(golden).value();
  plan.satisfied_nodes = std::move(best->eval.satisfied_nodes);
  plan.remaining_plan = std::move(best->eval.remaining_plan);
  plan.hardware_candidates = scan.hardware_candidates;

  metrics.plan_hit->add();
  record_elapsed();
  return plan;
}

}  // namespace vmp::core
