// Experiment request generators and golden-fleet publishing helpers.
//
// These reproduce the paper's §4.2 setup programmatically: golden machines
// "configured as follows: Linux Mandrake 8.1 workstation with memory sizes
// of 32MB, 64MB and 256MB", checkpointed post-boot with the In-VIGO base
// prefix performed, plus the request sequences (128 requests for 32/64 MB,
// 40 for 256 MB).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/request.h"
#include "warehouse/warehouse.h"

namespace vmp::workload {

/// Publish the paper's golden machines into a warehouse.
/// Ids: "golden-<mem>mb" (e.g. "golden-32mb"); backend "vmware-gsx".
/// Each has a 2 GB non-persistent disk in 16 spans and the In-VIGO A..C
/// prefix performed.  `memory_mbs` defaults to {32, 64, 256}.
util::Status publish_paper_goldens(warehouse::Warehouse* warehouse,
                                   const std::vector<std::uint32_t>& memory_mbs = {
                                       32, 64, 256});

/// Publish a UML golden (powered-off COW file system, no checkpoint):
/// id "golden-uml-<mem>mb", backend "uml".
util::Status publish_uml_golden(warehouse::Warehouse* warehouse,
                                std::uint32_t memory_mb);

/// Generate `count` sequential In-VIGO workspace creation requests for
/// golden machines of `memory_mb`.  Requests differ in user/IP (request i
/// gets user "user<i>" and ip 10.d.x.y), all within `domain`.
std::vector<core::CreateRequest> workspace_requests(std::uint32_t memory_mb,
                                                    std::size_t count,
                                                    const std::string& domain,
                                                    const std::string& backend =
                                                        "vmware-gsx");

/// One workspace request (index `i`) — the building block of the above.
core::CreateRequest workspace_request(std::uint32_t memory_mb, std::size_t i,
                                      const std::string& domain,
                                      const std::string& backend = "vmware-gsx");

}  // namespace vmp::workload
