// Identifier generation for VMs, requests, and networks.
//
// The paper's VMShop assigns each created machine a unique VMID which the
// client later uses for query/collect.  IdGenerator produces readable,
// prefixed, process-unique identifiers ("vm-0001", "req-0042"); no global
// state so tests can reset numbering per fixture.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace vmp::util {

class IdGenerator {
 public:
  explicit IdGenerator(std::string prefix, int width = 4)
      : prefix_(std::move(prefix)), width_(width) {}

  /// Thread-safe: "vm-0001", "vm-0002", ...
  std::string next();

  /// Number of ids handed out so far.
  std::uint64_t issued() const { return counter_.load(); }

 private:
  std::string prefix_;
  int width_;
  std::atomic<std::uint64_t> counter_{0};
};

}  // namespace vmp::util
