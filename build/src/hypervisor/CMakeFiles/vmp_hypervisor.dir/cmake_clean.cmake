file(REMOVE_RECURSE
  "CMakeFiles/vmp_hypervisor.dir/gsx.cpp.o"
  "CMakeFiles/vmp_hypervisor.dir/gsx.cpp.o.d"
  "CMakeFiles/vmp_hypervisor.dir/guest.cpp.o"
  "CMakeFiles/vmp_hypervisor.dir/guest.cpp.o.d"
  "CMakeFiles/vmp_hypervisor.dir/hypervisor.cpp.o"
  "CMakeFiles/vmp_hypervisor.dir/hypervisor.cpp.o.d"
  "CMakeFiles/vmp_hypervisor.dir/uml.cpp.o"
  "CMakeFiles/vmp_hypervisor.dir/uml.cpp.o.d"
  "CMakeFiles/vmp_hypervisor.dir/xen.cpp.o"
  "CMakeFiles/vmp_hypervisor.dir/xen.cpp.o.d"
  "libvmp_hypervisor.a"
  "libvmp_hypervisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_hypervisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
