// Hypervisor control interface (the "Production Line" substrate).
//
// Paper, Section 2: "while different VM technologies present different
// interfaces for their configuration and control, core mechanisms on top of
// which middleware services can be layered are identifiable.  First, VM
// environments can be encapsulated as data ... Second, instantiation can be
// implemented by a control process."
//
// Hypervisor captures exactly those two mechanisms: state-as-files (clone,
// destroy) and a control process (start/suspend/stop, virtual CD-ROM
// attach, guest script execution).  Two backends implement it:
//   * GsxHypervisor — "classic" hosted VMM: clones resume from a suspended
//     memory checkpoint; non-persistent disks share golden spans via links.
//   * UmlHypervisor — user-mode-Linux style: clones boot from scratch on a
//     copy-on-write file system; no memory state exists.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "hypervisor/guest.h"
#include "storage/artifact_store.h"
#include "storage/clone_ops.h"
#include "storage/image_layout.h"
#include "util/error.h"

namespace vmp::hv {

enum class PowerState { kStopped, kSuspended, kRunning, kDestroyed };
const char* power_state_name(PowerState state) noexcept;

/// One hosted VM instance.
struct VmInstance {
  std::string id;
  storage::ImageLayout layout;  // its clone directory
  storage::MachineSpec spec;
  PowerState power = PowerState::kStopped;
  GuestState guest;
  /// Paths (store-relative) of connected virtual CD-ROM ISOs, attach order.
  std::vector<std::string> connected_isos;
  /// Accounting from the clone that created this instance.
  storage::CloneReport clone_report;
  /// Golden image this instance was cloned from ("" when unknown, e.g. a
  /// test-built instance).  While non-empty AND a lease hook is installed,
  /// this instance holds a lease on that image (released on destroy).
  std::string golden_id;
};

/// Description of a clone source (a golden image already on disk).
struct CloneSource {
  storage::ImageLayout layout;
  storage::MachineSpec spec;
  GuestState guest;  // guest state captured when the golden was published
  /// Warehouse id of the golden image ("" disables lease acquisition).
  std::string golden_id;
};

/// Lease protocol between the hypervisor and the warehouse lifecycle
/// manager (lifecycle/lifecycle.h implements it).  A linked clone's
/// non-persistent disks are symlinks into the golden image's directory, so
/// the base must outlive every clone: the hypervisor acquires a lease
/// before the clone I/O and releases it when the clone directory is gone.
/// Defined here (not in lifecycle/) so the hypervisor does not depend on
/// the warehouse stack.
class GoldenLeaseHook {
 public:
  virtual ~GoldenLeaseHook() = default;
  /// Fails when the image is unknown or already evicted — the clone must
  /// not proceed against a base that can vanish.
  virtual util::Status acquire(const std::string& golden_id) = 0;
  /// Releases one lease.  Must tolerate ids it never leased (noexcept:
  /// called from cleanup paths).
  virtual void release(const std::string& golden_id) noexcept = 0;
};

class Hypervisor {
 public:
  explicit Hypervisor(storage::ArtifactStore* store) : store_(store) {}
  virtual ~Hypervisor() = default;

  Hypervisor(const Hypervisor&) = delete;
  Hypervisor& operator=(const Hypervisor&) = delete;

  /// Backend identifier ("vmware-gsx", "uml").
  virtual std::string type() const = 0;

  /// True when this backend resumes clones from a memory checkpoint
  /// (false: clones boot).  Drives both semantics and the timing model.
  virtual bool resumes_from_checkpoint() const = 0;

  /// Clone a golden image into `clone_dir` and register the instance.
  /// The instance starts Stopped (GSX: suspended-on-disk; UML: powered off).
  util::Result<std::string> clone_vm(const CloneSource& source,
                                     const std::string& clone_dir,
                                     const std::string& vm_id);

  /// Register an instance over an EXISTING clone directory (no cloning).
  /// Used by VM migration: the target plant copies a suspended clone
  /// directory into its clone area and adopts it.  `suspended` instances
  /// require a memory checkpoint on disk and resume on start.
  /// `golden_id` re-establishes lease protection for the adopted clone's
  /// golden base (a migrated linked clone still points its disk symlinks at
  /// the golden tree on the shared store); "" adopts without a lease.
  util::Result<std::string> import_vm(const std::string& clone_dir,
                                      const storage::MachineSpec& spec,
                                      const GuestState& guest,
                                      const std::string& vm_id,
                                      bool suspended,
                                      const std::string& golden_id = "");

  /// Start the instance: resume (GSX) or boot (UML).
  util::Status start_vm(const std::string& vm_id);

  /// Suspend a running instance back to a checkpoint (GSX only).
  virtual util::Status suspend_vm(const std::string& vm_id);

  /// Power off a running instance (non-persistent disk changes discarded:
  /// the redo log is truncated, mirroring VMware's end-of-session discard).
  util::Status power_off(const std::string& vm_id);

  /// Destroy: power off if needed and delete the clone directory.
  util::Status destroy_vm(const std::string& vm_id);

  /// Write `script` to a new ISO file in the clone dir and connect it as a
  /// virtual CD-ROM.  Returns the store-relative ISO path.
  util::Result<std::string> connect_script_iso(const std::string& vm_id,
                                               const std::string& script);

  /// The guest daemon mounts the most recently connected ISO and executes
  /// its script.  Instance must be Running.
  util::Result<GuestOutput> execute_connected_script(const std::string& vm_id);

  /// Direct script execution (used by tests and by golden-image authoring).
  util::Result<GuestOutput> execute_on_guest(const std::string& vm_id,
                                             const std::string& script);

  // -- Introspection --------------------------------------------------------
  /// Borrowed pointer into the instance table.  The table is node-based, so
  /// the pointer stays valid across registrations of OTHER VMs — but the
  /// pointed-to instance is only safe to read/mutate from the thread that
  /// owns the VM (its creating request, or its collector).  Cross-owner
  /// readers (monitors) must use snapshot_vm() instead.
  const VmInstance* find(const std::string& vm_id) const;
  /// Consistent copy of one instance taken under the hypervisor lock (safe
  /// from any thread, e.g. the VM monitor refreshing during creates).
  std::optional<VmInstance> snapshot_vm(const std::string& vm_id) const;
  std::vector<std::string> instance_ids() const;
  std::size_t instance_count() const;
  /// Non-destroyed instances (the plant's capacity unit).
  std::size_t active_instances() const;
  /// Sum of configured memory of non-destroyed instances (bytes).
  std::uint64_t resident_memory_bytes() const;

  // -- Fault injection ------------------------------------------------------
  /// Force the next start_vm on this id to fail (simulates VMM errors).
  void inject_start_failure(const std::string& vm_id);

  /// Install the golden-image lease provider (nullptr disables leasing —
  /// the default, so tests and plants without a lifecycle manager run
  /// unchanged).  Not synchronised: wire it up before serving requests.
  void set_lease_hook(GoldenLeaseHook* hook) { lease_hook_ = hook; }
  GoldenLeaseHook* lease_hook() const { return lease_hook_; }

  storage::ArtifactStore* store() { return store_; }

 protected:
  /// Backend-specific start semantics.
  virtual util::Status do_start(VmInstance* vm) = 0;
  /// Backend-specific clone validation (e.g. GSX requires a checkpoint).
  virtual util::Status validate_clone_source(const CloneSource& source) const = 0;
  /// Clone strategy used by this backend.
  virtual storage::CloneStrategy clone_strategy() const {
    return storage::CloneStrategy::kLinked;
  }

  /// Must be called with mutex_ held.
  util::Result<VmInstance*> find_mutable(const std::string& vm_id);

  storage::ArtifactStore* store_;
  /// Guards the instance table and every registered instance's fields.
  /// Public operations hold it for their whole body EXCEPT the
  /// size-proportional clone/destroy I/O, which runs unlocked against a
  /// directory no other request touches — that is what lets independent
  /// creations overlap on one plant (DESIGN.md §10).
  mutable std::mutex mutex_;
  std::map<std::string, VmInstance> instances_;
  std::map<std::string, bool> start_failures_;
  GuestAgent agent_;
  std::map<std::string, std::uint32_t> iso_counters_;
  /// Lease calls run OUTSIDE mutex_ (the hook takes the lifecycle lock,
  /// which in turn takes the warehouse lock — holding mutex_ across that
  /// chain would invert against destroy paths).
  GoldenLeaseHook* lease_hook_ = nullptr;
};

}  // namespace vmp::hv
