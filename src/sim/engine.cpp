#include "sim/engine.h"

#include <algorithm>
#include <limits>

namespace vmp::sim {

EventHandle Engine::schedule(SimTime delay, std::function<void()> fn,
                             std::string tag) {
  if (delay < 0.0) delay = 0.0;
  return schedule_at(now_ + delay, std::move(fn), std::move(tag));
}

EventHandle Engine::schedule_at(SimTime when, std::function<void()> fn,
                                std::string tag) {
  if (when < now_) when = now_;
  auto cancelled = std::make_shared<bool>(false);
  queue_.push_back(
      Event{when, next_seq_++, std::move(fn), cancelled, std::move(tag)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
  return EventHandle(std::move(cancelled));
}

Engine::Event Engine::pop_earliest() {
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  Event event = std::move(queue_.back());
  queue_.pop_back();
  return event;
}

void Engine::push_event(Event event) {
  queue_.push_back(std::move(event));
  std::push_heap(queue_.begin(), queue_.end(), Later{});
}

void Engine::fire(Event event) {
  now_ = event.when;
  *event.cancelled = true;  // mark fired so EventHandle::pending() is false
  event.fn();
}

bool Engine::step() {
  while (!queue_.empty()) {
    Event event = pop_earliest();
    if (*event.cancelled) continue;  // skip cancelled entries lazily

    if (scheduler_ == nullptr) {
      // Default path: earliest (when, seq) fires — today's stable FIFO
      // tie-break, with no tie gathering and no decision recording.
      fire(std::move(event));
      return true;
    }

    // A policy is installed: gather every non-cancelled event co-enabled at
    // this timestamp.  Popping the heap yields them in ascending seq order.
    std::vector<Event> ready;
    const SimTime when = event.when;
    ready.push_back(std::move(event));
    while (!queue_.empty() && queue_.front().when == when) {
      Event next = pop_earliest();
      if (*next.cancelled) continue;
      ready.push_back(std::move(next));
    }

    std::vector<SchedulePolicy::Choice> choices;
    choices.reserve(ready.size());
    for (const Event& e : ready) choices.push_back({e.seq, e.tag});
    std::size_t index = scheduler_->pick(when, choices);
    if (index >= ready.size()) index = 0;

    TieDecision decision;
    decision.when = when;
    decision.ready.reserve(ready.size());
    for (const Event& e : ready) decision.ready.push_back(e.seq);
    decision.chosen = ready[index].seq;
    decision_log_.push_back(std::move(decision));

    // Re-enqueue the losers (seqs unchanged, so the stable order among them
    // is preserved) BEFORE firing, so the fired callback can cancel them or
    // schedule new same-time events that join the next decision point.
    Event chosen = std::move(ready[index]);
    for (std::size_t i = 0; i < ready.size(); ++i) {
      if (i != index) push_event(std::move(ready[i]));
    }
    fire(std::move(chosen));
    return true;
  }
  return false;
}

std::size_t Engine::run() { return run_until(std::numeric_limits<SimTime>::infinity()); }

std::size_t Engine::run_until(SimTime deadline) {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    if (*queue_.front().cancelled) {
      pop_earliest();
      continue;
    }
    if (queue_.front().when > deadline) break;
    if (step()) ++fired;
  }
  if (now_ < deadline && deadline < std::numeric_limits<SimTime>::infinity()) {
    now_ = deadline;
  }
  return fired;
}

}  // namespace vmp::sim
