// Log-linear latency histogram with mergeable snapshots.
//
// util::Histogram reproduces the paper's fixed-bin figures; this histogram
// serves the fleet: every obs::Timer folds samples into one so any latency
// site answers p50/p90/p99/p999, and snapshots merge across plants so the
// shop can compute fleet-wide tails (DESIGN.md §9).  Design constraints:
//
//   * hot-path record is one index computation plus one relaxed atomic
//     increment (bench/obs_overhead holds it to <= 15 ns/op);
//   * buckets are log-linear — each power-of-two octave is split into
//     kSubBuckets linear sub-buckets — so the relative width of any bucket
//     is <= 1/kSubBuckets (~3%), keeping quantile error well under the 10%
//     target for any sample distribution;
//   * snapshots are plain count vectors: merging is element-wise addition,
//     which makes the merge associative and commutative (asserted by
//     property test), and encodes sparsely for classad transport.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace vmp::obs {

/// Point-in-time copy of a LogHistogram (also the wire/merge form).
struct HistogramSnapshot {
  /// Dense bucket counts (LogHistogram::kBucketCount entries) or empty
  /// when no sample was ever recorded.
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;

  bool empty() const { return total == 0; }

  /// Element-wise addition (associative, commutative).
  void merge(const HistogramSnapshot& other);

  /// Nearest-rank quantile, q in [0, 1]; returns the bucket midpoint of
  /// the bucket holding rank ceil(q * total).  0 when empty.
  double quantile(double q) const;

  /// Sparse text form "bucket:count,bucket:count,..." (empty string when
  /// empty); transported as a classad string attribute.
  std::string encode() const;
  static std::optional<HistogramSnapshot> decode(const std::string& text);

  bool operator==(const HistogramSnapshot& other) const;
};

/// Concurrent log-linear histogram.  Values are seconds; the covered range
/// [2^kMinExp, 2^kMaxExp) spans ~1 ns to ~12 days, with explicit underflow
/// and overflow buckets clamping the tails.
class LogHistogram {
 public:
  static constexpr int kMinExp = -30;           // 2^-30 s ~ 0.93 ns
  static constexpr int kMaxExp = 20;            // 2^20 s ~ 12 days
  static constexpr std::size_t kSubBuckets = 32;
  /// Underflow + octaves*sub + overflow.
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets + 2;

  LogHistogram() = default;
  LogHistogram(const LogHistogram&) = delete;
  LogHistogram& operator=(const LogHistogram&) = delete;

  /// Record one sample: bucket index + one relaxed fetch_add.
  void record(double v) {
    counts_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const;
  std::uint64_t total() const;
  void reset();

  // -- Bucket geometry (shared with HistogramSnapshot::quantile) ------------
  static std::size_t bucket_index(double v);
  static double bucket_lower(std::size_t bucket);
  static double bucket_upper(std::size_t bucket);
  static double bucket_mid(std::size_t bucket);

 private:
  std::atomic<std::uint64_t> counts_[kBucketCount] = {};
};

}  // namespace vmp::obs
