// The configuration DAG.
//
// A ConfigDag holds action nodes and precedence edges, plus the implicit
// START and FINISH nodes of the paper's Figure 3.  START/FINISH are managed
// by the class (every source node is an implicit successor of START, every
// sink an implicit predecessor of FINISH) so client code only names real
// actions.
//
// Beyond the container, this header exposes the graph algorithms the PPP
// depends on: cycle detection, deterministic topological sorting, ancestor
// closure, and per-node custom error-handling sub-graphs.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dag/action.h"
#include "util/error.h"

namespace vmp::dag {

class ConfigDag {
 public:
  ConfigDag() = default;
  ConfigDag(const ConfigDag& other);
  ConfigDag& operator=(const ConfigDag& other);
  ConfigDag(ConfigDag&&) = default;
  ConfigDag& operator=(ConfigDag&&) = default;

  // -- Construction ---------------------------------------------------------
  /// Add an action node.  Fails on duplicate id or empty id/operation.
  util::Status add_action(Action action);

  /// Add a precedence edge from->to.  Both nodes must exist; self-loops and
  /// duplicate edges are rejected.  (Cycles are detected by validate(), not
  /// here, so graphs can be built in any order.)
  util::Status add_edge(const std::string& from, const std::string& to);

  /// Attach a custom error-handling sub-graph to an action node (paper:
  /// "the client can also explicitly configure custom error-handling
  /// sub-graphs for action nodes").  The sub-graph must itself validate.
  util::Status set_error_subgraph(const std::string& action_id,
                                  ConfigDag subgraph);

  // -- Introspection --------------------------------------------------------
  std::size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  bool has_action(const std::string& id) const;
  const Action* action(const std::string& id) const;

  /// Node ids in insertion order.
  const std::vector<std::string>& node_ids() const { return order_; }

  const std::set<std::string>& successors(const std::string& id) const;
  const std::set<std::string>& predecessors(const std::string& id) const;
  std::size_t edge_count() const;

  const ConfigDag* error_subgraph(const std::string& action_id) const;

  // -- Algorithms -----------------------------------------------------------
  /// Full validation: ids unique (guaranteed by construction), acyclic.
  /// Returns the offending cycle in the error message when cyclic.
  util::Status validate() const;

  /// Deterministic topological order (Kahn's algorithm; ties broken by
  /// insertion order, so equal graphs built identically sort identically).
  /// Fails if the graph is cyclic.
  util::Result<std::vector<std::string>> topological_sort() const;

  /// All strict ancestors of `id` (every node with a path to `id`).
  std::set<std::string> ancestors(const std::string& id) const;

  /// All strict descendants of `id`.
  std::set<std::string> descendants(const std::string& id) const;

  /// True if the graph orders `before` strictly before `after`
  /// (i.e. `before` is an ancestor of `after`).
  bool orders_before(const std::string& before, const std::string& after) const;

  /// Signature -> node id map.  Fails if two nodes share a signature
  /// (matching requires signatures to identify actions uniquely).
  util::Result<std::map<std::string, std::string>> signature_index() const;

  /// Sum of nodes in this graph and all error sub-graphs (recursively).
  std::size_t total_nodes_with_subgraphs() const;

  bool operator==(const ConfigDag& other) const;

 private:
  struct Node {
    Action action;
    std::set<std::string> successors;
    std::set<std::string> predecessors;
    std::unique_ptr<ConfigDag> error_subgraph;
  };

  std::map<std::string, Node> nodes_;
  std::vector<std::string> order_;  // insertion order of node ids
};

/// Fluent builder for tests, examples, and the workload library:
///   auto dag = DagBuilder()
///       .guest("A", "install-os", {{"distro", "redhat-8.0"}})
///       .guest("B", "install-package", {{"package", "vnc-server"}})
///       .edge("A", "B")
///       .build();
class DagBuilder {
 public:
  DagBuilder& guest(const std::string& id, const std::string& operation,
                    std::map<std::string, std::string> params = {});
  DagBuilder& host(const std::string& id, const std::string& operation,
                   std::map<std::string, std::string> params = {});
  DagBuilder& action(Action a);
  DagBuilder& edge(const std::string& from, const std::string& to);
  /// Convenience: chain edges a->b->c->...
  DagBuilder& chain(const std::vector<std::string>& ids);
  DagBuilder& error_subgraph(const std::string& action_id, ConfigDag subgraph);

  /// Returns the built DAG; aborts the process on construction errors
  /// (builder misuse is a programming bug, not runtime input).
  ConfigDag build();

  /// Error-checking variant.
  util::Result<ConfigDag> try_build();

 private:
  ConfigDag dag_;
  util::Status first_error_;
};

}  // namespace vmp::dag
