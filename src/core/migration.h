// Cross-plant VM migration (paper §6: "migration of active VMs across
// plants" is named as future work).
//
// The mechanism composes the pieces the paper already has: suspend the VM
// to a checkpoint (its clone directory then IS its full state, exactly the
// encapsulation-as-data property of Section 2), copy that directory into
// the target plant's clone area over the shared warehouse store, resume
// there, and collect the source.  The client's domain keeps its host-only
// network semantics: the target allocates (or reuses) a network for the
// domain before the VM resumes.
#pragma once

#include "classad/classad.h"
#include "core/plant.h"
#include "util/error.h"

namespace vmp::core {

/// Move a VM from `source` to `target`.  On success the returned classad
/// describes the VM at its new plant (fresh VMID) and the source instance
/// has been collected.  On failure the VM is resumed at the source
/// (best-effort) and the error is returned.
util::Result<classad::ClassAd> migrate_vm(VmPlant* source, VmPlant* target,
                                          const std::string& vm_id);

}  // namespace vmp::core
