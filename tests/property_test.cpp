// Property-based tests: parameterized sweeps over randomized inputs
// checking structural invariants of the DAG algorithms, the matching tests,
// the simulation resources, and serialization round-trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/request.h"
#include "dag/dag_xml.h"
#include "dag/matching.h"
#include "workload/request_gen.h"
#include "sim/engine.h"
#include "sim/resources.h"
#include "util/random.h"
#include "workload/dag_library.h"

namespace vmp {
namespace {

// =====================================================================
// Random DAG properties, swept over seeds and shapes.
// =====================================================================

struct DagShape {
  std::uint64_t seed;
  std::size_t layers;
  std::size_t width;
  double density;
};

class RandomDagProperty : public ::testing::TestWithParam<DagShape> {
 protected:
  dag::ConfigDag make() const {
    const DagShape& s = GetParam();
    return workload::random_layered_dag(s.seed, s.layers, s.width, s.density);
  }
};

TEST_P(RandomDagProperty, ValidatesAndSortsConsistently) {
  dag::ConfigDag d = make();
  ASSERT_TRUE(d.validate().ok());
  auto sorted = d.topological_sort();
  ASSERT_TRUE(sorted.ok());
  const auto& order = sorted.value();
  ASSERT_EQ(order.size(), d.size());

  // Topological property: every edge points forward in the order.
  std::map<std::string, std::size_t> pos;
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const std::string& id : d.node_ids()) {
    for (const std::string& succ : d.successors(id)) {
      EXPECT_LT(pos.at(id), pos.at(succ));
    }
  }
}

TEST_P(RandomDagProperty, AncestorsAgreeWithEdges) {
  dag::ConfigDag d = make();
  for (const std::string& id : d.node_ids()) {
    const auto ancestors = d.ancestors(id);
    // Direct predecessors are ancestors.
    for (const std::string& pred : d.predecessors(id)) {
      EXPECT_TRUE(ancestors.count(pred));
    }
    // Ancestor-of-ancestor is an ancestor (transitivity).
    for (const std::string& a : ancestors) {
      for (const std::string& aa : d.ancestors(a)) {
        EXPECT_TRUE(ancestors.count(aa));
      }
    }
    // Nothing is its own ancestor (acyclicity).
    EXPECT_FALSE(ancestors.count(id));
  }
}

TEST_P(RandomDagProperty, XmlRoundTripIsIdentity) {
  dag::ConfigDag d = make();
  auto parsed = dag::from_xml_string(dag::to_xml_string(d));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_TRUE(parsed.value() == d);
}

TEST_P(RandomDagProperty, EveryTopoPrefixPassesAllThreeTests) {
  // A history taken as a prefix of a valid topological order is by
  // construction subset-closed, prefix-closed, and order-consistent.
  dag::ConfigDag d = make();
  auto order = d.topological_sort().value();
  std::vector<std::string> history;
  for (std::size_t take = 0; take <= order.size(); ++take) {
    history.clear();
    for (std::size_t i = 0; i < take; ++i) {
      history.push_back(d.action(order[i])->signature());
    }
    auto eval = dag::evaluate_match(d, history);
    ASSERT_TRUE(eval.ok());
    EXPECT_TRUE(eval.value().matches())
        << "prefix of length " << take << ": "
        << eval.value().failure_reason;
    EXPECT_EQ(eval.value().satisfied_nodes.size(), take);
    EXPECT_EQ(eval.value().remaining_plan.size(), order.size() - take);
  }
}

TEST_P(RandomDagProperty, MatchedPlanIsAValidCompletion) {
  // For a random downward-closed subset (not necessarily a topo prefix),
  // the remaining plan must respect all edges relative to the full graph.
  dag::ConfigDag d = make();
  util::SplitMix64 rng(GetParam().seed ^ 0xabcdef);

  // Build a random downward-closed set by including each node only if all
  // its predecessors are included.
  const auto topo_order = d.topological_sort().value();
  std::set<std::string> closed;
  for (const std::string& id : topo_order) {
    bool all_preds = true;
    for (const std::string& p : d.predecessors(id)) {
      if (!closed.count(p)) all_preds = false;
    }
    if (all_preds && rng.bernoulli(0.6)) closed.insert(id);
  }
  // History: the closed set in topo order (a valid execution).
  std::vector<std::string> history;
  for (const std::string& id : topo_order) {
    if (closed.count(id)) history.push_back(d.action(id)->signature());
  }

  auto eval = dag::evaluate_match(d, history);
  ASSERT_TRUE(eval.ok());
  ASSERT_TRUE(eval.value().matches()) << eval.value().failure_reason;

  // Concatenating history order + plan order yields a full linear
  // extension of the DAG.
  std::map<std::string, std::size_t> pos;
  std::size_t i = 0;
  for (const std::string& id : eval.value().satisfied_nodes) pos[id] = i++;
  for (const std::string& id : eval.value().remaining_plan) pos[id] = i++;
  ASSERT_EQ(pos.size(), d.size());
  for (const std::string& id : d.node_ids()) {
    for (const std::string& succ : d.successors(id)) {
      EXPECT_LT(pos.at(id), pos.at(succ));
    }
  }
}

TEST_P(RandomDagProperty, ViolatingHistoriesAreRejected) {
  dag::ConfigDag d = make();
  auto order = d.topological_sort().value();

  // Find a node with at least one ancestor; performing it alone must fail
  // the prefix test.
  for (const std::string& id : order) {
    if (!d.ancestors(id).empty()) {
      auto eval = dag::evaluate_match(d, {d.action(id)->signature()});
      ASSERT_TRUE(eval.ok());
      EXPECT_FALSE(eval.value().matches());
      EXPECT_FALSE(eval.value().prefix_ok);
      break;
    }
  }

  // An alien action must fail the subset test.
  auto eval = dag::evaluate_match(d, {"alien-op{x=1}"});
  ASSERT_TRUE(eval.ok());
  EXPECT_FALSE(eval.value().subset_ok);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandomDagProperty,
    ::testing::Values(DagShape{1, 2, 2, 0.5}, DagShape{2, 3, 3, 0.4},
                      DagShape{3, 4, 4, 0.3}, DagShape{4, 5, 3, 0.6},
                      DagShape{5, 3, 6, 0.2}, DagShape{6, 6, 2, 0.7},
                      DagShape{7, 2, 8, 0.4}, DagShape{8, 8, 2, 0.3},
                      DagShape{9, 4, 5, 0.5}, DagShape{10, 5, 5, 0.25}));

// =====================================================================
// Ranking properties.
// =====================================================================

class RankingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RankingProperty, RankedMatchesAreSortedAndConsistent) {
  dag::ConfigDag d = workload::random_layered_dag(GetParam(), 4, 3, 0.4);
  auto order = d.topological_sort().value();

  // Candidate images: topo prefixes of various lengths + one broken.
  std::vector<std::vector<std::string>> images;
  for (std::size_t take = 0; take <= order.size(); take += 2) {
    std::vector<std::string> history;
    for (std::size_t i = 0; i < take; ++i) {
      history.push_back(d.action(order[i])->signature());
    }
    images.push_back(history);
  }
  images.push_back({"alien-op{}"});

  auto ranked = dag::rank_matches(d, images);
  ASSERT_TRUE(ranked.ok());
  // The alien image must be absent; all others present.
  EXPECT_EQ(ranked.value().size(), images.size() - 1);
  // Sorted by satisfied_count descending; satisfied+remaining == |dag|.
  for (std::size_t i = 0; i < ranked.value().size(); ++i) {
    if (i > 0) {
      EXPECT_GE(ranked.value()[i - 1].satisfied_count,
                ranked.value()[i].satisfied_count);
    }
    EXPECT_EQ(ranked.value()[i].satisfied_count +
                  ranked.value()[i].remaining_count,
              d.size());
  }
  // The best match is the longest prefix.
  EXPECT_EQ(ranked.value().front().satisfied_count,
            images[images.size() - 2].size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankingProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// =====================================================================
// Simulation resource conservation properties.
// =====================================================================

class BandwidthProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BandwidthProperty, WorkConservationAndOrdering) {
  // N random transfers: total transferred equals total offered, and the
  // pipe is never idle while work remains -> makespan == total/capacity
  // when all jobs start at t=0.
  util::SplitMix64 rng(GetParam());
  sim::Engine engine;
  const double capacity = 8.0;
  sim::SharedBandwidth pipe(&engine, capacity);

  double total = 0.0;
  std::size_t completions = 0;
  const std::size_t n = 2 + rng.next_below(10);
  for (std::size_t i = 0; i < n; ++i) {
    const double units = 1.0 + rng.uniform(0.0, 100.0);
    total += units;
    pipe.start(units, [&] { ++completions; });
  }
  engine.run();
  EXPECT_EQ(completions, n);
  EXPECT_NEAR(pipe.total_transferred(), total, 1e-6);
  EXPECT_NEAR(engine.now(), total / capacity, 1e-6);
}

TEST_P(BandwidthProperty, StaggeredArrivalsStillConserveWork) {
  util::SplitMix64 rng(GetParam() ^ 0x777);
  sim::Engine engine;
  sim::SharedBandwidth pipe(&engine, 5.0);
  double total = 0.0;
  std::size_t completions = 0;
  const std::size_t n = 3 + rng.next_below(8);
  for (std::size_t i = 0; i < n; ++i) {
    const double units = 1.0 + rng.uniform(0.0, 50.0);
    const double arrival = rng.uniform(0.0, 10.0);
    total += units;
    engine.schedule(arrival, [&pipe, units, &completions] {
      pipe.start(units, [&completions] { ++completions; });
    });
  }
  engine.run();
  EXPECT_EQ(completions, n);
  EXPECT_NEAR(pipe.total_transferred(), total, 1e-6);
  // Makespan is at least the lower bound (work/capacity).
  EXPECT_GE(engine.now() + 1e-9, total / 5.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BandwidthProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// =====================================================================
// In-VIGO workspace DAG sweep: every (memory, request-index) combination
// builds a valid request whose XML round-trips.
// =====================================================================

class WorkspaceSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::size_t>> {
};

TEST_P(WorkspaceSweep, RequestsAreValidAndRoundTrip) {
  const auto [mem, index] = GetParam();
  core::CreateRequest r = workload::workspace_request(mem, index, "ufl.edu");
  ASSERT_TRUE(r.validate().ok());
  auto parsed = core::CreateRequest::from_xml_string(r.to_xml_string());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_TRUE(parsed.value().config == r.config);
  EXPECT_EQ(parsed.value().hardware.memory_bytes, r.hardware.memory_bytes);

  // Each request matches the golden prefix regardless of parameters.
  auto eval =
      dag::evaluate_match(r.config, workload::invigo_golden_history());
  ASSERT_TRUE(eval.ok());
  EXPECT_TRUE(eval.value().matches());
}

INSTANTIATE_TEST_SUITE_P(
    MemAndIndex, WorkspaceSweep,
    ::testing::Combine(::testing::Values(32u, 64u, 256u),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{17}, std::size_t{127},
                                         std::size_t{300})));

}  // namespace
}  // namespace vmp
