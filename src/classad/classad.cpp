#include "classad/classad.h"

#include <algorithm>

#include "util/strings.h"
#include "xml/xml.h"

namespace vmp::classad {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

ClassAd::ClassAd(const ClassAd& other) { *this = other; }

ClassAd& ClassAd::operator=(const ClassAd& other) {
  if (this == &other) return *this;
  attrs_.clear();
  order_ = other.order_;
  for (const auto& [key, slot] : other.attrs_) {
    attrs_.emplace(key, Slot{slot.display_name, slot.expr->clone()});
  }
  return *this;
}

std::string ClassAd::fold(const std::string& name) {
  return util::to_lower(name);
}

void ClassAd::set(const std::string& name, ExprPtr expr) {
  const std::string key = fold(name);
  auto it = attrs_.find(key);
  if (it == attrs_.end()) {
    order_.push_back(key);
    attrs_.emplace(key, Slot{name, std::move(expr)});
  } else {
    it->second.display_name = name;
    it->second.expr = std::move(expr);
  }
}

void ClassAd::set_integer(const std::string& name, std::int64_t v) {
  set(name, std::make_unique<LiteralExpr>(Value::integer(v)));
}
void ClassAd::set_real(const std::string& name, double v) {
  set(name, std::make_unique<LiteralExpr>(Value::real(v)));
}
void ClassAd::set_string(const std::string& name, std::string v) {
  set(name, std::make_unique<LiteralExpr>(Value::string(std::move(v))));
}
void ClassAd::set_boolean(const std::string& name, bool v) {
  set(name, std::make_unique<LiteralExpr>(Value::boolean(v)));
}

Status ClassAd::set_expression(const std::string& name,
                               const std::string& expr_text) {
  auto expr = parse_expression(expr_text);
  if (!expr.ok()) return expr.error();
  set(name, std::move(expr).value());
  return Status();
}

bool ClassAd::erase(const std::string& name) {
  const std::string key = fold(name);
  auto it = attrs_.find(key);
  if (it == attrs_.end()) return false;
  attrs_.erase(it);
  order_.erase(std::find(order_.begin(), order_.end(), key));
  return true;
}

bool ClassAd::has(const std::string& name) const {
  return attrs_.count(fold(name)) != 0;
}

std::vector<std::string> ClassAd::names() const {
  std::vector<std::string> out;
  out.reserve(order_.size());
  for (const std::string& key : order_) {
    out.push_back(attrs_.at(key).display_name);
  }
  return out;
}

const Expr* ClassAd::lookup(const std::string& name) const {
  auto it = attrs_.find(fold(name));
  return it == attrs_.end() ? nullptr : it->second.expr.get();
}

Value ClassAd::evaluate(const std::string& name, const ClassAd* other) const {
  const Expr* expr = lookup(name);
  if (expr == nullptr) return Value::undefined();
  EvalContext ctx;
  ctx.self = this;
  ctx.other = other;
  // Mark the root attribute as in progress so `x = x + 1` is ERROR.
  ctx.in_progress.push_back(
      std::to_string(reinterpret_cast<std::uintptr_t>(this)) + "/" +
      fold(name));
  return expr->evaluate(ctx);
}

std::optional<std::int64_t> ClassAd::get_integer(const std::string& name) const {
  const Value v = evaluate(name);
  if (v.type() == ValueType::kInteger) return v.as_integer();
  return std::nullopt;
}

std::optional<double> ClassAd::get_number(const std::string& name) const {
  const Value v = evaluate(name);
  if (v.is_number()) return v.as_number();
  return std::nullopt;
}

std::optional<std::string> ClassAd::get_string(const std::string& name) const {
  const Value v = evaluate(name);
  if (v.type() == ValueType::kString) return v.as_string();
  return std::nullopt;
}

std::optional<bool> ClassAd::get_boolean(const std::string& name) const {
  const Value v = evaluate(name);
  if (v.type() == ValueType::kBoolean) return v.as_boolean();
  return std::nullopt;
}

std::string ClassAd::to_string() const {
  std::string out = "[ ";
  for (const std::string& key : order_) {
    const Slot& slot = attrs_.at(key);
    out += slot.display_name;
    out += " = ";
    out += slot.expr->to_string();
    out += "; ";
  }
  out += "]";
  return out;
}

void ClassAd::to_xml(xml::Element* parent) const {
  xml::Element& ad = parent->add_child("classad");
  for (const std::string& key : order_) {
    const Slot& slot = attrs_.at(key);
    xml::Element& attr = ad.add_child("attr");
    attr.set_attr("name", slot.display_name);
    attr.set_text(slot.expr->to_string());
  }
}

Result<ClassAd> ClassAd::from_xml(const xml::Element& element) {
  const xml::Element* ad_elem =
      element.name() == "classad" ? &element : element.child("classad");
  if (ad_elem == nullptr) {
    return Result<ClassAd>(
        Error(ErrorCode::kParseError, "classad: missing <classad> element"));
  }
  ClassAd ad;
  for (const xml::Element* attr : ad_elem->children_named("attr")) {
    if (!attr->has_attr("name")) {
      return Result<ClassAd>(
          Error(ErrorCode::kParseError, "classad: <attr> without name"));
    }
    Status s = ad.set_expression(attr->attr("name"), attr->text());
    if (!s.ok()) return s.propagate<ClassAd>();
  }
  return ad;
}

bool ClassAd::operator==(const ClassAd& other) const {
  if (order_.size() != other.order_.size()) return false;
  for (const std::string& key : order_) {
    auto it = other.attrs_.find(key);
    if (it == other.attrs_.end()) return false;
    if (attrs_.at(key).expr->to_string() != it->second.expr->to_string()) {
      return false;
    }
  }
  return true;
}

}  // namespace vmp::classad
