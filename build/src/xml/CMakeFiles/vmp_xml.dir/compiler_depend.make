# Empty compiler generated dependencies file for vmp_xml.
# This may be replaced when dependencies are built.
