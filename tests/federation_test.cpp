// Federation tests (DESIGN.md §16): the ShardBroker's cached bid
// aggregation, headroom-aware routing, and graceful degradation — plus the
// pre-existing VmBroker seed paths (markup arithmetic, winning-member
// forwarding, VMID-map routing, shop failover) that previously had no
// dedicated suite, and the shop-side bid-collection robustness knobs.
#include <gtest/gtest.h>

#include <filesystem>

#include "cluster/deployment.h"
#include "core/broker.h"
#include "core/fleet.h"
#include "core/plant.h"
#include "core/shop.h"
#include "fault/fault.h"
#include "federation/federation.h"
#include "obs/export.h"
#include "workload/request_gen.h"

namespace vmp {
namespace {

class FederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("vmp-fed-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    store_ = std::make_unique<storage::ArtifactStore>(root_);
    warehouse_ =
        std::make_unique<warehouse::Warehouse>(store_.get(), "warehouse");
    ASSERT_TRUE(workload::publish_paper_goldens(warehouse_.get()).ok());
  }
  void TearDown() override {
    warehouse_.reset();
    store_.reset();
    std::filesystem::remove_all(root_);
  }

  std::unique_ptr<core::VmPlant> make_plant(const std::string& name) {
    core::PlantConfig pc;
    pc.name = name;
    return std::make_unique<core::VmPlant>(pc, store_.get(), warehouse_.get());
  }

  /// A hidden member plant: bus endpoint, no registry entry.
  std::unique_ptr<core::VmPlant> make_member(const std::string& name) {
    auto plant = make_plant(name);
    EXPECT_TRUE(plant->attach_to_bus(&bus_, nullptr).ok());
    return plant;
  }

  /// ShardBroker with a controllable clock.  Names must be unique across
  /// tests: scoped metrics live in the process-wide registry.
  std::unique_ptr<federation::ShardBroker> make_shard(
      federation::ShardBrokerConfig config) {
    auto broker = std::make_unique<federation::ShardBroker>(
        std::move(config), &bus_, &registry_);
    broker->set_clock([this] { return clock_s_; });
    EXPECT_TRUE(broker->attach_to_bus().ok());
    return broker;
  }

  std::filesystem::path root_;
  std::unique_ptr<storage::ArtifactStore> store_;
  std::unique_ptr<warehouse::Warehouse> warehouse_;
  net::MessageBus bus_;
  net::ServiceRegistry registry_;
  double clock_s_ = 0.0;
};

// -- dag_class_key ------------------------------------------------------------------

TEST_F(FederationTest, DagClassKeyGroupsByRequestShape) {
  const auto a = workload::workspace_request(64, 0, "ufl.edu");
  const auto b = workload::workspace_request(64, 7, "ufl.edu");  // other user
  const auto c = workload::workspace_request(32, 0, "ufl.edu");  // other size
  const auto d = workload::workspace_request(64, 0, "nwu.edu");  // other domain
  EXPECT_EQ(federation::dag_class_key(a), federation::dag_class_key(b));
  EXPECT_NE(federation::dag_class_key(a), federation::dag_class_key(c));
  EXPECT_NE(federation::dag_class_key(a), federation::dag_class_key(d));
}

// -- vmplant.estimate_batch (plant side) --------------------------------------------

TEST_F(FederationTest, PlantPricesBatchOfClasses) {
  auto plant = make_member("batch-plant");
  net::Message m =
      net::Message::request("vmplant.estimate_batch", "t", "batch-plant", "c");
  for (std::uint32_t mb : {32u, 64u}) {
    const auto request = workload::workspace_request(mb, 0, "d");
    xml::Element& cls = m.body().add_child("class");
    cls.set_attr("key", federation::dag_class_key(request));
    request.to_xml(&cls);
  }
  auto response = net::call_expecting_success(&bus_, m);
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  const xml::Element* bids = response.value().body().child("bids");
  ASSERT_NE(bids, nullptr);
  EXPECT_EQ(bids->children_named("bid").size(), 2u);
  for (const xml::Element* bid : bids->children_named("bid")) {
    EXPECT_EQ(bid->attr("plant"), "batch-plant");
    EXPECT_GT(bid->attr_double("cost", -1.0), 0.0);
  }
}

TEST_F(FederationTest, BatchSkipsMalformedClassesInsteadOfFaulting) {
  auto plant = make_member("partial-plant");
  net::Message m = net::Message::request("vmplant.estimate_batch", "t",
                                         "partial-plant", "c");
  const auto good = workload::workspace_request(64, 0, "d");
  xml::Element& ok_cls = m.body().add_child("class");
  ok_cls.set_attr("key", federation::dag_class_key(good));
  good.to_xml(&ok_cls);
  // A class with no <create-request>: absent from the reply, not fatal.
  m.body().add_child("class").set_attr("key", "broken");
  auto response = net::call_expecting_success(&bus_, m);
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().body().child("bids")->children_named("bid").size(),
            1u);
}

// -- Cached bid aggregation ---------------------------------------------------------

TEST_F(FederationTest, SecondEstimateServedFromCacheWithZeroDownstreamMessages) {
  auto m0 = make_member("cacheA0");
  auto m1 = make_member("cacheA1");
  auto shard = make_shard({.name = "fedshardA", .bid_ttl_s = 30.0});
  shard->add_member("cacheA0");
  shard->add_member("cacheA1");

  core::VmShop shop(core::ShopConfig{.name = "shopA"}, &bus_, &registry_);
  ASSERT_TRUE(shop.attach_to_bus().ok());
  const auto request = workload::workspace_request(64, 0, "d");

  // Miss: synchronous single-class refresh (one batch per member).
  ASSERT_EQ(shop.collect_bids(request).size(), 1u);
  EXPECT_EQ(shard->bids_refreshed(), 1u);
  EXPECT_EQ(shard->bids_cached_served(), 0u);

  // Hit: the estimate is answered from the cache — exactly ONE bus call
  // total (shop -> broker), nothing downstream.
  const std::uint64_t calls_before = bus_.calls_total();
  ASSERT_EQ(shop.collect_bids(request).size(), 1u);
  EXPECT_EQ(bus_.calls_total() - calls_before, 1u);
  EXPECT_EQ(shard->bids_cached_served(), 1u);
  EXPECT_EQ(shard->bids_refreshed(), 1u);

  const auto entry =
      shard->cached(federation::dag_class_key(request));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->member_bids.size(), 2u);
  EXPECT_EQ(entry->served, 1u);
}

TEST_F(FederationTest, FederationRunsOverBinaryWireFormat) {
  // The refresh batches and cached-bid replies are ordinary bus messages,
  // so the binary codec (net/codec.h) carries them unchanged.
  net::MessageBus binbus(net::BusConfig{net::WireFormat::kBinary, 7});
  net::ServiceRegistry registry;
  auto plant = make_plant("binM0");
  ASSERT_TRUE(plant->attach_to_bus(&binbus, nullptr).ok());
  federation::ShardBroker shard({.name = "fedshardBin"}, &binbus, &registry);
  shard.add_member("binM0");
  ASSERT_TRUE(shard.attach_to_bus().ok());
  core::VmShop shop(core::ShopConfig{.name = "shopBin"}, &binbus, &registry);
  ASSERT_TRUE(shop.attach_to_bus().ok());

  const auto request = workload::workspace_request(64, 0, "d");
  auto bids = shop.collect_bids(request);  // miss -> binary batch refresh
  ASSERT_EQ(bids.size(), 1u);
  EXPECT_EQ(bids[0].plant_address, "fedshardBin");
  auto ad = shop.create(request);
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  EXPECT_EQ(ad.value().get_string(core::attrs::kPlant).value(), "binM0");
  EXPECT_EQ(shard.bids_refreshed(), 1u);
}

TEST_F(FederationTest, StaleEntryRefreshesAfterTtl) {
  auto m0 = make_member("ttlB0");
  auto shard = make_shard({.name = "fedshardB", .bid_ttl_s = 10.0});
  shard->add_member("ttlB0");

  core::VmShop shop(core::ShopConfig{.name = "shopB"}, &bus_, &registry_);
  ASSERT_TRUE(shop.attach_to_bus().ok());
  const auto request = workload::workspace_request(64, 0, "d");

  ASSERT_EQ(shop.collect_bids(request).size(), 1u);
  clock_s_ = 5.0;  // within TTL: cached
  ASSERT_EQ(shop.collect_bids(request).size(), 1u);
  EXPECT_EQ(shard->bids_cached_served(), 1u);
  clock_s_ = 11.0;  // past TTL: stale, re-priced
  ASSERT_EQ(shop.collect_bids(request).size(), 1u);
  EXPECT_EQ(shard->bids_refreshed(), 2u);
}

TEST_F(FederationTest, RefreshAllSendsOneBatchMessagePerMember) {
  auto m0 = make_member("rfC0");
  auto m1 = make_member("rfC1");
  auto m2 = make_member("rfC2");
  auto shard = make_shard({.name = "fedshardC", .bid_ttl_s = 5.0});
  for (const char* m : {"rfC0", "rfC1", "rfC2"}) shard->add_member(m);

  core::VmShop shop(core::ShopConfig{.name = "shopC"}, &bus_, &registry_);
  ASSERT_TRUE(shop.attach_to_bus().ok());
  // Prime two DAG-classes.
  ASSERT_EQ(shop.collect_bids(workload::workspace_request(32, 0, "d")).size(),
            1u);
  ASSERT_EQ(shop.collect_bids(workload::workspace_request(64, 0, "d")).size(),
            1u);
  EXPECT_EQ(shard->bid_cache_size(), 2u);

  clock_s_ = 100.0;  // everything stale
  const std::uint64_t calls_before = bus_.calls_total();
  EXPECT_EQ(shard->refresh_all(), 2u);  // both classes fresh again
  // O(children): one vmplant.estimate_batch per member covers ALL classes.
  EXPECT_EQ(bus_.calls_total() - calls_before, 3u);

  // Both entries now serve from cache at the new clock.
  const std::uint64_t cached_before = shard->bids_cached_served();
  ASSERT_EQ(shop.collect_bids(workload::workspace_request(32, 1, "d")).size(),
            1u);
  EXPECT_EQ(shard->bids_cached_served(), cached_before + 1);
}

TEST_F(FederationTest, AggregateBidIsCheapestMemberPlusMarkup) {
  auto m0 = make_member("mkD0");
  auto m1 = make_member("mkD1");
  // Warm mkD0 with a VM in the client's domain: under the network-compute
  // cost model, domain affinity makes it strictly cheaper than cold mkD1.
  ASSERT_TRUE(m0->create(workload::workspace_request(256, 0, "d")).ok());

  const auto request = workload::workspace_request(64, 0, "d");
  const double cheapest = m0->estimate(request).value();
  ASSERT_LT(cheapest, m1->estimate(request).value());

  auto shard = make_shard({.name = "fedshardD", .bid_markup = 3.5});
  shard->add_member("mkD0");
  shard->add_member("mkD1");
  core::VmShop shop(core::ShopConfig{.name = "shopD"}, &bus_, &registry_);
  ASSERT_TRUE(shop.attach_to_bus().ok());
  auto bids = shop.collect_bids(request);
  ASSERT_EQ(bids.size(), 1u);
  EXPECT_DOUBLE_EQ(bids[0].cost, cheapest + 3.5);
}

// -- Headroom-aware routing ---------------------------------------------------------

TEST_F(FederationTest, DrainedHeadroomScalesBidsUp) {
  auto m0 = make_member("hrE0");
  federation::ShardBrokerConfig config;
  config.name = "fedshardE";
  config.headroom_weight = 1.0;
  config.subtree_budget_bytes = 1000;
  auto shard = make_shard(config);
  shard->add_member("hrE0");
  core::VmShop shop(core::ShopConfig{.name = "shopE"}, &bus_, &registry_);
  ASSERT_TRUE(shop.attach_to_bus().ok());
  const auto request = workload::workspace_request(64, 0, "d");

  std::int64_t headroom = 1000;  // full headroom: no pressure
  shard->set_headroom_provider([&headroom] { return headroom; });
  auto relaxed = shop.collect_bids(request);
  ASSERT_EQ(relaxed.size(), 1u);

  headroom = 0;  // budget exhausted: pressure 1.0 doubles the bid
  auto pressured = shop.collect_bids(request);
  ASSERT_EQ(pressured.size(), 1u);
  EXPECT_DOUBLE_EQ(pressured[0].cost, relaxed[0].cost * 2.0);
  EXPECT_EQ(shard->last_headroom_bytes(), 0);
}

TEST_F(FederationTest, HeadroomFromRollupReadsFleetMetricsAd) {
  obs::MetricsSnapshot snap;
  snap.gauges["fleet.lifecycle.headroom_bytes.gauge"] = 777;
  core::VmInformationSystem info;
  info.store(core::kObsFleetMetricsId,
             obs::metrics_ad(snap, util::FaultReport{}));
  auto headroom = federation::headroom_from_rollup(info);
  ASSERT_TRUE(headroom.has_value());
  EXPECT_EQ(*headroom, 777);
  core::VmInformationSystem empty;
  EXPECT_FALSE(federation::headroom_from_rollup(empty).has_value());
}

// -- Creation routing and degradation -----------------------------------------------

TEST_F(FederationTest, CreateQueryCollectRouteThroughShard) {
  auto m0 = make_member("rtF0");
  auto m1 = make_member("rtF1");
  auto shard = make_shard({.name = "fedshardF"});
  shard->add_member("rtF0");
  shard->add_member("rtF1");
  core::VmShop shop(core::ShopConfig{.name = "shopF"}, &bus_, &registry_);
  ASSERT_TRUE(shop.attach_to_bus().ok());

  auto ad = shop.create(workload::workspace_request(64, 0, "d"));
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  EXPECT_EQ(shard->creations_forwarded(), 1u);
  const std::string vm_id = ad.value().get_string(core::attrs::kVmId).value();

  auto queried = shop.query(vm_id);
  ASSERT_TRUE(queried.ok()) << queried.error().to_string();
  EXPECT_EQ(queried.value().get_string(core::attrs::kVmId).value(), vm_id);

  ASSERT_TRUE(shop.destroy(vm_id).ok());
  EXPECT_EQ(m0->active_vms() + m1->active_vms(), 0u);
}

TEST_F(FederationTest, StaleMisrouteFallsBackToNextMemberAndInvalidates) {
  auto m0 = make_member("fbG0");
  auto m1 = make_member("fbG1");
  auto shard = make_shard({.name = "fedshardG", .bid_ttl_s = 1000.0});
  shard->add_member("fbG0");
  shard->add_member("fbG1");
  core::VmShop shop(core::ShopConfig{.name = "shopG"}, &bus_, &registry_);
  ASSERT_TRUE(shop.attach_to_bus().ok());
  const auto request = workload::workspace_request(64, 0, "d");
  const std::string key = federation::dag_class_key(request);

  // Prime the cache, then kill the cheapest member: the cached entry now
  // misroutes.  The shard falls back within itself and drops the entry.
  ASSERT_EQ(shop.collect_bids(request).size(), 1u);
  const std::string cheapest = shard->cached(key)->member_bids.front().second;
  bus_.set_down(cheapest, true);

  auto ad = shop.create(request);
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  const std::string survivor = cheapest == "fbG0" ? "fbG1" : "fbG0";
  EXPECT_EQ(ad.value().get_string(core::attrs::kPlant).value(), survivor);
  // The misrouting entry was invalidated; the next estimate re-prices.
  EXPECT_FALSE(shard->cached(key).has_value());
}

TEST_F(FederationTest, DeadShardFaultsCreateAndShopFailsOverToSurvivor) {
  auto m0 = make_member("svH0");
  auto m1 = make_member("svH1");
  auto shard_a = make_shard({.name = "fedshardH0"});
  shard_a->add_member("svH0");
  auto shard_b = make_shard({.name = "fedshardH1"});
  shard_b->add_member("svH1");
  core::VmShop shop(core::ShopConfig{.name = "shopH"}, &bus_, &registry_);
  ASSERT_TRUE(shop.attach_to_bus().ok());
  const auto request = workload::workspace_request(64, 0, "d");

  // Prime both shards' caches, then kill shard A's only member: its cached
  // bid still wins ties sometimes, but its create faults — and the shop's
  // next-best-bid failover moves the create to shard B.
  ASSERT_EQ(shop.collect_bids(request).size(), 2u);
  bus_.set_down("svH0", true);
  auto ad = shop.create(request);
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  EXPECT_EQ(ad.value().get_string(core::attrs::kPlant).value(), "svH1");
  EXPECT_EQ(m1->active_vms(), 1u);
}

TEST_F(FederationTest, DeadBrokerDegradesToDirectBiddingAgainstSurvivors) {
  auto m0 = make_member("dgI0");
  auto m1 = make_member("dgI1");
  auto shard_a = make_shard({.name = "fedshardI0"});
  shard_a->add_member("dgI0");
  auto shard_b = make_shard({.name = "fedshardI1"});
  shard_b->add_member("dgI1");
  core::VmShop shop(core::ShopConfig{.name = "shopI"}, &bus_, &registry_);
  ASSERT_TRUE(shop.attach_to_bus().ok());
  const auto request = workload::workspace_request(64, 0, "d");
  ASSERT_EQ(shop.collect_bids(request).size(), 2u);

  // Broker process death: the whole subtree behind it goes dark.  Bidding
  // degrades to the surviving shard; creations keep succeeding.
  bus_.set_down("fedshardI0", true);
  auto bids = shop.collect_bids(request);
  ASSERT_EQ(bids.size(), 1u);
  EXPECT_EQ(bids[0].plant_address, "fedshardI1");
  EXPECT_EQ(shop.bids_skipped(), 1u);  // transport-class loss, not a decline
  auto ad = shop.create(request);
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  EXPECT_EQ(m1->active_vms(), 1u);
}

// -- Shop bid-collection robustness -------------------------------------------------

TEST_F(FederationTest, VanishedPlantIsSkippedNotFatal) {
  auto plant = make_plant("aliveJ");
  ASSERT_TRUE(plant->attach_to_bus(&bus_, &registry_).ok());
  // A record whose endpoint is gone: detached after the registry snapshot.
  net::ServiceRecord ghost;
  ghost.type = "vmplant";
  ghost.address = "ghostJ";
  registry_.publish(ghost);

  core::VmShop shop(core::ShopConfig{.name = "shopJ"}, &bus_, &registry_);
  ASSERT_TRUE(shop.attach_to_bus().ok());
  auto bids = shop.collect_bids(workload::workspace_request(64, 0, "d"));
  ASSERT_EQ(bids.size(), 1u);
  EXPECT_EQ(bids[0].plant_address, "aliveJ");
  EXPECT_EQ(shop.bids_skipped(), 1u);
}

TEST_F(FederationTest, BidTimeoutHookLosesOneBidOnly) {
  auto p0 = make_plant("slowK");
  auto p1 = make_plant("fastK");
  ASSERT_TRUE(p0->attach_to_bus(&bus_, &registry_).ok());
  ASSERT_TRUE(p1->attach_to_bus(&bus_, &registry_).ok());

  core::ShopConfig sc;
  sc.name = "shopK";
  sc.bid_timeout_s = 0.25;
  core::VmShop shop(sc, &bus_, &registry_);
  ASSERT_TRUE(shop.attach_to_bus().ok());

  auto plan = fault::FaultPlan::parse("shop.bid:target=slowK");
  ASSERT_TRUE(plan.ok());
  fault::ScopedFaultPlan armed(std::move(plan).value());
  auto bids = shop.collect_bids(workload::workspace_request(64, 0, "d"));
  ASSERT_EQ(bids.size(), 1u);
  EXPECT_EQ(bids[0].plant_address, "fastK");
  EXPECT_EQ(shop.bids_skipped(), 1u);
  EXPECT_EQ(fault::FaultRegistry::instance().fired(fault::points::kShopBid),
            1u);
}

// -- Fleet aggregation over brokers -------------------------------------------------

TEST_F(FederationTest, FleetSweepPublishesPerShardBrokerAds) {
  auto m0 = make_member("flL0");
  auto m1 = make_member("flL1");
  auto shard = make_shard({.name = "fedshardL"});
  shard->add_member("flL0");
  shard->add_member("flL1");
  core::VmShop shop(core::ShopConfig{.name = "shopL"}, &bus_, &registry_);
  ASSERT_TRUE(shop.attach_to_bus().ok());
  auto ad = shop.create(workload::workspace_request(64, 0, "d"));
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();

  core::VmInformationSystem info;
  core::FleetAggregator aggregator(core::FleetAggregatorConfig{}, &bus_,
                                   &registry_, &info);
  EXPECT_EQ(aggregator.sweep(), 1u);  // the broker answered, no public plants

  auto brokers = aggregator.broker_states();
  ASSERT_EQ(brokers.size(), 1u);
  EXPECT_EQ(brokers[0].broker, "fedshardL");
  EXPECT_EQ(brokers[0].members, 2);
  EXPECT_GE(brokers[0].creations_forwarded, 1u);
  EXPECT_GE(brokers[0].bids_refreshed, 1u);

  auto broker_ad = info.query(std::string(core::kObsBrokerPrefix) +
                              "fedshardL");
  ASSERT_TRUE(broker_ad.ok());
  EXPECT_EQ(broker_ad.value().get_string(core::fleet_attrs::kKind).value(),
            "broker");
  auto rollup = info.query(core::kObsFleetMetricsId);
  ASSERT_TRUE(rollup.ok());
  EXPECT_EQ(rollup.value().get_integer(core::fleet_attrs::kBrokerCount).value(),
            1);
}

// -- Pre-existing VmBroker seed paths -----------------------------------------------

class VmBrokerSeedTest : public FederationTest {
 protected:
  void SetUp() override {
    FederationTest::SetUp();
    member0_ = make_member("seedM0");
    member1_ = make_member("seedM1");
    broker_ = std::make_unique<core::VmBroker>(
        core::BrokerConfig{.name = "seedbroker", .bid_markup = 2.0}, &bus_,
        &registry_);
    broker_->add_member("seedM0");
    broker_->add_member("seedM1");
    ASSERT_TRUE(broker_->attach_to_bus().ok());
    shop_ = std::make_unique<core::VmShop>(
        core::ShopConfig{.name = "seedshop"}, &bus_, &registry_);
    ASSERT_TRUE(shop_->attach_to_bus().ok());
  }
  void TearDown() override {
    shop_.reset();
    broker_.reset();
    member0_.reset();
    member1_.reset();
    FederationTest::TearDown();
  }

  std::unique_ptr<core::VmPlant> member0_, member1_;
  std::unique_ptr<core::VmBroker> broker_;
  std::unique_ptr<core::VmShop> shop_;
};

TEST_F(VmBrokerSeedTest, MarkupArithmeticOnCheapestMember) {
  const auto request = workload::workspace_request(64, 0, "d");
  const double cheapest = std::min(member0_->estimate(request).value(),
                                   member1_->estimate(request).value());
  auto bids = shop_->collect_bids(request);
  ASSERT_EQ(bids.size(), 1u);
  EXPECT_EQ(bids[0].plant_address, "seedbroker");
  EXPECT_DOUBLE_EQ(bids[0].cost, cheapest + 2.0);
}

TEST_F(VmBrokerSeedTest, CreationForwardsToWinningMember) {
  // Domain affinity (network-compute cost model) makes member0 strictly
  // cheaper, so it wins the broker's internal auction.
  ASSERT_TRUE(member0_->create(workload::workspace_request(256, 0, "d")).ok());
  auto ad = shop_->create(workload::workspace_request(64, 0, "d"));
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  EXPECT_EQ(ad.value().get_string(core::attrs::kPlant).value(), "seedM0");
  EXPECT_EQ(broker_->creations_forwarded(), 1u);
}

TEST_F(VmBrokerSeedTest, QueryAndCollectRouteByVmidMap) {
  auto ad = shop_->create(workload::workspace_request(32, 0, "d"));
  ASSERT_TRUE(ad.ok());
  const std::string vm_id = ad.value().get_string(core::attrs::kVmId).value();
  auto queried = shop_->query(vm_id);
  ASSERT_TRUE(queried.ok()) << queried.error().to_string();
  EXPECT_EQ(queried.value().get_string(core::attrs::kVmId).value(), vm_id);
  ASSERT_TRUE(shop_->destroy(vm_id).ok());
  EXPECT_EQ(member0_->active_vms() + member1_->active_vms(), 0u);
  // The VMID map forgot the VM: a re-query faults kNotFound.
  EXPECT_FALSE(shop_->query(vm_id).ok());
}

TEST_F(VmBrokerSeedTest, ShopFailsOverWhenChosenMembersFailMidCreate) {
  // A public plant stands by as the shop's failover target.
  auto standby = make_plant("standbyN");
  ASSERT_TRUE(standby->attach_to_bus(&bus_, &registry_).ok());
  // Warm member0 so the broker's bid beats the standby's despite the
  // markup — the shop must genuinely pick the broker first.
  ASSERT_TRUE(member0_->create(workload::workspace_request(256, 0, "d")).ok());
  // Member creates fail mid-request (the VMM resume fault targets only
  // member-hosted vm ids): the broker bids fine, its chosen member then
  // faults the creation, and the shop fails over to its next-best bid.
  fault::ScopedFaultPlan scoped(
      fault::FaultPlan::parse("hypervisor.resume:target=seedM").value());
  auto ad = shop_->create(workload::workspace_request(64, 0, "d"));
  ASSERT_TRUE(ad.ok()) << ad.error().to_string();
  EXPECT_EQ(ad.value().get_string(core::attrs::kPlant).value(), "standbyN");
  EXPECT_GE(shop_->failovers(), 1u);
}

// -- Sharded SimulatedDeployment ----------------------------------------------------

TEST(FederationDeploymentTest, ShardedDeploymentHidesPlantsBehindBrokers) {
  cluster::DeploymentConfig config;
  config.plant_count = 4;
  config.federation_shards = 2;
  cluster::SimulatedDeployment deployment(config);
  ASSERT_TRUE(workload::publish_paper_goldens(&deployment.warehouse()).ok());
  ASSERT_EQ(deployment.broker_count(), 2u);
  EXPECT_EQ(deployment.broker(0).members().size(), 2u);
  // Only the brokers are discoverable.
  EXPECT_EQ(deployment.registry().discover("vmplant").size(), 2u);

  auto samples =
      deployment.run_sequence(workload::workspace_requests(64, 4, "ufl.edu"));
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(deployment.broker(0).creations_forwarded() +
                deployment.broker(1).creations_forwarded(),
            4u);
  EXPECT_GT(deployment.refresh_federation(), 0u);
}

TEST(FederationDeploymentTest, FlatDeploymentStaysBrokerless) {
  cluster::DeploymentConfig config;
  config.plant_count = 3;
  cluster::SimulatedDeployment deployment(config);
  EXPECT_EQ(deployment.broker_count(), 0u);
  EXPECT_EQ(deployment.registry().discover("vmplant").size(), 3u);
}

}  // namespace
}  // namespace vmp
