#include "util/random.h"

#include <cmath>
#include <numbers>

namespace vmp::util {

std::uint64_t SplitMix64::next_u64() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t SplitMix64::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling: draw until the value falls inside the largest
  // multiple of `bound` representable in 64 bits.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

double SplitMix64::next_double() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double SplitMix64::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double SplitMix64::normal(double mean, double stddev) {
  // Box-Muller; discard the second variate.
  double u1 = next_double();
  double u2 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

double SplitMix64::exponential(double mean) {
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return -mean * std::log(u);
}

double SplitMix64::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool SplitMix64::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::uint64_t derive_seed(std::uint64_t parent_seed, const std::string& name) {
  // FNV-1a over the name, then mixed with the parent through SplitMix64.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  SplitMix64 mixer(parent_seed ^ h);
  return mixer.next_u64();
}

}  // namespace vmp::util
