// User-mode-Linux-style backend.
//
// Paper, Section 4.1: "The main difference is that the current UML
// production line boots the virtual machine after cloning, instead of
// resuming it from a checkpoint."  Golden images are powered-off file
// systems shared copy-on-write; no memory state exists, and every clone
// pays a full guest boot (the 76-second average of Section 4.3).
#pragma once

#include "hypervisor/hypervisor.h"

namespace vmp::hv {

class UmlHypervisor final : public Hypervisor {
 public:
  explicit UmlHypervisor(storage::ArtifactStore* store) : Hypervisor(store) {}

  std::string type() const override { return "uml"; }
  bool resumes_from_checkpoint() const override { return false; }

 protected:
  util::Status do_start(VmInstance* vm) override;
  util::Status validate_clone_source(const CloneSource& source) const override;
};

}  // namespace vmp::hv
