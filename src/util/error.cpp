#include "util/error.h"

namespace vmp::util {

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kParseError: return "PARSE_ERROR";
    case ErrorCode::kConfigActionFailed: return "CONFIG_ACTION_FAILED";
    case ErrorCode::kNoMatchingImage: return "NO_MATCHING_IMAGE";
    case ErrorCode::kNoBids: return "NO_BIDS";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kCancelled: return "CANCELLED";
  }
  return "UNKNOWN";
}

std::optional<ErrorCode> error_code_from_name(const std::string& name) {
  static const ErrorCode kAll[] = {
      ErrorCode::kOk,
      ErrorCode::kInvalidArgument,
      ErrorCode::kNotFound,
      ErrorCode::kAlreadyExists,
      ErrorCode::kResourceExhausted,
      ErrorCode::kFailedPrecondition,
      ErrorCode::kUnavailable,
      ErrorCode::kTimeout,
      ErrorCode::kInternal,
      ErrorCode::kParseError,
      ErrorCode::kConfigActionFailed,
      ErrorCode::kNoMatchingImage,
      ErrorCode::kNoBids,
      ErrorCode::kPermissionDenied,
      ErrorCode::kCancelled,
  };
  for (ErrorCode code : kAll) {
    if (name == error_code_name(code)) return code;
  }
  return std::nullopt;
}

std::string Error::to_string() const {
  std::string out = error_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace vmp::util
