file(REMOVE_RECURSE
  "CMakeFiles/concurrency.dir/concurrency.cpp.o"
  "CMakeFiles/concurrency.dir/concurrency.cpp.o.d"
  "concurrency"
  "concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
