file(REMOVE_RECURSE
  "CMakeFiles/clone_vs_copy.dir/clone_vs_copy.cpp.o"
  "CMakeFiles/clone_vs_copy.dir/clone_vs_copy.cpp.o.d"
  "clone_vs_copy"
  "clone_vs_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clone_vs_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
