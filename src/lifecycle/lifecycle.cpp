#include "lifecycle/lifecycle.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace vmp::lifecycle {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

const util::Logger kLog("lifecycle");

struct LifecycleMetrics {
  obs::Counter* lease_hits;
  obs::Counter* lease_misses;
  obs::Counter* evictions;
  obs::Counter* zombie_evictions;
  obs::Counter* reaps;
  obs::Counter* orphan_reaps;
  obs::Counter* publish_rejects;
  obs::Counter* bytes_reclaimed;
  obs::Gauge* used_bytes;
  obs::Gauge* headroom_bytes;
  obs::Gauge* zombies;

  static LifecycleMetrics& get() {
    static LifecycleMetrics m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::instance();
      return LifecycleMetrics{r.counter("lifecycle.lease_hit.count"),
                              r.counter("lifecycle.lease_miss.count"),
                              r.counter("lifecycle.evict.count"),
                              r.counter("lifecycle.evict_zombie.count"),
                              r.counter("lifecycle.reap.count"),
                              r.counter("lifecycle.orphan_reap.count"),
                              r.counter("lifecycle.publish_reject.count"),
                              r.counter("lifecycle.bytes_reclaimed.count"),
                              r.gauge("lifecycle.used_bytes.gauge"),
                              r.gauge("lifecycle.headroom_bytes.gauge"),
                              r.gauge("lifecycle.zombies.gauge")};
    }();
    return m;
  }
};

}  // namespace

LifecycleManager::LifecycleManager(warehouse::Warehouse* warehouse,
                                   Config config,
                                   std::unique_ptr<EvictionPolicy> policy)
    : config_(std::move(config)),
      warehouse_(warehouse),
      store_(warehouse->store()),
      policy_(std::move(policy)),
      journal_(config_.journal != nullptr ? config_.journal
                                          : &obs::Journal::instance()) {}

Result<std::unique_ptr<LifecycleManager>> LifecycleManager::create(
    warehouse::Warehouse* warehouse, Config config) {
  auto policy = make_policy(config.policy);
  if (!policy.ok()) {
    return policy.propagate<std::unique_ptr<LifecycleManager>>();
  }
  return std::unique_ptr<LifecycleManager>(new LifecycleManager(
      warehouse, std::move(config), std::move(policy).value()));
}

std::uint64_t LifecycleManager::estimate_publish_bytes(
    const storage::MachineSpec& spec) {
  // Sparse artefacts are charged at full apparent size (the simulation's
  // convention throughout); config/redo/descriptor/guest.state are noise.
  constexpr std::uint64_t kMetadataSlack = 64ull << 10;
  return (spec.suspended ? spec.memory_bytes : 0) +
         spec.disk.capacity_bytes + kMetadataSlack;
}

ImageStats LifecycleManager::stats_for(const std::string& id,
                                       const Entry& entry) const {
  ImageStats s;
  s.id = id;
  s.physical_bytes = entry.physical_bytes;
  s.files = entry.files;
  s.hits = entry.hits;
  s.last_use_tick = entry.last_use_tick;
  s.rebuild_cost_s = entry.rebuild_cost_s;
  s.leases = entry.leases;
  s.pinned = entry.pinned;
  s.zombie = entry.zombie;
  return s;
}

std::int64_t LifecycleManager::headroom_locked() const {
  if (config_.disk_budget_bytes == 0) return 0;
  return static_cast<std::int64_t>(config_.disk_budget_bytes) -
         static_cast<std::int64_t>(used_bytes_) -
         static_cast<std::int64_t>(reserved_bytes_);
}

void LifecycleManager::update_byte_gauges_locked() {
  LifecycleMetrics& metrics = LifecycleMetrics::get();
  metrics.used_bytes->set(static_cast<std::int64_t>(used_bytes_));
  metrics.headroom_bytes->set(headroom_locked());
}

std::int64_t LifecycleManager::headroom_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return headroom_locked();
}

Status LifecycleManager::adopt_locked(const std::string& id,
                                      std::optional<obs::JournalEvent> event) {
  auto image = warehouse_->lookup(id);
  if (!image.ok()) return image.error();
  auto footprint = store_->tree_footprint(image.value().layout.dir);
  if (!footprint.ok()) return footprint.error();
  Entry entry;
  entry.dir = image.value().layout.dir;
  entry.physical_bytes = footprint.value().physical_bytes;
  entry.files = footprint.value().files + footprint.value().links;
  entry.last_use_tick = ++tick_;
  entry.rebuild_cost_s = config_.cost_model.rebuild_cost_s(
      entry.physical_bytes, entry.files, image.value().performed.size());
  used_bytes_ += entry.physical_bytes;
  entries_[id] = entry;
  update_byte_gauges_locked();
  if (event.has_value()) {
    journal_->append(*event, id,
                     static_cast<std::int64_t>(entry.physical_bytes));
  }
  return Status();
}

Status LifecycleManager::publish(const warehouse::GoldenImage& image) {
  obs::ScopedSpan span("lifecycle.publish", "lifecycle", image.id);
  LifecycleMetrics& metrics = LifecycleMetrics::get();
  const std::uint64_t estimate = estimate_publish_bytes(image.spec);
  // Rejections journal kPublishReject with the error category in aux; the
  // timeline then explains WHY an image never appeared.
  auto reject = [&](Status status) {
    metrics.publish_rejects->add();
    span.set_status(util::error_code_name(status.error().code()));
    journal_->append(obs::JournalEvent::kPublishReject, image.id, 0,
                     static_cast<std::uint64_t>(status.error().code()));
    return status;
  };

  // Phase 1 (locked): id collision checks + budget admission + reservation.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(image.id);
    if (it != entries_.end()) {
      // A zombie is detached from the warehouse index, so the warehouse
      // alone would happily re-claim its id — and materialization would
      // overwrite the very artefact tree the zombie's live clones still
      // symlink into, while adopt clobbered its lease count.  Reject: the
      // id frees up only when the last release reaps the zombie.
      if (it->second.zombie) {
        return reject(Status(
            ErrorCode::kFailedPrecondition,
            "publish '" + image.id +
                "': id belongs to an evicted image whose clones "
                "still hold leases (zombie); it can be reused "
                "only after the last lease release reaps it"));
      }
      return reject(Status(ErrorCode::kAlreadyExists,
                           "golden image exists: " + image.id));
    }
    if (publishing_.count(image.id) != 0) {
      return reject(Status(ErrorCode::kAlreadyExists,
                           "publish '" + image.id +
                               "': a publish of this id is already in flight"));
    }

    if (config_.disk_budget_bytes != 0) {
      if (estimate > config_.disk_budget_bytes) {
        return reject(Status(
            ErrorCode::kResourceExhausted,
            "publish '" + image.id + "': image (~" + std::to_string(estimate) +
                " bytes) exceeds the warehouse disk budget (" +
                std::to_string(config_.disk_budget_bytes) + ")"));
      }
      // Admit against charged + reserved bytes: in-flight publishes have
      // not hit the ledger yet but their estimates are already committed.
      const std::uint64_t committed = used_bytes_ + reserved_bytes_;
      if (committed + estimate > config_.disk_budget_bytes) {
        const std::uint64_t needed =
            committed + estimate - config_.disk_budget_bytes;
        // The evict-to-fit stall is THE canonical hidden tail cause: the
        // span makes it attributable on a slow create's critical path,
        // correlated with the kEvictBegin/kEvictCommit journal records it
        // emits (DESIGN.md §14).
        obs::ScopedSpan evict_span("lifecycle.evict_to_fit", "lifecycle",
                                   image.id);
        const std::uint64_t freed = evict_to_fit_locked(needed);
        if (freed < needed) evict_span.set_status("budget-exhausted");
        if (freed < needed) {
          return reject(Status(
              ErrorCode::kResourceExhausted,
              "publish '" + image.id + "': warehouse budget exhausted (" +
                  std::to_string(used_bytes_) + " used + " +
                  std::to_string(reserved_bytes_) + " reserved of " +
                  std::to_string(config_.disk_budget_bytes) +
                  " bytes; eviction freed " + std::to_string(freed) +
                  " of " + std::to_string(needed) +
                  " needed — remaining images are pinned or leased)"));
        }
      }
    }
    publishing_.insert(image.id);
    reserved_bytes_ += estimate;
    update_byte_gauges_locked();
    journal_->append(obs::JournalEvent::kPublishReserve, image.id,
                     static_cast<std::int64_t>(estimate));
  }

  // Phase 2 (UNLOCKED): the size-proportional materialization.  The
  // warehouse's own id claim keeps the directory private, and the
  // reservation above keeps concurrent admissions honest — holding mutex_
  // here would serialize every publish and stall the acquire/release hot
  // path for the duration of the I/O.
  Status published = warehouse_->publish(image);

  // Phase 3 (locked): settle — swap the reservation for the measured
  // footprint (adoption re-measures the tree the publish materialized).
  std::lock_guard<std::mutex> lock(mutex_);
  publishing_.erase(image.id);
  reserved_bytes_ -= std::min(reserved_bytes_, estimate);
  update_byte_gauges_locked();
  if (!published.ok()) {
    // Materialization failed; the reservation just returned to headroom.
    metrics.publish_rejects->add();
    journal_->append(obs::JournalEvent::kPublishReject, image.id,
                     -static_cast<std::int64_t>(estimate),
                     static_cast<std::uint64_t>(published.error().code()));
    return published;
  }
  Status adopted = adopt_locked(image.id, obs::JournalEvent::kPublishCommit);
  if (!adopted.ok()) {
    kLog.warn() << "publish '" << image.id
                << "': footprint measurement failed ("
                << adopted.error().message()
                << "); ledger entry missing until warm_start";
  }
  return Status();
}

Status LifecycleManager::acquire(const std::string& golden_id) {
  LifecycleMetrics& metrics = LifecycleMetrics::get();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(golden_id);
  if (it != entries_.end() && it->second.zombie) {
    metrics.lease_misses->add();
    return Status(ErrorCode::kFailedPrecondition,
                  "golden image '" + golden_id +
                      "' was evicted (zombie awaiting final release); no new "
                      "clones may lease it");
  }
  if (it == entries_.end()) {
    // Published directly through the warehouse (pre-seeded fixture, another
    // manager's lifetime): adopt it into the ledger on first lease.
    Status adopted = adopt_locked(golden_id, obs::JournalEvent::kAdopt);
    if (!adopted.ok()) {
      metrics.lease_misses->add();
      return adopted;
    }
    it = entries_.find(golden_id);
  }
  ++it->second.leases;
  ++it->second.hits;
  it->second.last_use_tick = ++tick_;
  metrics.lease_hits->add();
  journal_->append(obs::JournalEvent::kLeaseAcquire, golden_id, 0,
                   it->second.hits);
  return Status();
}

void LifecycleManager::release(const std::string& golden_id) noexcept {
  LifecycleMetrics& metrics = LifecycleMetrics::get();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(golden_id);
  if (it == entries_.end() || it->second.leases == 0) return;
  --it->second.leases;
  journal_->append(obs::JournalEvent::kLeaseRelease, golden_id, 0,
                   it->second.leases);
  if (!it->second.zombie || it->second.leases > 0) return;
  // Last lease on a zombie: the clone trees that symlinked into this base
  // are gone, so the base is finally safe to delete.
  auto removed = store_->remove_tree(it->second.dir);
  if (!removed.ok()) {
    kLog.warn() << "zombie reap '" << golden_id << "' failed: "
                << removed.error().message() << " (left on disk; "
                << "reap_orphans will retry)";
    // Keep it descriptor-less on disk but drop the entry: with zero leases
    // nothing protects it, and the orphan sweep owns it from here.
  }
  used_bytes_ -= std::min(used_bytes_, it->second.physical_bytes);
  const std::uint64_t freed =
      removed.ok() ? removed.value().bytes_freed : 0;
  journal_->append(obs::JournalEvent::kReap, golden_id,
                   -static_cast<std::int64_t>(it->second.physical_bytes),
                   freed);
  entries_.erase(it);
  metrics.reaps->add();
  metrics.bytes_reclaimed->add(freed);
  update_byte_gauges_locked();
  metrics.zombies->set(static_cast<std::int64_t>(zombie_count_locked()));
}

Status LifecycleManager::evict_unleased_locked(const std::string& id,
                                               Entry* entry) {
  LifecycleMetrics& metrics = LifecycleMetrics::get();
  auto detached = warehouse_->detach(id);
  if (!detached.ok()) {
    // Ledger said live but the index disagrees (removed behind our back):
    // drop the stale entry so the ledger converges.  The image leaves the
    // ledger, so journal the delta as a commit (nothing physically freed,
    // aux = 0): the kEvictBegin gets its terminal record and warm_start
    // drops the stale hit history with it.
    used_bytes_ -= std::min(used_bytes_, entry->physical_bytes);
    journal_->append(obs::JournalEvent::kEvictCommit, id,
                     -static_cast<std::int64_t>(entry->physical_bytes), 0,
                     policy_->clock());
    entries_.erase(id);
    update_byte_gauges_locked();
    return detached.error();
  }
  policy_->on_evict(stats_for(id, *entry));
  auto removed = store_->remove_tree(entry->dir);
  const std::uint64_t freed = removed.ok() ? removed.value().bytes_freed : 0;
  if (!removed.ok()) {
    kLog.warn() << "evict '" << id << "': tree removal failed: "
                << removed.error().message()
                << " (descriptor gone; orphan sweep will retry)";
  }
  used_bytes_ -= std::min(used_bytes_, entry->physical_bytes);
  // The policy clock AFTER on_evict rides in `value`: warm_start replays
  // the max over all evictions to restore GDSF aging.
  journal_->append(obs::JournalEvent::kEvictCommit, id,
                   -static_cast<std::int64_t>(entry->physical_bytes), freed,
                   policy_->clock());
  entries_.erase(id);
  metrics.evictions->add();
  metrics.bytes_reclaimed->add(freed);
  update_byte_gauges_locked();
  return Status();
}

Status LifecycleManager::evict(const std::string& id) {
  LifecycleMetrics& metrics = LifecycleMetrics::get();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    // Known to the warehouse but never leased/published through us: adopt
    // first so the ledger credit on eviction is correct.
    if (!warehouse_->contains(id)) {
      return Status(ErrorCode::kNotFound, "no golden image: " + id);
    }
    VMP_RETURN_IF_ERROR(adopt_locked(id, obs::JournalEvent::kAdopt));
    it = entries_.find(id);
  }
  if (it->second.zombie) {
    return Status(ErrorCode::kFailedPrecondition,
                  "golden image '" + id + "' is already evicted (zombie)");
  }
  if (it->second.pinned) {
    return Status(ErrorCode::kFailedPrecondition,
                  "golden image '" + id + "' is pinned");
  }
  journal_->append(obs::JournalEvent::kEvictBegin, id, 0, it->second.leases);
  if (it->second.leases == 0) {
    return evict_unleased_locked(id, &it->second);
  }
  // Leased: detach from the index so the PPP can never plan against it,
  // delete ONLY the descriptor (a descriptor-driven rescan must not
  // resurrect it), and keep the artefacts for the live clones' symlinks.
  auto detached = warehouse_->detach(id);
  if (!detached.ok()) {
    journal_->append(obs::JournalEvent::kEvictRollback, id, 0,
                     static_cast<std::uint64_t>(detached.error().code()));
    return detached.error();
  }
  auto desc = store_->remove_tree(it->second.dir + "/descriptor.xml");
  if (!desc.ok()) {
    // The zombie invariant — rescans can never resurrect an evicted image
    // — holds only if the descriptor is gone.  If it cannot be removed the
    // eviction must FAIL: re-attach the image to the index and leave the
    // ledger entry live, rather than mint a resurrectable zombie.
    Status attached = warehouse_->attach(std::move(detached).value());
    if (!attached.ok()) {
      kLog.warn() << "evict '" << id << "': rollback re-attach failed: "
                  << attached.error().message()
                  << " (index entry lost until rescan)";
    }
    journal_->append(obs::JournalEvent::kEvictRollback, id, 0,
                     static_cast<std::uint64_t>(desc.error().code()));
    return Status(desc.error().code(),
                  "evict '" + id + "': descriptor removal failed (" +
                      desc.error().message() + "); eviction aborted");
  }
  policy_->on_evict(stats_for(id, it->second));
  it->second.zombie = true;
  journal_->append(obs::JournalEvent::kZombify, id, 0, it->second.leases,
                   policy_->clock());
  metrics.evictions->add();
  metrics.zombie_evictions->add();
  metrics.zombies->set(static_cast<std::int64_t>(zombie_count_locked()));
  return Status();
}

std::uint64_t LifecycleManager::evict_to_fit_locked(
    std::uint64_t bytes_needed) {
  // Only unleased, unpinned, live images can free bytes NOW; zombie-ing a
  // leased image reclaims nothing until its clones die, so it would burn
  // cache value without helping this admission.
  std::vector<ImageStats> candidates;
  for (const auto& [id, entry] : entries_) {
    if (entry.zombie || entry.pinned || entry.leases > 0) continue;
    candidates.push_back(stats_for(id, entry));
  }
  std::uint64_t freed = 0;
  for (const std::string& id : policy_->rank(candidates)) {
    if (freed >= bytes_needed) break;
    auto it = entries_.find(id);
    if (it == entries_.end() || it->second.leases > 0 || it->second.pinned ||
        it->second.zombie) {
      continue;
    }
    const std::uint64_t bytes = it->second.physical_bytes;
    // Begin/commit pair, same as explicit evict(): a slow create's tail
    // exemplar shows WHEN the stall entered each victim, not just the
    // commits (replay ignores kEvictBegin, so warm_start is unaffected).
    journal_->append(obs::JournalEvent::kEvictBegin, id, 0,
                     it->second.leases);
    if (evict_unleased_locked(id, &it->second).ok()) freed += bytes;
  }
  return freed;
}

std::uint64_t LifecycleManager::evict_to_fit(std::uint64_t bytes_needed) {
  std::lock_guard<std::mutex> lock(mutex_);
  return evict_to_fit_locked(bytes_needed);
}

Status LifecycleManager::pin(const std::string& id, bool pinned) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    if (!warehouse_->contains(id)) {
      return Status(ErrorCode::kNotFound, "no golden image: " + id);
    }
    VMP_RETURN_IF_ERROR(adopt_locked(id, obs::JournalEvent::kAdopt));
    it = entries_.find(id);
  }
  if (it->second.zombie) {
    return Status(ErrorCode::kFailedPrecondition,
                  "golden image '" + id + "' is already evicted (zombie)");
  }
  it->second.pinned = pinned;
  return Status();
}

Status LifecycleManager::warm_start() {
  std::lock_guard<std::mutex> lock(mutex_);
  VMP_RETURN_IF_ERROR(warehouse_->rescan());
  entries_.clear();
  used_bytes_ = 0;
  tick_ = 0;
  for (const warehouse::GoldenImage& image : warehouse_->list()) {
    Status adopted = adopt_locked(image.id, std::nullopt);
    if (!adopted.ok()) {
      return Status(adopted.error().code(),
                    "warm_start '" + image.id +
                        "': " + adopted.error().message());
    }
  }

  // Fold the journal's replayed history (if a durable sink recovered one)
  // into the rescanned ledger: hit counts and use ORDER come back, so GDSF
  // and LRU resume where the crashed process left off instead of treating
  // every survivor as equally cold.  Disk remains the footprint authority —
  // replay only ever annotates ids the rescan adopted.
  const std::optional<obs::JournalReplay>& recovered = journal_->recovered();
  if (recovered.has_value() && !recovered->records.empty()) {
    struct History {
      std::uint64_t hits = 0;
      std::uint64_t last_seq = 0;
    };
    std::map<std::string, History> history;
    double policy_clock = 0.0;
    std::uint64_t max_seq = 0;
    for (const obs::JournalRecord& record : recovered->records) {
      max_seq = std::max(max_seq, record.seq);
      switch (record.kind) {
        case obs::JournalEvent::kPublishCommit:
        case obs::JournalEvent::kAdopt:
          // (Re)charged: any pre-eviction history belonged to a dead
          // incarnation of this id.
          history[record.image_id] = History{0, record.seq};
          break;
        case obs::JournalEvent::kLeaseAcquire: {
          History& h = history[record.image_id];
          ++h.hits;
          h.last_seq = record.seq;
          break;
        }
        case obs::JournalEvent::kEvictCommit:
        case obs::JournalEvent::kZombify:
          // `value` carries the policy clock recorded after on_evict.
          policy_clock = std::max(policy_clock, record.value);
          history.erase(record.image_id);
          break;
        case obs::JournalEvent::kReap:
          history.erase(record.image_id);
          break;
        default:
          break;
      }
    }
    // Journal seqs and ledger ticks share one logical axis: adoption above
    // assigned ticks 1..N, replayed ids move to their last-seen seq (seqs
    // continue past max_seq, so order stays consistent), and images the
    // journal never saw keep their adoption tick — oldest, as befits ids
    // with no recorded use.
    for (auto& [id, entry] : entries_) {
      auto it = history.find(id);
      if (it == history.end()) continue;
      entry.hits = it->second.hits;
      entry.last_use_tick = std::max(entry.last_use_tick, it->second.last_seq);
    }
    tick_ = std::max(tick_, max_seq);
    policy_->restore_clock(policy_clock);
  }

  journal_->append(obs::JournalEvent::kWarmStart, "", 0, entries_.size(),
                   policy_->clock());
  LifecycleMetrics::get().zombies->set(0);
  update_byte_gauges_locked();
  return Status();
}

Result<ReapReport> LifecycleManager::reap_orphans() {
  LifecycleMetrics& metrics = LifecycleMetrics::get();
  std::lock_guard<std::mutex> lock(mutex_);
  auto dir_entries = store_->list_dir(warehouse_->base_dir());
  if (!dir_entries.ok()) return dir_entries.propagate<ReapReport>();
  ReapReport report;
  for (const std::string& name : dir_entries.value()) {
    const std::string dir = warehouse_->base_dir() + "/" + name;
    if (store_->exists(dir + "/descriptor.xml")) continue;
    // A live zombie is descriptor-less by design — its leases protect it.
    auto it = entries_.find(name);
    if (it != entries_.end() && it->second.zombie && it->second.leases > 0) {
      continue;
    }
    // A claimed id with no descriptor is a publish mid-materialization,
    // not debris.
    if (warehouse_->claimed(name)) continue;
    auto removed = store_->remove_tree(dir);
    if (!removed.ok()) {
      kLog.warn() << "orphan sweep: cannot remove '" << dir
                  << "': " << removed.error().message();
      continue;
    }
    ++report.directories;
    report.bytes_freed += removed.value().bytes_freed;
    metrics.orphan_reaps->add();
    journal_->append(obs::JournalEvent::kOrphanReap, name,
                     -static_cast<std::int64_t>(removed.value().bytes_freed));
  }
  metrics.bytes_reclaimed->add(report.bytes_freed);
  return report;
}

Result<LedgerSnapshot> LifecycleManager::ledger_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!publishing_.empty() || reserved_bytes_ != 0) {
    return Error(ErrorCode::kFailedPrecondition,
                 "ledger_snapshot: " + std::to_string(publishing_.size()) +
                     " publish(es) in flight (" +
                     std::to_string(reserved_bytes_) +
                     " reserved bytes); quiesce before snapshotting");
  }
  LedgerSnapshot snap;
  snap.entries.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    LedgerSnapshot::Entry e;
    e.id = id;
    e.dir = entry.dir;
    e.physical_bytes = entry.physical_bytes;
    e.files = entry.files;
    e.hits = entry.hits;
    e.last_use_tick = entry.last_use_tick;
    e.leases = entry.leases;
    e.rebuild_cost_s = entry.rebuild_cost_s;
    e.pinned = entry.pinned;
    e.zombie = entry.zombie;
    snap.entries.push_back(std::move(e));
  }
  snap.used_bytes = used_bytes_;
  snap.tick = tick_;
  snap.policy = policy_->name();
  snap.policy_clock = policy_->clock();
  return snap;
}

Status LifecycleManager::restore_ledger(const LedgerSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!publishing_.empty() || reserved_bytes_ != 0) {
    return Status(ErrorCode::kFailedPrecondition,
                  "restore_ledger: " + std::to_string(publishing_.size()) +
                      " publish(es) in flight (" +
                      std::to_string(reserved_bytes_) +
                      " reserved bytes); quiesce before restoring");
  }
  if (snapshot.policy != policy_->name()) {
    return Status(ErrorCode::kInvalidArgument,
                  "restore_ledger: snapshot was captured under policy '" +
                      snapshot.policy + "' but this manager runs '" +
                      policy_->name() + "'");
  }
  std::map<std::string, Entry> rebuilt;
  for (const LedgerSnapshot::Entry& e : snapshot.entries) {
    if (e.id.empty()) {
      return Status(ErrorCode::kInvalidArgument,
                    "restore_ledger: entry with empty id");
    }
    Entry entry;
    entry.dir = e.dir;
    entry.physical_bytes = e.physical_bytes;
    entry.files = e.files;
    entry.hits = e.hits;
    entry.last_use_tick = e.last_use_tick;
    entry.leases = e.leases;
    entry.rebuild_cost_s = e.rebuild_cost_s;
    entry.pinned = e.pinned;
    entry.zombie = e.zombie;
    if (!rebuilt.emplace(e.id, std::move(entry)).second) {
      return Status(ErrorCode::kInvalidArgument,
                    "restore_ledger: duplicate entry id '" + e.id + "'");
    }
  }
  entries_ = std::move(rebuilt);
  used_bytes_ = snapshot.used_bytes;
  tick_ = snapshot.tick;
  // restore_clock is monotone (max), matching warm_start's replay fold.
  policy_->restore_clock(snapshot.policy_clock);
  journal_->append(obs::JournalEvent::kWarmStart, "", 0, entries_.size(),
                   policy_->clock());
  LifecycleMetrics& metrics = LifecycleMetrics::get();
  metrics.zombies->set(static_cast<std::int64_t>(zombie_count_locked()));
  update_byte_gauges_locked();
  return Status();
}

std::vector<ImageStats> LifecycleManager::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ImageStats> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    out.push_back(stats_for(id, entry));
  }
  return out;
}

std::uint64_t LifecycleManager::used_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_bytes_;
}

std::uint64_t LifecycleManager::reserved_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reserved_bytes_;
}

double LifecycleManager::policy_clock() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return policy_->clock();
}

std::size_t LifecycleManager::inflight_publishes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return publishing_.size();
}

std::size_t LifecycleManager::zombie_count_locked() const {
  std::size_t count = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry.zombie) ++count;
  }
  return count;
}

std::size_t LifecycleManager::zombie_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return zombie_count_locked();
}

}  // namespace vmp::lifecycle
