#include "net/message.h"

#include <cstdlib>

namespace vmp::net {

using util::Error;
using util::ErrorCode;
using util::Result;

const char* message_kind_name(MessageKind kind) noexcept {
  switch (kind) {
    case MessageKind::kRequest: return "request";
    case MessageKind::kResponse: return "response";
    case MessageKind::kFault: return "fault";
  }
  return "request";
}

Result<MessageKind> parse_message_kind(const std::string& name) {
  if (name == "request") return MessageKind::kRequest;
  if (name == "response") return MessageKind::kResponse;
  if (name == "fault") return MessageKind::kFault;
  return Result<MessageKind>(
      Error(ErrorCode::kParseError, "unknown message kind: " + name));
}

Message Message::request(std::string service, std::string from, std::string to,
                         std::string correlation) {
  Message m;
  m.kind_ = MessageKind::kRequest;
  m.service_ = std::move(service);
  m.from_ = std::move(from);
  m.to_ = std::move(to);
  m.correlation_ = std::move(correlation);
  // Join the calling thread's trace (empty context when tracing is off).
  m.trace_ = obs::current_context();
  return m;
}

Message Message::assemble(MessageKind kind, std::string service,
                          std::string from, std::string to,
                          std::string correlation) {
  Message m;
  m.kind_ = kind;
  m.service_ = std::move(service);
  m.from_ = std::move(from);
  m.to_ = std::move(to);
  m.correlation_ = std::move(correlation);
  return m;
}

Message Message::response_to(const Message& request_msg) {
  Message m;
  m.kind_ = MessageKind::kResponse;
  m.service_ = request_msg.service_;
  m.from_ = request_msg.to_;
  m.to_ = request_msg.from_;
  m.correlation_ = request_msg.correlation_;
  m.trace_ = request_msg.trace_;
  return m;
}

Message Message::fault_to(const Message& request_msg, const Error& error) {
  Message m = response_to(request_msg);
  m.kind_ = MessageKind::kFault;
  xml::Element& fault = m.body().add_child("fault");
  fault.set_attr("code", util::error_code_name(error.code()));
  fault.set_text(error.message());
  return m;
}

Error Message::fault_error() const {
  const xml::Element* fault = body().child("fault");
  if (fault == nullptr) {
    return Error(ErrorCode::kInternal, "fault message without <fault> element");
  }
  const std::string& code_name = fault->attr("code");
  // Reverse-map the code name; unknown names degrade to kInternal.
  for (std::uint32_t c = 0; c <= 14; ++c) {
    const auto code = static_cast<ErrorCode>(c);
    if (code_name == util::error_code_name(code)) {
      return Error(code, fault->text());
    }
  }
  return Error(ErrorCode::kInternal, fault->text());
}

std::string Message::serialize() const {
  xml::Element root("message");
  root.set_attr("kind", message_kind_name(kind_));
  root.set_attr("service", service_);
  root.set_attr("from", from_);
  root.set_attr("to", to_);
  root.set_attr("correlation", correlation_);
  if (trace_.valid()) {
    root.set_attr("trace", trace_.trace_id);
    root.set_attr("span", std::to_string(trace_.span_id));
  }
  for (const auto& child : body_->children()) {
    root.adopt_child(child->clone());
  }
  return root.to_string();
}

Result<Message> Message::deserialize(const std::string& wire) {
  auto doc = xml::parse(wire);
  if (!doc.ok()) return doc.propagate<Message>();
  const xml::Element& root = *doc.value();
  if (root.name() != "message") {
    return Result<Message>(
        Error(ErrorCode::kParseError, "expected <message> root"));
  }
  auto kind = parse_message_kind(root.attr("kind"));
  if (!kind.ok()) return kind.propagate<Message>();

  Message m;
  m.kind_ = kind.value();
  m.service_ = root.attr("service");
  m.from_ = root.attr("from");
  m.to_ = root.attr("to");
  m.correlation_ = root.attr("correlation");
  if (root.has_attr("trace")) {
    m.trace_.trace_id = root.attr("trace");
    m.trace_.span_id = static_cast<std::uint64_t>(
        std::strtoull(root.attr("span").c_str(), nullptr, 10));
  }
  for (const auto& child : root.children()) {
    m.body().adopt_child(child->clone());
  }
  return m;
}

Message Message::clone_shallow_header() const {
  Message m;
  m.kind_ = kind_;
  m.service_ = service_;
  m.from_ = from_;
  m.to_ = to_;
  m.correlation_ = correlation_;
  m.trace_ = trace_;
  return m;
}

}  // namespace vmp::net
