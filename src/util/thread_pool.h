// Fixed-size thread pool used by the real-backend integration layer and by
// each VmPlant's concurrent create pipeline.
//
// The simulated cluster is single-threaded (the DES owns time); the real
// backend instead runs plant daemons and concurrent client requests on pool
// threads, which is how the thread-safety of the warehouse, information
// system, and network allocator gets exercised in tests.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace vmp::util {

class ThreadPool {
 public:
  /// Thrown from a task future's get() when the task was submitted after
  /// shutdown began and therefore never ran.  submit() itself never throws:
  /// plants and shops call it from arbitrary request paths, where an
  /// exception would unwind through Result-based code that expects none.
  struct Stopped : std::runtime_error {
    Stopped() : std::runtime_error("ThreadPool stopped before task ran") {}
  };

  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its result.  After shutdown has
  /// begun the task is NOT enqueued and the returned future holds a
  /// Stopped exception instead (surfacing at get(), never at submit()).
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        std::promise<R> failed;
        failed.set_exception(std::make_exception_ptr(Stopped{}));
        return failed.get_future();
      }
      queue_.emplace_back([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Block until every task submitted so far has finished.  Safe to call
  /// from any number of threads, concurrently with submit(): a submit that
  /// races the wait may or may not be covered by it, but the wait itself
  /// never hangs on a task that was admitted and never misses a wakeup.
  void wait_idle();

  /// True once shutdown has begun (further submits return Stopped futures).
  bool stopped() const;

  /// Tasks admitted but not yet started (diagnostics).
  std::size_t pending() const;

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace vmp::util
