// Overhead of the observability plane on production paths.
//
// The tracer's disarmed cost is one relaxed atomic load per ScopedSpan —
// the contract that lets every hot path stay instrumented all the time.
// Measured so regressions in the "nobody is tracing" path show up:
//   1. ScopedSpan construct+destruct, tracer disarmed  (budget: <= 5 ns/op)
//   2. ScopedSpan construct+destruct, tracer armed     (reported, not bounded)
//      and the same loop with the TailSampler armed on top (budget: <= 2x
//      the armed baseline measured in the same run — DESIGN.md §14)
//   3. Counter::add and Timer::record (always-on metrics)
//   4. LogHistogram::record — the always-on quantile path every Timer pays
//      (budget: <= 15 ns/op: one frexp-based index + one relaxed fetch_add)
//   5. Journal::append, ring-only (the always-armed flight recorder every
//      lifecycle transition pays: one mutex + a slot write; budget:
//      <= 250 ns/op) and with a durable segment sink open (buffered
//      fwrite, no per-append flush; budget: <= 2500 ns/op)
//   6. MessageBus::call round-trip, disarmed vs armed
//
// Besides the human-readable table, every measurement emits one
// machine-readable line:
//   BENCH_JSON {"name": "...", "ns_per_op": 3.21, "budget_ns": 5.0}
// ("budget_ns": null when unbounded) so CI can grep and gate on budgets.
// Any budgeted row over budget also makes the process EXIT NON-ZERO — the
// binary gates itself; CI's `! grep 'OVER BUDGET'` is belt-and-braces.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common.h"
#include "net/bus.h"
#include "obs/histogram.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/tail.h"
#include "obs/trace.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Any budgeted row exceeded its budget (the process exits non-zero, so
/// the gate holds even where the CI-side `! grep 'OVER BUDGET'` is absent).
bool g_over_budget = false;

/// Print the aligned human line plus the BENCH_JSON line.  budget_ns < 0
/// means unbounded.
void report(const char* name, double ns_per_op, double budget_ns) {
  if (budget_ns >= 0.0) {
    if (ns_per_op > budget_ns) g_over_budget = true;
    std::printf("%-21s: %8.2f ns/op %s\n", name, ns_per_op,
                ns_per_op <= budget_ns ? "(within budget)"
                                       : "(OVER BUDGET!)");
    std::printf("BENCH_JSON {\"name\": \"%s\", \"ns_per_op\": %.2f, "
                "\"budget_ns\": %.1f}\n",
                name, ns_per_op, budget_ns);
  } else {
    std::printf("%-21s: %8.2f ns/op\n", name, ns_per_op);
    std::printf("BENCH_JSON {\"name\": \"%s\", \"ns_per_op\": %.2f, "
                "\"budget_ns\": null}\n",
                name, ns_per_op);
  }
}

}  // namespace

int main() {
  using namespace vmp;
  bench::print_header(
      "observability overhead — cost of spans and metrics on hot paths",
      "disarmed ScopedSpan is one relaxed atomic load (<= 5 ns/op); "
      "counters and the log-linear histogram are relaxed atomics and stay "
      "armed always (histogram record <= 15 ns/op)");

  constexpr int kSpanIters = 2'000'000;
  constexpr int kMetricIters = 2'000'000;
  constexpr int kCallIters = 20'000;

  obs::Tracer& tracer = obs::Tracer::instance();

  tracer.disarm();
  {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kSpanIters; ++i) {
      obs::ScopedSpan span("bench.noop", "bench");
    }
    report("span disarmed", seconds_since(start) * 1e9 / kSpanIters, 5.0);
  }

  double armed_ns = 0.0;
  tracer.arm();
  {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kSpanIters / 20; ++i) {
      obs::ScopedSpan span("bench.noop", "bench");
    }
    armed_ns = seconds_since(start) * 1e9 / (kSpanIters / 20);
    report("span armed", armed_ns, -1.0);
  }
  {
    // Tail sampling on top of the armed tracer: every root span completion
    // now also pays the root-sink hand-off, the reservoir insert, and the
    // quantile check; the rare retained tail pays extraction plus
    // critical-path attribution.  Budgeted RELATIVE to the armed baseline
    // just measured (<= 2x), so the gate tracks the machine, not a fixed
    // nanosecond count.
    // Drop the spans the baseline loop accumulated: extract_trace is
    // O(tracer buffer), and with the sampler armed the buffer self-drains
    // (every decided trace is extracted), so steady state starts empty.
    tracer.clear();
    obs::TailSampler::instance().arm(obs::TailSamplerConfig{});
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kSpanIters / 20; ++i) {
      obs::ScopedSpan span("bench.noop", "bench");
    }
    report("span armed + tail",
           seconds_since(start) * 1e9 / (kSpanIters / 20), 2.0 * armed_ns);
    // CI forensics hook: when the gate runner sets VMP_TAIL_EXEMPLAR_DIR,
    // leave the retained slow-tail exemplars on disk so a failed gate run
    // uploads the traces that explain its own regression.
    if (const char* dir = std::getenv("VMP_TAIL_EXEMPLAR_DIR")) {
      const std::size_t written = obs::TailSampler::instance().dump(dir);
      std::printf("tail exemplars      : %zu dumped to %s\n", written, dir);
    }
    obs::TailSampler::instance().disarm();
  }
  tracer.disarm();

  {
    obs::Counter* c = obs::MetricsRegistry::instance().counter("bench.count");
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kMetricIters; ++i) c->add();
    report("counter add", seconds_since(start) * 1e9 / kMetricIters, -1.0);
  }
  {
    // The always-on quantile path: one log-linear bucket index plus one
    // relaxed fetch_add.  Values vary so the bucket computation cannot be
    // hoisted.
    obs::LogHistogram hist;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kMetricIters; ++i) {
      hist.record(1e-6 * static_cast<double>((i & 1023) + 1));
    }
    report("histogram record", seconds_since(start) * 1e9 / kMetricIters,
           15.0);
    if (hist.total() != static_cast<std::uint64_t>(kMetricIters)) {
      std::printf("histogram miscounted!\n");
      return 1;
    }
  }
  {
    obs::Timer* t = obs::MetricsRegistry::instance().timer("bench.seconds");
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kMetricIters; ++i) t->record(1e-6);
    report("timer record", seconds_since(start) * 1e9 / kMetricIters, -1.0);
  }

  // The lifecycle event journal: every transition pays the ring append
  // (mutex + slot write + a short image-id copy); a run with a durable sink
  // open adds one encode + buffered fwrite per append (flushed on rotation
  // and close, not per record).
  constexpr int kJournalIters = 500'000;
  {
    obs::Journal journal;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kJournalIters; ++i) {
      journal.append(obs::JournalEvent::kLeaseAcquire, "bench-image-000",
                     0, static_cast<std::uint64_t>(i));
    }
    report("journal ring append",
           seconds_since(start) * 1e9 / kJournalIters, 250.0);
    if (journal.appended() != static_cast<std::uint64_t>(kJournalIters)) {
      std::printf("journal miscounted!\n");
      return 1;
    }
  }
  {
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "vmp_bench_obs_journal";
    std::error_code ec;
    fs::remove_all(dir, ec);
    obs::Journal journal;
    if (!journal.open_durable(dir).ok()) {
      std::printf("journal open_durable failed!\n");
      return 1;
    }
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kJournalIters; ++i) {
      journal.append(obs::JournalEvent::kLeaseAcquire, "bench-image-000",
                     0, static_cast<std::uint64_t>(i));
    }
    report("journal durable append",
           seconds_since(start) * 1e9 / kJournalIters, 2500.0);
    journal.close_durable();
    fs::remove_all(dir, ec);
  }

  // A full bus round-trip with a trivial echo handler, disarmed vs armed.
  net::MessageBus bus;
  (void)bus.register_endpoint("echo", [](const net::Message& m) {
    return net::Message::response_to(m);
  });
  const auto call_sweep = [&](const char* label) {
    const auto begin = std::chrono::steady_clock::now();
    for (int i = 0; i < kCallIters; ++i) {
      net::Message m = net::Message::request("echo.ping", "bench", "echo",
                                             "c" + std::to_string(i));
      (void)bus.call(m);
    }
    const double ns = seconds_since(begin) * 1e9 / kCallIters;
    std::printf("%-21s: %8.2f us/call\n", label, ns / 1e3);
    std::printf("BENCH_JSON {\"name\": \"%s\", \"ns_per_op\": %.2f, "
                "\"budget_ns\": null}\n",
                label, ns);
  };
  call_sweep("bus.call disarmed");
  tracer.arm();
  call_sweep("bus.call armed");
  tracer.disarm();

  if (g_over_budget) {
    std::printf("FAILED: at least one budgeted path is OVER BUDGET\n");
    return 1;
  }
  return 0;
}
