file(REMOVE_RECURSE
  "CMakeFiles/vmp_core.dir/architect.cpp.o"
  "CMakeFiles/vmp_core.dir/architect.cpp.o.d"
  "CMakeFiles/vmp_core.dir/broker.cpp.o"
  "CMakeFiles/vmp_core.dir/broker.cpp.o.d"
  "CMakeFiles/vmp_core.dir/cost.cpp.o"
  "CMakeFiles/vmp_core.dir/cost.cpp.o.d"
  "CMakeFiles/vmp_core.dir/info_system.cpp.o"
  "CMakeFiles/vmp_core.dir/info_system.cpp.o.d"
  "CMakeFiles/vmp_core.dir/migration.cpp.o"
  "CMakeFiles/vmp_core.dir/migration.cpp.o.d"
  "CMakeFiles/vmp_core.dir/plant.cpp.o"
  "CMakeFiles/vmp_core.dir/plant.cpp.o.d"
  "CMakeFiles/vmp_core.dir/ppp.cpp.o"
  "CMakeFiles/vmp_core.dir/ppp.cpp.o.d"
  "CMakeFiles/vmp_core.dir/production_line.cpp.o"
  "CMakeFiles/vmp_core.dir/production_line.cpp.o.d"
  "CMakeFiles/vmp_core.dir/request.cpp.o"
  "CMakeFiles/vmp_core.dir/request.cpp.o.d"
  "CMakeFiles/vmp_core.dir/shop.cpp.o"
  "CMakeFiles/vmp_core.dir/shop.cpp.o.d"
  "libvmp_core.a"
  "libvmp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
