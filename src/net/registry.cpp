#include "net/registry.h"

namespace vmp::net {

using util::Error;
using util::ErrorCode;
using util::Result;

void ServiceRegistry::publish(ServiceRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  records_[record.address] = std::move(record);
}

bool ServiceRegistry::withdraw(const std::string& address) {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.erase(address) != 0;
}

std::vector<ServiceRecord> ServiceRegistry::discover(
    const std::string& type) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ServiceRecord> out;
  for (const auto& [address, record] : records_) {
    if (record.type == type) out.push_back(record);
  }
  return out;
}

Result<ServiceRecord> ServiceRegistry::bind(const std::string& address) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = records_.find(address);
  if (it == records_.end()) {
    return Result<ServiceRecord>(
        Error(ErrorCode::kNotFound, "no service published at " + address));
  }
  return it->second;
}

std::size_t ServiceRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

}  // namespace vmp::net
