#include "obs/tail.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"
#include "util/logging.h"

namespace vmp::obs {

namespace {

const util::Logger kLog("tail");

struct TailMetrics {
  Counter* observed;
  Counter* retained;

  static TailMetrics& get() {
    static TailMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::instance();
      return TailMetrics{r.counter("tail.observed.count"),
                         r.counter("tail.retained.count")};
    }();
    return m;
  }
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Budget-eviction priority: errors outrank every slow-only exemplar, and
/// within a class the longer duration wins the slot.
double retention_priority(const TailExemplar& e) {
  return (e.cause == "error" ? 1e18 : 0.0) + e.duration_s;
}

}  // namespace

std::string TailExemplar::to_jsonl() const {
  std::string out = "{\"exemplar\": \"" + json_escape(trace_id) +
                    "\", \"op\": \"" + json_escape(op) +
                    "\", \"status\": \"" + json_escape(status) +
                    "\", \"cause\": \"" + json_escape(cause) +
                    "\", \"duration\": " + fmt_double(duration_s) +
                    ", \"threshold\": " + fmt_double(threshold_s) +
                    ", \"critical_path\": [";
  bool first = true;
  for (const CriticalPathEntry& entry : path.entries) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"" + json_escape(entry.span.name) +
           "\", \"dur\": " + fmt_double(attributed_duration(entry.span)) +
           ", \"self\": " + fmt_double(entry.self_s) + "}";
  }
  out += "]}\n";
  for (const Span& span : spans) {
    out += span.to_json();
    out += '\n';
  }
  for (const JournalRecord& record : events) {
    out += record.to_json();
    out += '\n';
  }
  return out;
}

TailSampler& TailSampler::instance() {
  static TailSampler sampler;
  return sampler;
}

TailSampler::TailSampler(TailSamplerConfig config)
    : config_(std::move(config)) {}

TailSampler::~TailSampler() { disarm(); }

void TailSampler::arm(TailSamplerConfig config) {
  arm(config, &Tracer::instance(), &Journal::instance());
}

void TailSampler::arm(TailSamplerConfig config, Tracer* tracer,
                      Journal* journal) {
  disarm();  // drop a previous sink before rebinding
  {
    std::lock_guard<std::mutex> lock(mutex_);
    config_ = config;
    if (config_.reservoir == 0) config_.reservoir = 1;
    if (config_.max_retained == 0) config_.max_retained = 1;
    tracer_ = tracer;
    journal_ = journal;
    ops_.clear();
    retained_.clear();
    armed_ = true;
  }
  if (!tracer->armed()) tracer->arm();
  tracer->set_root_sink([this](const Span& root) { observe_root(root); });
}

void TailSampler::disarm() {
  Tracer* tracer = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!armed_) return;
    armed_ = false;
    tracer = tracer_;
  }
  if (tracer != nullptr) tracer->set_root_sink(nullptr);
}

bool TailSampler::armed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return armed_;
}

void TailSampler::add_sample_locked(Reservoir& res, double duration_s) {
  if (res.samples.size() < config_.reservoir) {
    res.samples.push_back(duration_s);
    res.next = res.samples.size() % config_.reservoir;
  } else {
    res.samples[res.next] = duration_s;
    res.next = (res.next + 1) % config_.reservoir;
  }
  ++res.count;
}

double TailSampler::threshold_locked(Reservoir& res) const {
  if (res.count < config_.warmup || res.samples.empty()) return -1.0;
  // Amortize the order statistic: recompute every reservoir/8 inserts, so
  // the per-root cost on the hot path is one compare (bench/obs_overhead
  // holds armed+tail to <= 2x the armed-span cost).
  const std::uint64_t stride =
      std::max<std::uint64_t>(1, config_.reservoir / 8);
  if (res.cached_threshold < 0.0 ||
      res.count - res.cached_at_count >= stride) {
    std::vector<double> scratch = res.samples;
    const std::size_t idx = std::min(
        scratch.size() - 1,
        static_cast<std::size_t>(config_.quantile *
                                 static_cast<double>(scratch.size())));
    std::nth_element(scratch.begin(), scratch.begin() + idx, scratch.end());
    res.cached_threshold = scratch[idx];
    res.cached_at_count = res.count;
  }
  return res.cached_threshold;
}

void TailSampler::retain_locked(TailExemplar exemplar) {
  ++retained_total_;
  TailMetrics::get().retained->add();
  if (retained_.size() < config_.max_retained) {
    retained_.push_back(std::move(exemplar));
    return;
  }
  // Budget full: the lowest-priority resident yields — unless the newcomer
  // itself is the lowest, in which case it is the one evicted.
  auto victim = std::min_element(
      retained_.begin(), retained_.end(),
      [](const TailExemplar& a, const TailExemplar& b) {
        return retention_priority(a) < retention_priority(b);
      });
  ++budget_evictions_;
  if (retention_priority(exemplar) <= retention_priority(*victim)) return;
  *victim = std::move(exemplar);
}

void TailSampler::observe_root(const Span& root) {
  Tracer* tracer = nullptr;
  Journal* journal = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!armed_) return;
    tracer = tracer_;
    journal = journal_;
  }
  // Drain the trace out of the tracer buffer no matter what gets decided:
  // retention is the only thing that keeps spans alive, which is what
  // bounds an always-armed tracer at fleet scale.
  std::vector<Span> spans =
      tracer != nullptr ? tracer->extract_trace(root.trace_id)
                        : std::vector<Span>{};

  std::lock_guard<std::mutex> lock(mutex_);
  if (!armed_) return;
  ++observed_;
  TailMetrics::get().observed->add();
  Reservoir& res = ops_[root.name];
  const double thr = threshold_locked(res);
  const double duration = root.duration_s();
  add_sample_locked(res, duration);
  const bool error = !root.ok();
  const bool slow = thr >= 0.0 && duration > thr;
  if (!error && !slow) return;  // the common case: spans just freed

  TailExemplar exemplar;
  exemplar.trace_id = root.trace_id;
  exemplar.op = root.name;
  exemplar.status = root.status;
  exemplar.cause = error ? "error" : "slow";
  exemplar.duration_s = duration;
  exemplar.threshold_s = std::max(0.0, thr);
  exemplar.spans = std::move(spans);
  if (journal != nullptr) {
    // Correlate: every flight-recorder record stamped with this trace —
    // the evictions, lease transitions, rejects, and fault firings the
    // create caused or waited on (newest max_events kept).
    for (JournalRecord& record : journal->ring()) {
      if (record.trace_id == root.trace_id) {
        exemplar.events.push_back(std::move(record));
      }
    }
    if (exemplar.events.size() > config_.max_events) {
      exemplar.events.erase(
          exemplar.events.begin(),
          exemplar.events.end() - static_cast<std::ptrdiff_t>(
                                      config_.max_events));
    }
  }
  exemplar.path = critical_path(exemplar.spans);
  if (config_.record_metrics) record_critical_path(exemplar.path);
  retain_locked(std::move(exemplar));
}

std::uint64_t TailSampler::observed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return observed_;
}

std::uint64_t TailSampler::retained_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retained_total_;
}

std::uint64_t TailSampler::budget_evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return budget_evictions_;
}

double TailSampler::threshold(const std::string& op) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ops_.find(op);
  if (it == ops_.end()) return -1.0;
  // Only the reservoir's cache fields mutate; logically const.
  return threshold_locked(const_cast<Reservoir&>(it->second));
}

std::vector<TailExemplar> TailSampler::exemplars() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retained_;
}

std::optional<TailExemplar> TailSampler::exemplar(
    const std::string& trace_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const TailExemplar& e : retained_) {
    if (e.trace_id == trace_id) return e;
  }
  return std::nullopt;
}

void TailSampler::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ops_.clear();
  retained_.clear();
}

std::size_t TailSampler::dump(const std::filesystem::path& dir) const {
  const std::vector<TailExemplar> snapshot = exemplars();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::size_t written = 0;
  for (const TailExemplar& e : snapshot) {
    const std::filesystem::path path = dir / (e.trace_id + ".exemplar.jsonl");
    std::FILE* f = std::fopen(path.string().c_str(), "w");
    if (f == nullptr) {
      kLog.warn() << "cannot write exemplar " << path.string();
      continue;
    }
    const std::string text = e.to_jsonl();
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    if (std::fclose(f) == 0 && ok) ++written;
  }
  return written;
}

}  // namespace vmp::obs
