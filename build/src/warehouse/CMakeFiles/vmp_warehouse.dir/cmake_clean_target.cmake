file(REMOVE_RECURSE
  "libvmp_warehouse.a"
)
