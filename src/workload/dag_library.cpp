#include "workload/dag_library.h"

#include "util/random.h"

namespace vmp::workload {

using dag::ActionScope;
using dag::ConfigDag;
using dag::DagBuilder;

ConfigDag invigo_workspace_dag(const WorkspaceParams& params) {
  return DagBuilder()
      // Base install (satisfied by the golden machine in the experiments).
      .guest("A", "install-os", {{"distro", "redhat-8.0"}})
      .guest("B", "install-package", {{"package", "vnc-server"}})
      .guest("C", "install-package", {{"package", "web-file-manager"}})
      // Per-instance configuration.
      .guest("D", "configure-network", {{"ip", params.ip}, {"mac", params.mac}})
      .guest("E", "create-user", {{"name", params.user}})
      .guest("F", "mount",
             {{"source", params.home_server + "/" + params.user},
              {"mountpoint", "/home/" + params.user}})
      .guest("G", "write-file",
             {{"path", "/etc/vnc.conf"},
              {"content", "user=" + params.user + " display=:1"}})
      .guest("H", "start-service", {{"service", "vnc-server"}})
      .guest("I", "start-service", {{"service", "web-file-manager"}})
      .chain({"A", "B", "C"})
      .edge("C", "D")
      .edge("C", "E")
      .edge("E", "F")  // the user must exist before the home dir mounts
      .edge("D", "G")
      .edge("F", "G")
      .edge("G", "H")
      .edge("G", "I")
      .build();
}

ConfigDag invigo_base_dag() {
  return DagBuilder()
      .guest("A", "install-os", {{"distro", "redhat-8.0"}})
      .guest("B", "install-package", {{"package", "vnc-server"}})
      .guest("C", "install-package", {{"package", "web-file-manager"}})
      .chain({"A", "B", "C"})
      .build();
}

std::vector<std::string> invigo_golden_history() {
  std::vector<std::string> out;
  const ConfigDag base = invigo_base_dag();
  for (const std::string& id : base.node_ids()) {
    out.push_back(base.action(id)->signature());
  }
  return out;
}

ConfigDag minimal_config_dag(const std::string& user, const std::string& ip) {
  return DagBuilder()
      .guest("net", "configure-network", {{"ip", ip}})
      .guest("user", "create-user", {{"name", user}})
      .edge("net", "user")
      .build();
}

ConfigDag random_layered_dag(std::uint64_t seed, std::size_t layers,
                             std::size_t width, double edge_density) {
  util::SplitMix64 rng(seed);
  DagBuilder builder;
  // Nodes: L<layer>N<index>, distinct signatures via a param.
  for (std::size_t layer = 0; layer < layers; ++layer) {
    for (std::size_t i = 0; i < width; ++i) {
      const std::string id =
          "L" + std::to_string(layer) + "N" + std::to_string(i);
      builder.guest(id, "install-package", {{"package", "pkg-" + id}});
    }
  }
  for (std::size_t layer = 0; layer + 1 < layers; ++layer) {
    for (std::size_t i = 0; i < width; ++i) {
      const std::string from =
          "L" + std::to_string(layer) + "N" + std::to_string(i);
      bool any = false;
      for (std::size_t j = 0; j < width; ++j) {
        if (rng.bernoulli(edge_density)) {
          builder.edge(from,
                       "L" + std::to_string(layer + 1) + "N" + std::to_string(j));
          any = true;
        }
      }
      if (!any) {
        // Keep layers connected so prefix structure is interesting.
        builder.edge(from, "L" + std::to_string(layer + 1) + "N" +
                               std::to_string(rng.next_below(width)));
      }
    }
  }
  return builder.build();
}

}  // namespace vmp::workload
