// Shop-side fleet observability: pull, merge, judge.
//
// The paper's VMShop keeps no per-VM state (§3.1), but grid-scale plant
// selection (§3.4's bid auction) improves when the shop knows how plants
// have been behaving — the CMS-style deployments the paper targets run
// hundreds of creations against plants whose storage and VMM degrade
// independently.  The FleetAggregator is that feedback loop:
//
//   1. every sweep it pulls each discovered plant's "obs://metrics" classad
//      over the message bus (vmplant.query — the same wire path clients
//      use, so no new protocol);
//   2. reconstructs a mergeable obs::MetricsSnapshot from each ad
//      (obs::metrics_snapshot_from_ad) and merges the plant-scoped
//      "<plant>.create.*" SLI metrics — including the log-linear latency
//      histograms — into a fleet rollup published as "obs://fleet/metrics";
//   3. feeds each plant's good/bad creation deltas into a per-plant
//      obs::SloTracker and publishes the verdict (health, burn rates, SLI
//      quantile) as "obs://health/<plant>";
//   4. exposes health() for VmShop::set_health_provider, closing the loop:
//      bids from burning plants get penalized (DESIGN.md §9).
//
// Plants that go silent keep their last verdict until stale_after_s passes,
// then their health ad ages out and they drop from the rollup; health()
// reverts to neutral (bids only come from reachable plants anyway).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "classad/classad.h"
#include "core/info_system.h"
#include "net/bus.h"
#include "net/registry.h"
#include "obs/metrics.h"
#include "obs/slo.h"

namespace vmp::core {

struct FleetAggregatorConfig {
  std::string name = "fleet-aggregator";
  /// A plant unseen for longer than this loses its health ad and drops out
  /// of the fleet rollup (seconds on the aggregator's clock).
  double stale_after_s = 30.0;
  /// SLO applied to every plant's create SLI.
  obs::SloPolicy slo;
  /// Plant-scoped SLI metric suffixes; the full metric name is
  /// "<plant>.<suffix>" (VmPlant records these alongside the globals).
  std::string sli_timer_suffix = "create.seconds";
  std::string good_counter_suffix = "create.count";
  std::string bad_counter_suffix = "create_fail.count";
  /// Burn-window ring geometry (per plant).
  std::size_t ring_buckets = 128;
  double ring_bucket_width_s = 1.0;
};

/// Reserved attribute names in "obs://health/<plant>" ads.
namespace fleet_attrs {
inline constexpr const char* kKind = "ObsKind";  // "health"
inline constexpr const char* kPlant = "Plant";
inline constexpr const char* kHealth = "Health";
inline constexpr const char* kShortBurn = "ShortBurn";
inline constexpr const char* kLongBurn = "LongBurn";
inline constexpr const char* kSliQuantileSeconds = "SliQuantileSeconds";
inline constexpr const char* kGoodTotal = "GoodTotal";
inline constexpr const char* kBadTotal = "BadTotal";
inline constexpr const char* kLastSeenSeconds = "LastSeenSeconds";
inline constexpr const char* kHeadroomBytes = "LifecycleHeadroomBytes";
inline constexpr const char* kJournalDropped = "JournalDroppedRecords";
inline constexpr const char* kPlantCount = "PlantCount";  // fleet rollup ad
// "obs://broker/<name>" shard ads (federation, DESIGN.md §16).
inline constexpr const char* kBroker = "Broker";
inline constexpr const char* kBrokerMembers = "Members";
inline constexpr const char* kForwarded = "CreationsForwarded";
inline constexpr const char* kBidsCached = "BidsCachedServed";
inline constexpr const char* kBidsRefreshed = "BidsRefreshed";
inline constexpr const char* kBidCacheSize = "BidCacheSize";
inline constexpr const char* kSubtreeHeadroom = "SubtreeHeadroomBytes";
inline constexpr const char* kBrokerCount = "BrokerCount";  // rollup ad
}  // namespace fleet_attrs

class FleetAggregator {
 public:
  /// One plant's SLO verdict as of the last sweep that reached it.
  struct PlantHealth {
    std::string plant;
    double health = 1.0;
    double short_burn = 0.0;
    double long_burn = 0.0;
    /// SLI latency at the policy's target quantile (absent until the plant
    /// has recorded creations).
    std::optional<double> sli_quantile_s;
    std::uint64_t good_total = 0;
    std::uint64_t bad_total = 0;
    /// Warehouse quota headroom (budget - used - reserved) the plant last
    /// reported via its lifecycle.headroom_bytes.gauge; 0 when the plant
    /// runs without a disk budget.  The shop can bid placements on this.
    std::int64_t lifecycle_headroom_bytes = 0;
    /// Journal records the plant's flight recorder failed to make durable
    /// (lifecycle.journal.dropped.count); non-zero means the plant's
    /// crash-forensics timeline has holes.
    std::uint64_t journal_dropped = 0;
    double last_seen_s = 0.0;
  };

  /// One federation shard broker's last-sweep facts (registry records with
  /// property broker=true are swept as brokers, never as plants — a broker
  /// runs no production line, so SLO verdicts would be meaningless).
  struct BrokerState {
    std::string broker;
    std::int64_t members = 0;
    std::uint64_t creations_forwarded = 0;
    std::uint64_t bids_cached_served = 0;
    std::uint64_t bids_refreshed = 0;
    std::int64_t bid_cache_size = 0;
    std::int64_t subtree_headroom_bytes = 0;
    double last_seen_s = 0.0;
  };

  /// Publishes into `info` (the shop-side store): per-plant
  /// "obs://health/<plant>" ads plus the "obs://fleet/metrics" rollup.
  FleetAggregator(FleetAggregatorConfig config, net::MessageBus* bus,
                  net::ServiceRegistry* registry, VmInformationSystem* info);
  ~FleetAggregator();

  FleetAggregator(const FleetAggregator&) = delete;
  FleetAggregator& operator=(const FleetAggregator&) = delete;

  const FleetAggregatorConfig& config() const { return config_; }

  /// Install a time source (e.g. the DES clock); nullptr restores wall
  /// seconds since construction.  Burn windows and staleness use it.
  void set_clock(std::function<double()> clock);
  double now() const;

  /// Pull every discovered plant once, update SLO state, republish the
  /// health and rollup ads.  Returns how many plants answered.
  std::size_t sweep();

  /// Health in [0, 1] for the shop's bid penalty.  Neutral (1.0) for
  /// unknown or staled-out plants.
  double health(const std::string& plant) const;

  /// Last verdict per plant (stale plants excluded), sorted by name.
  std::vector<PlantHealth> plant_healths() const;
  std::optional<PlantHealth> plant_health(const std::string& plant) const;

  /// Last facts per fresh shard broker, sorted by name (empty in flat
  /// deployments).
  std::vector<BrokerState> broker_states() const;

  /// The current fleet rollup: every fresh plant's SLI metrics merged
  /// (histograms included) under "fleet.*" names.
  obs::MetricsSnapshot fleet_snapshot() const;

  /// Plants answering the last sweep / sweeps completed.
  std::size_t fresh_plants() const;
  std::uint64_t sweeps() const { return sweeps_.load(); }

  /// Run sweep() on a background thread every `interval` (wall time; the
  /// observation clock is still whatever set_clock installed).
  void start_periodic(std::chrono::milliseconds interval);
  void stop_periodic();
  bool periodic_running() const { return thread_.joinable(); }

  /// Remove every ad this aggregator published (health + rollup).
  void clear_published();

  /// Append the published ads as JSON lines ({"id": ..., "attrs": {...}})
  /// for tools/fleet_report.py.  Returns false when the file cannot be
  /// opened.
  bool export_jsonl(const std::string& path) const;

 private:
  struct PlantState {
    std::unique_ptr<obs::SloTracker> slo;
    std::uint64_t last_good = 0;  // counter readings at the last sweep
    std::uint64_t last_bad = 0;
    obs::TimerStats sli;          // plant-scoped SLI timer, latest pull
    /// Per-stage critical-path self-time timers (tail_self_*_seconds) the
    /// plant's tail sampler exported, latest pull; merged fleet-wide so
    /// the rollup answers "which stage dominates slow creates".
    std::map<std::string, obs::TimerStats> tail_self;
    PlantHealth verdict;
    bool ever_seen = false;       // answered at least one sweep
    bool fresh = false;           // seen within stale_after_s of last sweep
  };

  struct BrokerSweepState {
    BrokerState facts;
    bool ever_seen = false;
    bool fresh = false;
  };

  util::Result<classad::ClassAd> pull_metrics_ad(const std::string& plant);
  void publish_locked(double now_s);
  std::optional<double> sli_quantile(const obs::TimerStats& stats) const;

  FleetAggregatorConfig config_;
  net::MessageBus* bus_;
  net::ServiceRegistry* registry_;
  VmInformationSystem* info_;

  mutable std::mutex mutex_;
  std::function<double()> clock_;
  std::chrono::steady_clock::time_point epoch_;
  std::map<std::string, PlantState> plants_;
  std::map<std::string, BrokerSweepState> brokers_;

  std::thread thread_;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> sweeps_{0};
};

}  // namespace vmp::core
