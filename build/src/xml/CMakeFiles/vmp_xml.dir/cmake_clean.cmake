file(REMOVE_RECURSE
  "CMakeFiles/vmp_xml.dir/xml.cpp.o"
  "CMakeFiles/vmp_xml.dir/xml.cpp.o.d"
  "libvmp_xml.a"
  "libvmp_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
