// In-engine critical-path attribution for retained span trees.
//
// tools/trace_summarize.py --critical-path walks a trace from its root down
// the longest child at every level and prints per-span SELF time — the time
// a span spent in its own code rather than anything it delegated to.  That
// is exactly the attribution the tail sampler (obs/tail.h, DESIGN.md §14)
// needs at retention time: WHICH stage (queue wait, admission, bid, clone,
// configure, publish-stall) made this create land in the tail.  This header
// promotes the tool's algorithm into the engine so retained exemplars carry
// their critical path and per-stage self times feed the MetricsRegistry
// (tail.self.<stage>.seconds) and, via the fleet aggregator, the
// obs://fleet/metrics rollup.
//
// Semantics match the Python tool line for line (a golden fixture is
// asserted equal from both sides in tests/tail_test.cpp and
// tools/test_trace_summarize.py):
//
//   * children are indexed by parent span id, in completion order;
//   * a span whose parent never finished (open or crashed trace) is
//     re-parented to the virtual root instead of vanishing;
//   * the walk starts at the longest root and always descends into the
//     longest direct child (first wins on ties);
//   * self time = max(0, duration - sum of direct children's durations) —
//     children re-parented across a bus hop can overlap a sibling and push
//     the naive subtraction negative;
//   * durations clamp at zero, so a span with a missing/degenerate end
//     timestamp degrades to zero duration instead of poisoning the sums.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vmp::obs {

/// Metric-name prefix for per-stage self-time histograms; the full name is
/// "tail.self.<span name>.seconds" ("tail_self_<name>_seconds" folded).
inline constexpr char kTailSelfMetricPrefix[] = "tail.self.";

/// One hop of a critical path: the span plus its self time.
struct CriticalPathEntry {
  Span span;
  double self_s = 0.0;
};

/// The chain root -> longest child -> ... for one trace's spans.
struct CriticalPath {
  std::vector<CriticalPathEntry> entries;  // root first
  double total_s = 0.0;                    // duration of the chain's root
  bool empty() const { return entries.empty(); }
};

/// Span duration for attribution purposes: clamped at zero so degenerate
/// (open/crashed) spans cannot produce negative time.
double attributed_duration(const Span& span);

/// Compute the critical path of one trace's finished spans.  Tolerates
/// partial traces: orphaned parents become roots, zero spans yield an empty
/// path.
CriticalPath critical_path(const std::vector<Span>& trace_spans);

/// Sum self time per span name along the path ("stage" granularity).
std::map<std::string, double> self_times(const CriticalPath& path);

/// Record each path entry's self time into
/// "tail.self.<span name>.seconds" timers (log-linear histograms included)
/// on `registry` (nullptr = the process-wide registry).
void record_critical_path(const CriticalPath& path,
                          MetricsRegistry* registry = nullptr);

}  // namespace vmp::obs
