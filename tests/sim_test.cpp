// Unit tests for the discrete-event engine and contended-resource models.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"
#include "sim/resources.h"

namespace vmp::sim {
namespace {

TEST(EngineTest, ClockStartsAtZero) {
  Engine engine;
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  EXPECT_EQ(engine.pending_events(), 0u);
}

TEST(EngineTest, EventsFireInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(3.0, [&] { order.push_back(3); });
  engine.schedule(1.0, [&] { order.push_back(1); });
  engine.schedule(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(EngineTest, EqualTimesFireInScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EngineTest, NegativeDelayClampsToNow) {
  Engine engine;
  bool fired = false;
  engine.schedule(-5.0, [&] { fired = true; });
  engine.run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
}

TEST(EngineTest, NestedScheduling) {
  Engine engine;
  double second_fire_time = -1;
  engine.schedule(1.0, [&] {
    engine.schedule(2.0, [&] { second_fire_time = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(second_fire_time, 3.0);
}

TEST(EngineTest, CancelPreventsFiring) {
  Engine engine;
  bool fired = false;
  EventHandle handle = engine.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  EXPECT_TRUE(handle.cancel());
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());  // double cancel is a no-op
  engine.run();
  EXPECT_FALSE(fired);
}

TEST(EngineTest, HandleNotPendingAfterFire) {
  Engine engine;
  EventHandle handle = engine.schedule(1.0, [] {});
  engine.run();
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());
}

TEST(EngineTest, RunUntilStopsAtDeadline) {
  Engine engine;
  std::vector<double> fired;
  engine.schedule(1.0, [&] { fired.push_back(1.0); });
  engine.schedule(5.0, [&] { fired.push_back(5.0); });
  const std::size_t n = engine.run_until(2.0);
  EXPECT_EQ(n, 1u);
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
  engine.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(fired[1], 5.0);
}

TEST(EngineTest, StepFiresExactlyOne) {
  Engine engine;
  int count = 0;
  engine.schedule(1.0, [&] { ++count; });
  engine.schedule(2.0, [&] { ++count; });
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
  EXPECT_EQ(count, 2);
}

TEST(EngineTest, ScheduleAtPastTimeClamps) {
  Engine engine;
  engine.schedule(5.0, [] {});
  engine.run();
  double fire_time = -1;
  engine.schedule_at(1.0, [&] { fire_time = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(fire_time, 5.0);
}

// -- Schedule policy seam ------------------------------------------------------

namespace {
/// Always fires the co-enabled event with the HIGHEST seq (reverse FIFO).
class PickLast : public SchedulePolicy {
 public:
  std::size_t pick(SimTime, const std::vector<Choice>& ready) override {
    return ready.size() - 1;
  }
};
/// Fires the first co-enabled event (the default order, but through the
/// gather-and-pick path instead of the fast path).
class PickFirst : public SchedulePolicy {
 public:
  std::size_t pick(SimTime, const std::vector<Choice>& ready) override {
    last_ready = ready;
    return 0;
  }
  std::vector<Choice> last_ready;
};
}  // namespace

TEST(EngineTest, EqualTimeFifoStableUnderHeapChurn) {
  // Pin the vector+pop_heap queue: scheduling order among equal-time events
  // survives arbitrary interleaving with earlier pops and later pushes.
  Engine engine;
  std::vector<int> order;
  engine.schedule(0.5, [&] {
    for (int i = 10; i < 15; ++i) {
      engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
    }
  });
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  ASSERT_EQ(order.size(), 15u);
  for (int i = 0; i < 15; ++i) EXPECT_EQ(order[i], i);
}

TEST(EngineTest, PolicyPicksWhichTiedEventFires) {
  Engine engine;
  PickLast policy;
  engine.set_scheduler(&policy);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    engine.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  engine.schedule(2.0, [&order] { order.push_back(99); });  // untied: as-is
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1, 0, 99}));
}

TEST(EngineTest, PolicySeesSeqAndTagOfEveryCoEnabledEvent) {
  Engine engine;
  PickFirst policy;
  engine.set_scheduler(&policy);
  engine.schedule(1.0, [] {}, "alpha");
  engine.schedule(1.0, [] {}, "beta");
  engine.step();
  ASSERT_EQ(policy.last_ready.size(), 2u);
  EXPECT_EQ(policy.last_ready[0].tag, "alpha");
  EXPECT_EQ(policy.last_ready[1].tag, "beta");
  EXPECT_LT(policy.last_ready[0].seq, policy.last_ready[1].seq);
}

TEST(EngineTest, OutOfRangePickFallsBackToFifo) {
  class PickBeyond : public SchedulePolicy {
   public:
    std::size_t pick(SimTime, const std::vector<Choice>& ready) override {
      return ready.size() + 7;
    }
  };
  Engine engine;
  PickBeyond policy;
  engine.set_scheduler(&policy);
  std::vector<int> order;
  engine.schedule(1.0, [&] { order.push_back(0); });
  engine.schedule(1.0, [&] { order.push_back(1); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EngineTest, CancelWhileQueuedAmongTies) {
  // The fired event cancels a tied loser that was gathered and re-queued:
  // the loser must not fire, and run() must terminate cleanly.
  Engine engine;
  PickFirst policy;
  engine.set_scheduler(&policy);
  bool victim_fired = false;
  EventHandle victim;
  engine.schedule(1.0, [&] { victim.cancel(); });
  victim = engine.schedule(1.0, [&] { victim_fired = true; });
  engine.run();
  EXPECT_FALSE(victim_fired);
  EXPECT_FALSE(victim.pending());
}

TEST(EngineTest, FiredCallbackCanJoinNextDecisionWithNewEvent) {
  // An event scheduled DURING a tied firing at the same timestamp becomes
  // part of the next decision point.
  Engine engine;
  PickLast policy;
  engine.set_scheduler(&policy);
  std::vector<std::string> order;
  engine.schedule(1.0, [&] {
    order.push_back("first");
    engine.schedule_at(1.0, [&] { order.push_back("nested"); });
  });
  engine.run();
  // Only one event was enabled at the first decision; the nested event then
  // fires at the same sim time.
  EXPECT_EQ(order, (std::vector<std::string>{"first", "nested"}));
  EXPECT_DOUBLE_EQ(engine.now(), 1.0);
}

TEST(EngineTest, DecisionLogRecordsTiesOnlyUnderPolicy) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(1.0, [&] { order.push_back(0); });
  engine.schedule(1.0, [&] { order.push_back(1); });
  engine.run();
  EXPECT_TRUE(engine.decision_log().empty());  // no policy, no recording

  PickLast policy;
  engine.set_scheduler(&policy);
  engine.schedule(1.0, [&] { order.push_back(2); });
  engine.schedule(1.0, [&] { order.push_back(3); });
  engine.schedule(2.0, [&] { order.push_back(4); });
  engine.run();
  ASSERT_EQ(engine.decision_log().size(), 3u);
  const TieDecision& tie = engine.decision_log()[0];
  EXPECT_EQ(tie.ready.size(), 2u);
  EXPECT_EQ(tie.chosen, tie.ready[1]);  // PickLast chose the later seq
  EXPECT_EQ(engine.decision_log()[2].ready.size(), 1u);  // singleton logged
  engine.clear_decision_log();
  EXPECT_TRUE(engine.decision_log().empty());
}

TEST(EngineTest, RemovingPolicyRestoresDefaultTieBreak) {
  Engine engine;
  PickLast policy;
  engine.set_scheduler(&policy);
  engine.set_scheduler(nullptr);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    engine.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// -- SharedBandwidth -----------------------------------------------------------

TEST(SharedBandwidthTest, SingleTransferTakesUnitsOverCapacity) {
  Engine engine;
  SharedBandwidth pipe(&engine, 10.0);
  double done_at = -1;
  pipe.start(100.0, [&] { done_at = engine.now(); });
  engine.run();
  EXPECT_NEAR(done_at, 10.0, 1e-9);
}

TEST(SharedBandwidthTest, TwoEqualTransfersShareFairly) {
  Engine engine;
  SharedBandwidth pipe(&engine, 10.0);
  double a_done = -1, b_done = -1;
  pipe.start(100.0, [&] { a_done = engine.now(); });
  pipe.start(100.0, [&] { b_done = engine.now(); });
  engine.run();
  // Each gets 5 units/s: both complete at t=20.
  EXPECT_NEAR(a_done, 20.0, 1e-9);
  EXPECT_NEAR(b_done, 20.0, 1e-9);
}

TEST(SharedBandwidthTest, LateArrivalSlowsEarlierTransfer) {
  Engine engine;
  SharedBandwidth pipe(&engine, 10.0);
  double a_done = -1, b_done = -1;
  pipe.start(100.0, [&] { a_done = engine.now(); });
  engine.schedule(5.0, [&] {
    pipe.start(50.0, [&] { b_done = engine.now(); });
  });
  engine.run();
  // A moves 50 units alone by t=5; then both share 5 u/s each, needing
  // 50 units each -> both finish at t=15.
  EXPECT_NEAR(a_done, 15.0, 1e-9);
  EXPECT_NEAR(b_done, 15.0, 1e-9);
}

TEST(SharedBandwidthTest, ShorterTransferFinishesFirstAndFreesShare) {
  Engine engine;
  SharedBandwidth pipe(&engine, 10.0);
  double small_done = -1, big_done = -1;
  pipe.start(200.0, [&] { big_done = engine.now(); });
  pipe.start(50.0, [&] { small_done = engine.now(); });
  engine.run();
  // Shared until the small job's 50 units finish at t=10; the big job then
  // has 150 units left alone at 10 u/s -> done at t=25.
  EXPECT_NEAR(small_done, 10.0, 1e-9);
  EXPECT_NEAR(big_done, 25.0, 1e-9);
}

TEST(SharedBandwidthTest, ZeroUnitCompletesImmediately) {
  Engine engine;
  SharedBandwidth pipe(&engine, 10.0);
  double done_at = -1;
  pipe.start(0.0, [&] { done_at = engine.now(); });
  engine.run();
  EXPECT_NEAR(done_at, 0.0, 1e-9);
}

TEST(SharedBandwidthTest, CompletionCallbackCanStartNewTransfer) {
  Engine engine;
  SharedBandwidth pipe(&engine, 10.0);
  double second_done = -1;
  pipe.start(100.0, [&] {
    pipe.start(100.0, [&] { second_done = engine.now(); });
  });
  engine.run();
  EXPECT_NEAR(second_done, 20.0, 1e-9);
}

TEST(SharedBandwidthTest, AccountsTotalTransferred) {
  Engine engine;
  SharedBandwidth pipe(&engine, 10.0);
  pipe.start(30.0, nullptr);
  pipe.start(70.0, nullptr);
  engine.run();
  EXPECT_NEAR(pipe.total_transferred(), 100.0, 1e-6);
  EXPECT_EQ(pipe.active(), 0u);
}

TEST(SharedBandwidthTest, InvalidCapacityThrows) {
  Engine engine;
  EXPECT_THROW(SharedBandwidth(&engine, 0.0), std::invalid_argument);
}

// -- FifoServer ------------------------------------------------------------------

TEST(FifoServerTest, SingleServerSerializes) {
  Engine engine;
  FifoServer fifo(&engine, 1);
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    fifo.submit(2.0, [&] { done.push_back(engine.now()); });
  }
  engine.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_NEAR(done[0], 2.0, 1e-9);
  EXPECT_NEAR(done[1], 4.0, 1e-9);
  EXPECT_NEAR(done[2], 6.0, 1e-9);
}

TEST(FifoServerTest, MultipleServersRunInParallel) {
  Engine engine;
  FifoServer fifo(&engine, 2);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) {
    fifo.submit(3.0, [&] { done.push_back(engine.now()); });
  }
  engine.run();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_NEAR(done[1], 3.0, 1e-9);
  EXPECT_NEAR(done[3], 6.0, 1e-9);
}

TEST(FifoServerTest, QueueDepthVisible) {
  Engine engine;
  FifoServer fifo(&engine, 1);
  fifo.submit(1.0, nullptr);
  fifo.submit(1.0, nullptr);
  fifo.submit(1.0, nullptr);
  EXPECT_EQ(fifo.busy(), 1u);
  EXPECT_EQ(fifo.queued(), 2u);
  engine.run();
  EXPECT_EQ(fifo.busy(), 0u);
  EXPECT_EQ(fifo.queued(), 0u);
}

// -- CapacityPool ------------------------------------------------------------------

TEST(CapacityPoolTest, TryAcquireRespectsCapacity) {
  Engine engine;
  CapacityPool pool(&engine, 100.0);
  EXPECT_TRUE(pool.try_acquire(60.0));
  EXPECT_FALSE(pool.try_acquire(50.0));
  EXPECT_TRUE(pool.try_acquire(40.0));
  EXPECT_DOUBLE_EQ(pool.available(), 0.0);
  EXPECT_DOUBLE_EQ(pool.in_use(), 100.0);
}

TEST(CapacityPoolTest, AcquireBlocksUntilRelease) {
  Engine engine;
  CapacityPool pool(&engine, 100.0);
  ASSERT_TRUE(pool.try_acquire(100.0));
  bool granted = false;
  pool.acquire(50.0, [&] { granted = true; });
  engine.run();
  EXPECT_FALSE(granted);
  EXPECT_EQ(pool.waiters(), 1u);
  pool.release(100.0);
  engine.run();
  EXPECT_TRUE(granted);
  EXPECT_DOUBLE_EQ(pool.in_use(), 50.0);
}

TEST(CapacityPoolTest, WaitersServedFifo) {
  Engine engine;
  CapacityPool pool(&engine, 10.0);
  ASSERT_TRUE(pool.try_acquire(10.0));
  std::vector<int> order;
  pool.acquire(5.0, [&] { order.push_back(1); });
  pool.acquire(5.0, [&] { order.push_back(2); });
  pool.release(10.0);
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(CapacityPoolTest, NoQueueJumpingPastWaiters) {
  Engine engine;
  CapacityPool pool(&engine, 10.0);
  ASSERT_TRUE(pool.try_acquire(8.0));
  pool.acquire(5.0, [] {});  // waits (only 2 available)
  // A small request that *would* fit must not bypass the FIFO.
  EXPECT_FALSE(pool.try_acquire(1.0));
}

TEST(CapacityPoolTest, ReleaseClampsAtCapacity) {
  Engine engine;
  CapacityPool pool(&engine, 10.0);
  pool.release(100.0);
  EXPECT_DOUBLE_EQ(pool.available(), 10.0);
}

}  // namespace
}  // namespace vmp::sim
