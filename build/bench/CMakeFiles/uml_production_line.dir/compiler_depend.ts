# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for uml_production_line.
