// Event-journal tests: flight-recorder ring semantics, the durable segment
// codec, torn-tail / mid-rotation crash tolerance on replay, and the
// lifecycle warm-start fold that brings hit/usage/clock history back after
// a crash (including the crash-at-every-prefix GDSF property).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "lifecycle/lifecycle.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "warehouse/warehouse.h"

namespace vmp::obs {
namespace {

using util::ErrorCode;

JournalRecord make_record(std::uint64_t seq, JournalEvent kind,
                          const std::string& id, std::int64_t bytes = 0) {
  JournalRecord r;
  r.seq = seq;
  r.kind = kind;
  r.time_s = 1.5 * static_cast<double>(seq);
  r.wall_s = 2.5 * static_cast<double>(seq);
  r.bytes_delta = bytes;
  r.aux = seq * 7;
  r.value = 0.125 * static_cast<double>(seq);
  r.image_id = id;
  return r;
}

void expect_equal(const JournalRecord& a, const JournalRecord& b) {
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_DOUBLE_EQ(a.time_s, b.time_s);
  EXPECT_DOUBLE_EQ(a.wall_s, b.wall_s);
  EXPECT_EQ(a.bytes_delta, b.bytes_delta);
  EXPECT_EQ(a.aux, b.aux);
  EXPECT_DOUBLE_EQ(a.value, b.value);
  EXPECT_EQ(a.image_id, b.image_id);
  EXPECT_EQ(a.trace_id, b.trace_id);
}

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("vmp-journal-test-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

// -- Codec ------------------------------------------------------------------

TEST_F(JournalTest, EncodeDecodeRoundTrips) {
  const JournalRecord in =
      make_record(42, JournalEvent::kEvictCommit, "golden-a", -123456789);
  std::string bytes;
  Journal::encode(in, &bytes);
  JournalRecord out;
  ASSERT_EQ(Journal::decode(bytes.data(), bytes.size(), &out), bytes.size());
  expect_equal(in, out);
}

TEST_F(JournalTest, TraceIdRoundTripsThroughCodec) {
  JournalRecord in =
      make_record(43, JournalEvent::kFaultFired, "store.remove@g3");
  in.trace_id = "trace-forensics-1";
  std::string bytes;
  Journal::encode(in, &bytes);
  JournalRecord out;
  ASSERT_EQ(Journal::decode(bytes.data(), bytes.size(), &out), bytes.size());
  expect_equal(in, out);
}

TEST_F(JournalTest, EmptyTraceEncodesAsLegacyLayout) {
  // A record appended outside any trace must stay byte-identical to the
  // pre-trace format: no trailing trace block at all, so old journals and
  // old readers interoperate in both directions.
  const JournalRecord untraced =
      make_record(44, JournalEvent::kPublishCommit, "golden-b", 512);
  JournalRecord traced = untraced;
  traced.trace_id = "t";
  std::string legacy_bytes, traced_bytes;
  Journal::encode(untraced, &legacy_bytes);
  Journal::encode(traced, &traced_bytes);
  // Legacy layout: frame (4) + payload (51 + id_len) + checksum (4).
  EXPECT_EQ(legacy_bytes.size(), 8u + 51u + untraced.image_id.size());
  // The traced layout appends exactly u16 trace_len + trace.
  EXPECT_EQ(traced_bytes.size(), legacy_bytes.size() + 2u + 1u);
  JournalRecord out;
  ASSERT_EQ(Journal::decode(legacy_bytes.data(), legacy_bytes.size(), &out),
            legacy_bytes.size());
  EXPECT_TRUE(out.trace_id.empty());
  expect_equal(untraced, out);
}

TEST_F(JournalTest, DecodeRejectsTruncationAtEveryLength) {
  std::string bytes;
  Journal::encode(make_record(7, JournalEvent::kLeaseAcquire, "img"), &bytes);
  JournalRecord out;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_EQ(Journal::decode(bytes.data(), len, &out), 0u) << len;
  }
}

TEST_F(JournalTest, DecodeRejectsAnySingleBitFlip) {
  std::string bytes;
  Journal::encode(make_record(9, JournalEvent::kReap, "victim", -64), &bytes);
  JournalRecord out;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    // A flip may survive only by masquerading as a different VALID record
    // (length prefix changes are caught by the length/checksum pair).
    if (Journal::decode(corrupt.data(), corrupt.size(), &out) != 0) {
      std::string reencoded;
      Journal::encode(out, &reencoded);
      EXPECT_EQ(reencoded, corrupt) << "flip at byte " << i;
    }
  }
}

TEST_F(JournalTest, EventNamesAreStable) {
  EXPECT_STREQ(journal_event_name(JournalEvent::kPublishCommit),
               "publish_commit");
  EXPECT_STREQ(journal_event_name(JournalEvent::kFaultFired), "fault_fired");
  EXPECT_STREQ(journal_event_name(static_cast<JournalEvent>(250)), "unknown");
}

// -- Flight recorder --------------------------------------------------------

TEST_F(JournalTest, RingKeepsNewestOldestFirst) {
  Journal journal(4);
  for (int i = 1; i <= 6; ++i) {
    journal.append(JournalEvent::kLeaseAcquire, "img" + std::to_string(i));
  }
  const std::vector<JournalRecord> ring = journal.ring();
  ASSERT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.front().image_id, "img3");
  EXPECT_EQ(ring.back().image_id, "img6");
  for (std::size_t i = 1; i < ring.size(); ++i) {
    EXPECT_LT(ring[i - 1].seq, ring[i].seq);
  }
  EXPECT_EQ(journal.appended(), 6u);
  journal.clear_ring();
  EXPECT_TRUE(journal.ring().empty());
  EXPECT_EQ(journal.appended(), 6u);  // lifetime count survives
}

TEST_F(JournalTest, RingJsonlHasOneObjectPerRecord) {
  Journal journal(8);
  journal.append(JournalEvent::kPublishCommit, "g\"1", 100, 2, 0.5);
  journal.append(JournalEvent::kEvictBegin, "g2");
  const std::string jsonl = journal.ring_jsonl();
  EXPECT_NE(jsonl.find("\"kind\": \"publish_commit\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\": \"evict_begin\""), std::string::npos);
  EXPECT_NE(jsonl.find("g\\\"1"), std::string::npos);  // escaped quote
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
}

TEST_F(JournalTest, FaultFiringsLandInGlobalRing) {
  Journal& journal = Journal::instance();  // installs the fire listener
  journal.clear_ring();
  fault::ScopedFaultPlan plan(
      fault::FaultPlan::parse("store.write:target=victim,times=1").value());
  EXPECT_TRUE(fault::check(fault::points::kStoreWrite, "other").ok());
  EXPECT_FALSE(fault::check(fault::points::kStoreWrite, "victim-dir").ok());
  const std::vector<JournalRecord> ring = journal.ring();
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring[0].kind, JournalEvent::kFaultFired);
  EXPECT_EQ(ring[0].image_id, "store.write@victim-dir");
}

// -- Durable sink -----------------------------------------------------------

TEST_F(JournalTest, DurableRoundTripAndReopenContinuesSeq) {
  {
    Journal journal;
    ASSERT_TRUE(journal.open_durable(dir_).ok());
    ASSERT_TRUE(journal.recovered().has_value());
    EXPECT_TRUE(journal.recovered()->records.empty());
    journal.append(JournalEvent::kPublishCommit, "g1", 1000);
    journal.append(JournalEvent::kLeaseAcquire, "g1", 0, 1);
    journal.close_durable();
  }
  auto replay = Journal::replay(dir_);
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay.value().torn_tail);
  ASSERT_EQ(replay.value().records.size(), 2u);
  EXPECT_EQ(replay.value().records[0].kind, JournalEvent::kPublishCommit);
  EXPECT_EQ(replay.value().records[0].bytes_delta, 1000);
  EXPECT_EQ(replay.value().last_seq, replay.value().records[1].seq);

  // Re-open: history is recovered, numbering continues past it, and the
  // new segment never touches the old ones.
  Journal reopened;
  ASSERT_TRUE(reopened.open_durable(dir_).ok());
  ASSERT_TRUE(reopened.recovered().has_value());
  EXPECT_EQ(reopened.recovered()->records.size(), 2u);
  reopened.append(JournalEvent::kEvictCommit, "g1", -1000);
  reopened.close_durable();
  auto again = Journal::replay(dir_);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again.value().records.size(), 3u);
  EXPECT_GT(again.value().records[2].seq, again.value().records[1].seq);
}

TEST_F(JournalTest, RotationSpreadsRecordsAcrossSegments) {
  JournalDurableConfig config;
  config.max_segment_bytes = 256;  // a few records per segment
  Journal journal;
  ASSERT_TRUE(journal.open_durable(dir_, config).ok());
  for (int i = 0; i < 32; ++i) {
    journal.append(JournalEvent::kLeaseAcquire, "golden-image-" +
                   std::to_string(i));
  }
  EXPECT_GT(journal.segments_open(), 1u);
  journal.close_durable();
  auto replay = Journal::replay(dir_);
  ASSERT_TRUE(replay.ok());
  EXPECT_GT(replay.value().segments, 1u);
  EXPECT_FALSE(replay.value().torn_tail);
  ASSERT_EQ(replay.value().records.size(), 32u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(replay.value().records[i].image_id,
              "golden-image-" + std::to_string(i));
  }
}

TEST_F(JournalTest, TornTailIsDroppedOnReplay) {
  {
    Journal journal;
    ASSERT_TRUE(journal.open_durable(dir_).ok());
    journal.append(JournalEvent::kPublishCommit, "g1", 500);
    journal.append(JournalEvent::kPublishCommit, "g2", 600);
    journal.close_durable();
  }
  // Crash mid-append: chop bytes off the last record.
  const std::filesystem::path segment = dir_ / "seg-000001.vmj";
  const auto full = std::filesystem::file_size(segment);
  std::filesystem::resize_file(segment, full - 5);

  auto replay = Journal::replay(dir_);
  ASSERT_TRUE(replay.ok()) << replay.error().to_string();
  EXPECT_TRUE(replay.value().torn_tail);
  ASSERT_EQ(replay.value().records.size(), 1u);
  EXPECT_EQ(replay.value().records[0].image_id, "g1");

  // A re-opened sink starts a FRESH segment (never appends to the torn
  // tail) and recovers the surviving prefix.
  Journal reopened;
  ASSERT_TRUE(reopened.open_durable(dir_).ok());
  ASSERT_TRUE(reopened.recovered().has_value());
  EXPECT_TRUE(reopened.recovered()->torn_tail);
  EXPECT_EQ(reopened.recovered()->records.size(), 1u);
  reopened.append(JournalEvent::kLeaseAcquire, "g1");
  reopened.close_durable();
  EXPECT_EQ(std::filesystem::file_size(segment), full - 5);  // untouched

  // Replaying AGAIN must not stop at seg-1's old torn tail: seg-2 holds the
  // post-crash history and segment starts are clean resync points.
  auto after = Journal::replay(dir_);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().torn_tail);
  ASSERT_EQ(after.value().records.size(), 2u);
  EXPECT_EQ(after.value().records[0].image_id, "g1");
  EXPECT_EQ(after.value().records[1].kind, JournalEvent::kLeaseAcquire);
  EXPECT_GT(after.value().records[1].seq, after.value().records[0].seq);
  EXPECT_EQ(after.value().last_seq, after.value().records[1].seq);

  // A third open sees BOTH segments' history and numbers past seg-2's tail,
  // so post-crash sequence numbers never repeat.
  Journal third;
  ASSERT_TRUE(third.open_durable(dir_).ok());
  ASSERT_TRUE(third.recovered().has_value());
  EXPECT_EQ(third.recovered()->records.size(), 2u);
  third.append(JournalEvent::kLeaseRelease, "g1");
  third.close_durable();
  auto final_replay = Journal::replay(dir_);
  ASSERT_TRUE(final_replay.ok());
  ASSERT_EQ(final_replay.value().records.size(), 3u);
  EXPECT_GT(final_replay.value().records[2].seq,
            final_replay.value().records[1].seq);
}

TEST_F(JournalTest, DeadSinkCountsDroppedAppends) {
  JournalDurableConfig config;
  config.max_segment_bytes = 64;  // roughly one record per segment
  Journal journal;
  ASSERT_TRUE(journal.open_durable(dir_, config).ok());
  journal.append(JournalEvent::kLeaseAcquire, "g1");
  EXPECT_EQ(journal.durable_dropped(), 0u);
  // Kill the journal directory: the next rotation's fopen fails and the
  // durable sink dies.  Every later append must be counted as dropped, and
  // segments_open() must stop claiming a live sink.
  std::filesystem::remove_all(dir_);
  for (int i = 0; i < 3; ++i) {
    journal.append(JournalEvent::kLeaseAcquire, "g2");
  }
  EXPECT_EQ(journal.segments_open(), 0u);
  EXPECT_EQ(journal.durable_dropped(), 3u);
  EXPECT_EQ(journal.ring().size(), 4u);  // the ring still has everything
  journal.close_durable();
}

TEST_F(JournalTest, ConcurrentAppendWhileSnapshotting) {
  // Writers hammer append() while readers race ring() / ring_jsonl() /
  // dump_ring_jsonl() against them.  Run under TSan (the `journal` label is
  // in the tsan-concurrency preset) this is the data-race proof for the
  // flight-recorder snapshot path; everywhere it checks that snapshots are
  // always internally consistent (strictly increasing sequence numbers).
  constexpr int kWriters = 4;
  constexpr int kAppendsPerWriter = 500;
  Journal journal(64);
  ASSERT_TRUE(journal.open_durable(dir_).ok());
  std::atomic<bool> stop{false};
  std::atomic<int> torn_snapshots{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&journal, w] {
      for (int i = 0; i < kAppendsPerWriter; ++i) {
        journal.append(JournalEvent::kLeaseAcquire,
                       "img" + std::to_string(w), w, static_cast<unsigned>(i));
      }
    });
  }
  const auto dump_path = (dir_ / "snapshot.jsonl").string();
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&journal, &stop, &torn_snapshots, dump_path, r] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::vector<JournalRecord> snap = journal.ring();
        for (std::size_t i = 1; i < snap.size(); ++i) {
          if (snap[i - 1].seq >= snap[i].seq) {
            torn_snapshots.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (r == 0) {
          (void)journal.ring_jsonl();
        } else {
          (void)journal.dump_ring_jsonl(dump_path);
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true, std::memory_order_relaxed);
  for (std::size_t i = kWriters; i < threads.size(); ++i) threads[i].join();
  EXPECT_EQ(torn_snapshots.load(), 0);
  EXPECT_EQ(journal.appended(),
            static_cast<std::uint64_t>(kWriters * kAppendsPerWriter));
  EXPECT_EQ(journal.durable_dropped(), 0u);
  journal.close_durable();
  const auto replay = Journal::replay(dir_);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().records.size(),
            static_cast<std::size_t>(kWriters * kAppendsPerWriter));
  EXPECT_FALSE(replay.value().torn_tail);
}

TEST_F(JournalTest, MidRotationCrashLeavesEmptySegment) {
  {
    Journal journal;
    ASSERT_TRUE(journal.open_durable(dir_).ok());
    journal.append(JournalEvent::kPublishCommit, "g1", 500);
    journal.close_durable();
  }
  // Crash between creating the next segment and writing its first record.
  std::ofstream(dir_ / "seg-000002.vmj").close();

  auto replay = Journal::replay(dir_);
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay.value().torn_tail);
  EXPECT_EQ(replay.value().segments, 2u);
  ASSERT_EQ(replay.value().records.size(), 1u);

  Journal reopened;
  ASSERT_TRUE(reopened.open_durable(dir_).ok());
  reopened.append(JournalEvent::kLeaseAcquire, "g1");
  reopened.close_durable();
  auto again = Journal::replay(dir_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().records.size(), 2u);
}

TEST_F(JournalTest, CorruptChecksumEndsReplayCleanly) {
  {
    Journal journal;
    ASSERT_TRUE(journal.open_durable(dir_).ok());
    journal.append(JournalEvent::kPublishCommit, "g1", 500);
    journal.append(JournalEvent::kPublishCommit, "g2", 600);
    journal.close_durable();
  }
  const std::filesystem::path segment = dir_ / "seg-000001.vmj";
  // Flip a byte inside the SECOND record's payload.
  std::string bytes;
  {
    std::ifstream in(segment, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() - 10] = static_cast<char>(bytes[bytes.size() - 10] ^ 0xff);
  {
    std::ofstream out(segment, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto replay = Journal::replay(dir_);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay.value().torn_tail);
  ASSERT_EQ(replay.value().records.size(), 1u);
  EXPECT_EQ(replay.value().records[0].image_id, "g1");
}

TEST_F(JournalTest, SecondOpenDurableFails) {
  Journal journal;
  ASSERT_TRUE(journal.open_durable(dir_).ok());
  auto status = journal.open_durable(dir_);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kFailedPrecondition);
  journal.close_durable();
  EXPECT_TRUE(journal.open_durable(dir_).ok());  // close re-enables
  journal.close_durable();
}

}  // namespace
}  // namespace vmp::obs

// ---------------------------------------------------------------------------
// Lifecycle integration: journaled transitions and the warm-start fold.
// ---------------------------------------------------------------------------

namespace vmp::lifecycle {
namespace {

using obs::Journal;
using obs::JournalEvent;
using obs::JournalRecord;

storage::MachineSpec spec_mb(std::uint64_t mem_mb, std::uint64_t disk_mb) {
  storage::MachineSpec spec;
  spec.os = "linux-mandrake-8.1";
  spec.memory_bytes = mem_mb << 20;
  spec.suspended = true;
  spec.disk = storage::DiskSpec{"disk0", disk_mb << 20, 2,
                                storage::DiskMode::kNonPersistent};
  return spec;
}

warehouse::GoldenImage golden(const std::string& id, std::uint64_t mem_mb,
                              std::uint64_t disk_mb) {
  warehouse::GoldenImage image;
  image.id = id;
  image.backend = "vmware-gsx";
  image.spec = spec_mb(mem_mb, disk_mb);
  image.guest.os = image.spec.os;
  return image;
}

class JournalLifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("vmp-journal-lc-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    open_store();
  }
  void TearDown() override {
    lifecycle_.reset();
    warehouse_.reset();
    store_.reset();
    journal_.reset();
    std::filesystem::remove_all(root_);
  }

  void open_store() {
    store_ = std::make_unique<storage::ArtifactStore>(root_);
    warehouse_ = std::make_unique<warehouse::Warehouse>(store_.get(),
                                                        "warehouse");
  }

  /// Fresh journal (durable sink under the store root) + fresh manager —
  /// what a process (re)start looks like.
  void make_manager(std::uint64_t budget, const std::string& policy = "gdsf",
                    bool durable = true) {
    journal_ = std::make_unique<Journal>();
    if (durable) {
      obs::JournalDurableConfig config;
      config.flush_each_append = true;  // every append survives the "crash"
      ASSERT_TRUE(journal_->open_durable(journal_dir(), config).ok());
    }
    LifecycleManager::Config config;
    config.disk_budget_bytes = budget;
    config.policy = policy;
    config.journal = journal_.get();
    auto manager = LifecycleManager::create(warehouse_.get(), config);
    ASSERT_TRUE(manager.ok()) << manager.error().to_string();
    lifecycle_ = std::move(manager).value();
  }

  /// "Crash": drop the manager and journal with no clean close, then come
  /// back up the way a restarted plant would — rescan + journal replay.
  void crash_and_restart(std::uint64_t budget,
                         const std::string& policy = "gdsf") {
    lifecycle_.reset();
    journal_.reset();  // fclose only; flush_each_append already persisted
    warehouse_.reset();
    store_.reset();
    open_store();
    make_manager(budget, policy);
    ASSERT_TRUE(lifecycle_->warm_start().ok());
  }

  std::filesystem::path journal_dir() const { return root_ / "journal"; }

  std::vector<JournalRecord> ring() const { return journal_->ring(); }

  std::size_t count(JournalEvent kind) const {
    std::size_t n = 0;
    for (const JournalRecord& r : ring()) {
      if (r.kind == kind) ++n;
    }
    return n;
  }

  std::filesystem::path root_;
  std::unique_ptr<Journal> journal_;
  std::unique_ptr<storage::ArtifactStore> store_;
  std::unique_ptr<warehouse::Warehouse> warehouse_;
  std::unique_ptr<LifecycleManager> lifecycle_;
};

TEST_F(JournalLifecycleTest, TransitionsAppendTypedRecords) {
  make_manager(0);
  ASSERT_TRUE(lifecycle_->publish(golden("g1", 8, 32)).ok());
  ASSERT_TRUE(lifecycle_->acquire("g1").ok());
  lifecycle_->release("g1");
  ASSERT_TRUE(lifecycle_->evict("g1").ok());

  EXPECT_EQ(count(JournalEvent::kPublishReserve), 1u);
  EXPECT_EQ(count(JournalEvent::kPublishCommit), 1u);
  EXPECT_EQ(count(JournalEvent::kLeaseAcquire), 1u);
  EXPECT_EQ(count(JournalEvent::kLeaseRelease), 1u);
  EXPECT_EQ(count(JournalEvent::kEvictBegin), 1u);
  EXPECT_EQ(count(JournalEvent::kEvictCommit), 1u);

  // The commit charged the measured footprint; the evict credited it back.
  std::int64_t committed = 0, evicted = 0;
  for (const JournalRecord& r : ring()) {
    if (r.kind == JournalEvent::kPublishCommit) committed = r.bytes_delta;
    if (r.kind == JournalEvent::kEvictCommit) evicted = r.bytes_delta;
  }
  EXPECT_GT(committed, 0);
  EXPECT_EQ(committed, -evicted);
}

TEST_F(JournalLifecycleTest, RejectAndZombieAndReapAreJournaled) {
  make_manager(0);
  ASSERT_TRUE(lifecycle_->publish(golden("g1", 8, 32)).ok());
  EXPECT_FALSE(lifecycle_->publish(golden("g1", 8, 32)).ok());  // duplicate
  EXPECT_EQ(count(JournalEvent::kPublishReject), 1u);

  ASSERT_TRUE(lifecycle_->acquire("g1").ok());
  ASSERT_TRUE(lifecycle_->evict("g1").ok());  // leased -> zombie
  EXPECT_EQ(count(JournalEvent::kZombify), 1u);
  lifecycle_->release("g1");  // last lease -> reap
  EXPECT_EQ(count(JournalEvent::kReap), 1u);
}

TEST_F(JournalLifecycleTest, HeadroomGaugeTracksLedgerAndReservations) {
  const std::uint64_t budget = 512ull << 20;
  make_manager(budget);
  EXPECT_EQ(lifecycle_->headroom_bytes(), static_cast<std::int64_t>(budget));
  ASSERT_TRUE(lifecycle_->publish(golden("g1", 8, 32)).ok());
  const std::int64_t after = lifecycle_->headroom_bytes();
  EXPECT_EQ(after, static_cast<std::int64_t>(budget) -
                       static_cast<std::int64_t>(lifecycle_->used_bytes()));
  EXPECT_LT(after, static_cast<std::int64_t>(budget));
  EXPECT_EQ(obs::MetricsRegistry::instance().snapshot().gauge(
                "lifecycle.headroom_bytes.gauge"),
            after);
  // Unlimited budget reports 0 (nothing to bid on).
  make_manager(0);
  EXPECT_EQ(lifecycle_->headroom_bytes(), 0);
}

TEST_F(JournalLifecycleTest, WarmStartRestoresHitsAndUseOrder) {
  make_manager(0);
  ASSERT_TRUE(lifecycle_->publish(golden("g1", 8, 32)).ok());
  ASSERT_TRUE(lifecycle_->publish(golden("g2", 8, 32)).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(lifecycle_->acquire("g1").ok());
    lifecycle_->release("g1");
  }
  ASSERT_TRUE(lifecycle_->acquire("g2").ok());
  lifecycle_->release("g2");
  ASSERT_TRUE(lifecycle_->acquire("g1").ok());
  lifecycle_->release("g1");

  crash_and_restart(0);

  const std::vector<ImageStats> stats = lifecycle_->stats();
  ASSERT_EQ(stats.size(), 2u);  // id order: g1, g2
  EXPECT_EQ(stats[0].hits, 4u);
  EXPECT_EQ(stats[1].hits, 1u);
  // g1 was used last: LRU order survives the crash.
  EXPECT_GT(stats[0].last_use_tick, stats[1].last_use_tick);
}

TEST_F(JournalLifecycleTest, ColdRestartWithoutJournalLosesHistory) {
  make_manager(0);
  ASSERT_TRUE(lifecycle_->publish(golden("g1", 8, 32)).ok());
  ASSERT_TRUE(lifecycle_->acquire("g1").ok());
  lifecycle_->release("g1");
  lifecycle_.reset();
  journal_.reset();
  make_manager(0, "gdsf", /*durable=*/false);
  ASSERT_TRUE(lifecycle_->warm_start().ok());
  const std::vector<ImageStats> stats = lifecycle_->stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].hits, 0u);  // the old behavior, still the fallback
}

TEST_F(JournalLifecycleTest, WarmStartRestoresGdsfClock) {
  make_manager(0);
  ASSERT_TRUE(lifecycle_->publish(golden("g1", 8, 32)).ok());
  ASSERT_TRUE(lifecycle_->publish(golden("g2", 8, 32)).ok());
  ASSERT_TRUE(lifecycle_->acquire("g2").ok());
  lifecycle_->release("g2");
  ASSERT_TRUE(lifecycle_->evict("g1").ok());  // advances the GDSF clock
  const double clock = lifecycle_->policy_clock();
  EXPECT_GT(clock, 0.0);

  crash_and_restart(0);
  EXPECT_DOUBLE_EQ(lifecycle_->policy_clock(), clock);
}

TEST_F(JournalLifecycleTest, ReplayToleratesTornTailFromLifecycleRun) {
  make_manager(0);
  ASSERT_TRUE(lifecycle_->publish(golden("g1", 8, 32)).ok());
  ASSERT_TRUE(lifecycle_->acquire("g1").ok());
  lifecycle_->release("g1");
  lifecycle_.reset();
  journal_.reset();
  // Crash tears the final record (the release).
  std::filesystem::path segment;
  for (const auto& entry :
       std::filesystem::directory_iterator(journal_dir())) {
    if (segment.empty() || entry.path() > segment) segment = entry.path();
  }
  std::filesystem::resize_file(segment,
                               std::filesystem::file_size(segment) - 3);
  warehouse_.reset();
  store_.reset();
  open_store();
  make_manager(0);
  ASSERT_TRUE(journal_->recovered().has_value());
  EXPECT_TRUE(journal_->recovered()->torn_tail);
  ASSERT_TRUE(lifecycle_->warm_start().ok());
  const std::vector<ImageStats> stats = lifecycle_->stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].hits, 1u);  // acquire survived; only the tail was lost
}

// -- Property: crash at EVERY prefix reproduces the live GDSF state ---------

/// GDSF priority exactly as GdsfPolicy computes it.
double gdsf_priority(double clock, const ImageStats& s) {
  const double size =
      static_cast<double>(s.physical_bytes == 0 ? 1 : s.physical_bytes);
  return clock + static_cast<double>(s.hits) * s.rebuild_cost_s / size;
}

TEST_F(JournalLifecycleTest, EveryCrashPrefixReplaysToLiveGdsfPriorities) {
  // A deterministic op script that exercises publish, reuse, eviction
  // (explicit and to-fit), zombies and reaps.  Budget ~3 images.
  using Op = std::function<void(LifecycleManager*)>;
  const std::uint64_t budget = 3 * ((8ull << 20) + (32ull << 20) + (1 << 20));
  std::vector<Op> ops;
  ops.push_back([](LifecycleManager* m) {
    ASSERT_TRUE(m->publish(golden("g1", 8, 32)).ok());
  });
  ops.push_back([](LifecycleManager* m) {
    ASSERT_TRUE(m->publish(golden("g2", 8, 32)).ok());
  });
  ops.push_back([](LifecycleManager* m) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(m->acquire("g1").ok());
      m->release("g1");
    }
  });
  ops.push_back([](LifecycleManager* m) {
    ASSERT_TRUE(m->publish(golden("g3", 8, 32)).ok());
  });
  ops.push_back([](LifecycleManager* m) {
    ASSERT_TRUE(m->acquire("g3").ok());
  });
  ops.push_back([](LifecycleManager* m) {
    ASSERT_TRUE(m->evict("g3").ok());  // leased -> zombie
  });
  ops.push_back([](LifecycleManager* m) {
    // Evicts the coldest unleased survivor to make room.
    ASSERT_TRUE(m->publish(golden("g4", 8, 32)).ok());
  });
  ops.push_back([](LifecycleManager* m) {
    m->release("g3");  // last lease: zombie reaped
  });
  ops.push_back([](LifecycleManager* m) {
    ASSERT_TRUE(m->acquire("g4").ok());
    m->release("g4");
  });

  for (std::size_t prefix = 0; prefix <= ops.size(); ++prefix) {
    SCOPED_TRACE("crash after op " + std::to_string(prefix));
    TearDown();
    SetUp();
    make_manager(budget);
    for (std::size_t i = 0; i < prefix; ++i) ops[i](lifecycle_.get());
    if (::testing::Test::HasFatalFailure()) return;

    // Live state at the crash point.
    std::map<std::string, double> live;
    const double live_clock = lifecycle_->policy_clock();
    for (const ImageStats& s : lifecycle_->stats()) {
      if (s.zombie) continue;  // dies with the crash (descriptor-less)
      live[s.id] = gdsf_priority(live_clock, s);
    }

    crash_and_restart(budget);
    if (::testing::Test::HasFatalFailure()) return;

    std::map<std::string, double> replayed;
    const double replayed_clock = lifecycle_->policy_clock();
    for (const ImageStats& s : lifecycle_->stats()) {
      replayed[s.id] = gdsf_priority(replayed_clock, s);
    }
    EXPECT_DOUBLE_EQ(replayed_clock, live_clock);
    ASSERT_EQ(replayed.size(), live.size());
    for (const auto& [id, priority] : live) {
      ASSERT_TRUE(replayed.count(id)) << id;
      EXPECT_DOUBLE_EQ(replayed[id], priority) << id;
    }
  }
}

}  // namespace
}  // namespace vmp::lifecycle
