// Configuration-DAG library: the workloads the paper's evaluation uses.
//
// The centerpiece is the In-VIGO virtual workspace of Figure 3:
//   S -> A(install Red Hat 8.0) -> B(install VNC server)
//          -> C(install Web File Manager)
//   then D(configure MAC/IP), E(create user), F(mount home dir) in any
//   order after C, then G(configure VNC) after D/E/F, H(start VNC) after G,
//   I(start File Manager) after G (paper's sorted order: ... G, I, H).
//
// The experiment golden machines are checkpointed after A..C; per-request
// configuration performs D..I (the paper's §4.2 "setup of the VM's network
// interface and of a user ID within the VM guest").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dag/dag.h"

namespace vmp::workload {

/// Per-request parameters for an In-VIGO workspace instance.
struct WorkspaceParams {
  std::string user = "arijit";
  std::string ip = "10.0.0.2";
  std::string mac = "02:56:4d:00:00:02";
  std::string home_server = "nfs://punch/home";
};

/// The full Figure-3 DAG (A..I) with per-request parameters substituted.
dag::ConfigDag invigo_workspace_dag(const WorkspaceParams& params);

/// Signatures of the actions a golden workspace image has performed
/// (A, B, C — the checkpointed prefix).
std::vector<std::string> invigo_golden_history();

/// Just the base-install prefix A..C as a DAG (for publishing goldens).
dag::ConfigDag invigo_base_dag();

/// A minimal two-action DAG (network + user), matching §4.2's description
/// of the measured configuration: cheap, used by throughput benches.
dag::ConfigDag minimal_config_dag(const std::string& user,
                                  const std::string& ip);

/// A randomized layered DAG for property tests and matching benches:
/// `layers` layers of `width` actions, edges from each node to a random
/// subset of the next layer.  Deterministic in `seed`.
dag::ConfigDag random_layered_dag(std::uint64_t seed, std::size_t layers,
                                  std::size_t width, double edge_density);

}  // namespace vmp::workload
