file(REMOVE_RECURSE
  "CMakeFiles/cost_function.dir/cost_function.cpp.o"
  "CMakeFiles/cost_function.dir/cost_function.cpp.o.d"
  "cost_function"
  "cost_function.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
