#include "xml/xml.h"

#include <cctype>
#include <cstdlib>

#include "util/strings.h"

namespace vmp::xml {

using util::Error;
using util::ErrorCode;
using util::Result;

// ---------------------------------------------------------------------------
// Element
// ---------------------------------------------------------------------------

bool Element::has_attr(const std::string& key) const {
  return attrs_.count(key) != 0;
}

const std::string& Element::attr(const std::string& key) const {
  static const std::string kEmpty;
  auto it = attrs_.find(key);
  return it == attrs_.end() ? kEmpty : it->second;
}

void Element::set_attr(const std::string& key, std::string value) {
  attrs_[key] = std::move(value);
}

long long Element::attr_int(const std::string& key, long long fallback) const {
  long long v = 0;
  if (has_attr(key) && util::parse_int64(attr(key), &v)) return v;
  return fallback;
}

double Element::attr_double(const std::string& key, double fallback) const {
  double v = 0;
  if (has_attr(key) && util::parse_double(attr(key), &v)) return v;
  return fallback;
}

Element& Element::add_child(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

Element& Element::adopt_child(std::unique_ptr<Element> child) {
  children_.push_back(std::move(child));
  return *children_.back();
}

const Element* Element::child(const std::string& name) const {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

Element* Element::child(const std::string& name) {
  for (auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::children_named(
    const std::string& name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

const std::string& Element::child_text(const std::string& name) const {
  static const std::string kEmpty;
  const Element* c = child(name);
  return c ? c->text() : kEmpty;
}

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

void Element::render(std::string* out, int indent, bool pretty) const {
  const std::string pad = pretty ? std::string(2 * indent, ' ') : std::string();
  *out += pad;
  *out += '<';
  *out += name_;
  for (const auto& [k, v] : attrs_) {
    *out += ' ';
    *out += k;
    *out += "=\"";
    *out += escape(v);
    *out += '"';
  }
  if (children_.empty() && text_.empty()) {
    *out += "/>";
    if (pretty) *out += '\n';
    return;
  }
  *out += '>';
  *out += escape(text_);
  if (!children_.empty()) {
    if (pretty) *out += '\n';
    for (const auto& c : children_) c->render(out, indent + 1, pretty);
    *out += pad;
  }
  *out += "</";
  *out += name_;
  *out += '>';
  if (pretty) *out += '\n';
}

std::string Element::to_string() const {
  std::string out;
  render(&out, 0, /*pretty=*/true);
  return out;
}

std::string Element::to_compact_string() const {
  std::string out;
  render(&out, 0, /*pretty=*/false);
  return out;
}

std::unique_ptr<Element> Element::clone() const {
  auto out = std::make_unique<Element>(name_);
  out->attrs_ = attrs_;
  out->text_ = text_;
  for (const auto& c : children_) out->children_.push_back(c->clone());
  return out;
}

bool Element::deep_equal(const Element& other) const {
  if (name_ != other.name_ || attrs_ != other.attrs_) return false;
  if (std::string(util::trim(text_)) != std::string(util::trim(other.text_))) {
    return false;
  }
  if (children_.size() != other.children_.size()) return false;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->deep_equal(*other.children_[i])) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<std::unique_ptr<Element>> parse_document() {
    skip_prolog();
    auto root = parse_element();
    if (!root.ok()) return root;
    skip_misc();
    if (pos_ != input_.size()) {
      return fail("trailing content after document element");
    }
    return root;
  }

 private:
  Error error(const std::string& message) const {
    return Error(ErrorCode::kParseError,
                 "xml: " + message + " at offset " + std::to_string(pos_));
  }
  Result<std::unique_ptr<Element>> fail(const std::string& message) const {
    return Result<std::unique_ptr<Element>>(error(message));
  }

  bool eof() const { return pos_ >= input_.size(); }
  char peek() const { return input_[pos_]; }
  bool consume(std::string_view token) {
    if (input_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  /// Skips whitespace, comments, and the XML declaration before the root.
  void skip_prolog() {
    skip_misc();
    if (consume("<?")) {
      const std::size_t end = input_.find("?>", pos_);
      pos_ = end == std::string_view::npos ? input_.size() : end + 2;
    }
    skip_misc();
  }

  /// Skips whitespace and comments.
  void skip_misc() {
    while (true) {
      skip_ws();
      if (consume("<!--")) {
        const std::size_t end = input_.find("-->", pos_);
        pos_ = end == std::string_view::npos ? input_.size() : end + 3;
        continue;
      }
      return;
    }
  }

  static bool is_name_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool is_name_char(char c) {
    return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.';
  }

  std::string parse_name() {
    std::string name;
    if (eof() || !is_name_start(peek())) return name;
    while (!eof() && is_name_char(peek())) name += input_[pos_++];
    return name;
  }

  /// Decode &amp; &lt; &gt; &quot; &apos; and numeric references.
  Result<std::string> decode_entities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out += raw[i++];
        continue;
      }
      const std::size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return Result<std::string>(error("unterminated entity"));
      }
      const std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") out += '&';
      else if (entity == "lt") out += '<';
      else if (entity == "gt") out += '>';
      else if (entity == "quot") out += '"';
      else if (entity == "apos") out += '\'';
      else if (!entity.empty() && entity[0] == '#') {
        long long cp = 0;
        const bool hex = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X');
        const std::string digits(entity.substr(hex ? 2 : 1));
        char* end = nullptr;
        cp = std::strtoll(digits.c_str(), &end, hex ? 16 : 10);
        if (end != digits.c_str() + digits.size() || cp < 0 || cp > 0x10FFFF) {
          return Result<std::string>(error("bad numeric character reference"));
        }
        // Encode as UTF-8.
        const auto c = static_cast<unsigned long>(cp);
        if (c < 0x80) {
          out += static_cast<char>(c);
        } else if (c < 0x800) {
          out += static_cast<char>(0xC0 | (c >> 6));
          out += static_cast<char>(0x80 | (c & 0x3F));
        } else if (c < 0x10000) {
          out += static_cast<char>(0xE0 | (c >> 12));
          out += static_cast<char>(0x80 | ((c >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (c & 0x3F));
        } else {
          out += static_cast<char>(0xF0 | (c >> 18));
          out += static_cast<char>(0x80 | ((c >> 12) & 0x3F));
          out += static_cast<char>(0x80 | ((c >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (c & 0x3F));
        }
      } else {
        return Result<std::string>(error("unknown entity &" + std::string(entity) + ";"));
      }
      i = semi + 1;
    }
    return out;
  }

  Result<std::unique_ptr<Element>> parse_element() {
    if (!consume("<")) return fail("expected '<'");
    const std::string name = parse_name();
    if (name.empty()) return fail("expected element name");
    auto element = std::make_unique<Element>(name);

    // Attributes.
    while (true) {
      skip_ws();
      if (eof()) return fail("unterminated start tag");
      if (consume("/>")) return element;
      if (consume(">")) break;
      const std::string key = parse_name();
      if (key.empty()) return fail("expected attribute name");
      skip_ws();
      if (!consume("=")) return fail("expected '=' after attribute name");
      skip_ws();
      if (eof() || (peek() != '"' && peek() != '\'')) {
        return fail("expected quoted attribute value");
      }
      const char quote = input_[pos_++];
      const std::size_t end = input_.find(quote, pos_);
      if (end == std::string_view::npos) {
        return fail("unterminated attribute value");
      }
      auto decoded = decode_entities(input_.substr(pos_, end - pos_));
      if (!decoded.ok()) return decoded.propagate<std::unique_ptr<Element>>();
      if (element->has_attr(key)) return fail("duplicate attribute " + key);
      element->set_attr(key, std::move(decoded).value());
      pos_ = end + 1;
    }

    // Content.
    while (true) {
      if (eof()) return fail("unterminated element <" + name + ">");
      if (consume("</")) {
        const std::string closing = parse_name();
        skip_ws();
        if (!consume(">")) return fail("malformed end tag");
        if (closing != name) {
          return fail("mismatched end tag </" + closing + "> for <" + name + ">");
        }
        return element;
      }
      if (consume("<!--")) {
        const std::size_t end = input_.find("-->", pos_);
        if (end == std::string_view::npos) return fail("unterminated comment");
        pos_ = end + 3;
        continue;
      }
      if (consume("<![CDATA[")) {
        const std::size_t end = input_.find("]]>", pos_);
        if (end == std::string_view::npos) return fail("unterminated CDATA");
        element->append_text(input_.substr(pos_, end - pos_));
        pos_ = end + 3;
        continue;
      }
      if (peek() == '<') {
        auto child = parse_element();
        if (!child.ok()) return child;
        element->adopt_child(std::move(child).value());
        continue;
      }
      // Character data up to the next '<'.
      const std::size_t end = input_.find('<', pos_);
      if (end == std::string_view::npos) return fail("unterminated content");
      auto decoded = decode_entities(input_.substr(pos_, end - pos_));
      if (!decoded.ok()) return decoded.propagate<std::unique_ptr<Element>>();
      element->append_text(decoded.value());
      pos_ = end;
    }
  }

  std::string_view input_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<Element>> parse(std::string_view input) {
  return Parser(input).parse_document();
}

}  // namespace vmp::xml
