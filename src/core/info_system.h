// The per-plant VM Information System and VM monitor.
//
// Paper, Figure 2: "The VM information system maintains state about
// currently active machines (including dynamic information gathered by a VM
// monitor)."  And Section 3.1: "The classad of an active virtual machine is
// maintained by its corresponding VMPlant, but it is not part of the state
// that needs to be maintained by VMShop, thus facilitating service
// restoration in the presence of failures."
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>
#include <string>
#include <vector>

#include "classad/classad.h"
#include "hypervisor/hypervisor.h"
#include "util/error.h"

namespace vmp::core {

/// Reserved id prefix for observability classads published by the monitor
/// (DESIGN.md §8): "obs://metrics" holds the process-wide metrics snapshot,
/// "obs://trace/<vm_id>" a per-VM span summary, "obs://tail/<trace_id>" a
/// retained tail exemplar (DESIGN.md §14).  The fleet aggregator
/// (core/fleet.h, DESIGN.md §9) additionally publishes
/// "obs://health/<plant>" per-plant SLO verdicts and "obs://fleet/metrics",
/// the cross-plant rollup, into the shop-side store.  These are not VMs:
/// vm_ids() still lists them (they live in the same store), but monitor
/// refreshes skip them.
inline constexpr char kObsAdPrefix[] = "obs://";
inline constexpr char kObsMetricsId[] = "obs://metrics";
inline constexpr char kObsTracePrefix[] = "obs://trace/";
inline constexpr char kObsTailPrefix[] = "obs://tail/";
inline constexpr char kObsHealthPrefix[] = "obs://health/";
inline constexpr char kObsBrokerPrefix[] = "obs://broker/";
inline constexpr char kObsFleetMetricsId[] = "obs://fleet/metrics";

class VmInformationSystem {
 public:
  /// Store (or replace) the classad for a VM.
  void store(const std::string& vm_id, classad::ClassAd ad);

  util::Result<classad::ClassAd> query(const std::string& vm_id) const;
  bool contains(const std::string& vm_id) const;
  util::Status remove(const std::string& vm_id);

  /// Merge attribute updates into an existing ad (monitor refresh).
  util::Status update(const std::string& vm_id,
                      const classad::ClassAd& updates);

  std::vector<std::string> vm_ids() const;
  std::size_t size() const;

  /// Remove every ad whose id starts with `prefix`; returns how many.
  std::size_t remove_prefixed(const std::string& prefix);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, classad::ClassAd> ads_;
};

/// The VM monitor: polls the hypervisor and refreshes dynamic attributes
/// (power state, resident memory, connected ISOs) in the information
/// system.  Deployments may invoke it explicitly per query, or run it
/// continuously on a background thread (start_periodic), like the paper's
/// "dynamic information gathered by a VM monitor" in Figure 2.
class VmMonitor {
 public:
  VmMonitor(hv::Hypervisor* hypervisor, VmInformationSystem* info)
      : hypervisor_(hypervisor), info_(info) {}
  ~VmMonitor() { stop_periodic(); }

  VmMonitor(const VmMonitor&) = delete;
  VmMonitor& operator=(const VmMonitor&) = delete;

  /// Refresh one VM; kNotFound if the hypervisor no longer knows it.
  util::Status refresh(const std::string& vm_id);

  /// Refresh every VM the info system tracks; returns how many succeeded.
  std::size_t refresh_all();

  /// Run refresh_all() on a background thread every `interval`.
  /// Idempotent; stop with stop_periodic().  The monitor only ever reads
  /// snapshot_vm() copies taken under the hypervisor's internal lock, so
  /// sweeps are safe against concurrent creates/collects (DESIGN.md §10).
  void start_periodic(std::chrono::milliseconds interval);
  void stop_periodic();
  bool periodic_running() const { return thread_.joinable(); }
  /// Completed refresh sweeps since start_periodic.
  std::uint64_t sweeps() const { return sweeps_.load(); }

  /// Publish observability classads (obs://metrics + obs://trace/<vm_id>)
  /// into the information system on every sweep.  Off by default; each
  /// explicit refresh_all() and every periodic sweep republishes while
  /// enabled.  stop_periodic() removes the obs:// ads so a stopped monitor
  /// leaves no stale observability state behind.
  void enable_obs_export();
  void disable_obs_export();
  bool obs_export_enabled() const { return obs_export_.load(); }

  /// Publish the obs:// ads immediately (no-op unless export is enabled).
  /// VmPlant calls this before serving an obs:// query so a remote puller
  /// (the fleet aggregator) always sees a fresh snapshot, even between
  /// sweeps.
  void publish_obs_ads();

 private:
  hv::Hypervisor* hypervisor_;
  VmInformationSystem* info_;
  std::thread thread_;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> sweeps_{0};
  std::atomic<bool> obs_export_{false};
};

}  // namespace vmp::core
