#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace vmp::obs {

void Timer::record(double seconds) {
  log_hist_.record(seconds);  // lock-free
  std::lock_guard<std::mutex> lock(mutex_);
  summary_.add(seconds);
  if (histogram_) histogram_->add(seconds);
}

void Timer::set_bins(double lo, double hi, double width) {
  std::lock_guard<std::mutex> lock(mutex_);
  histogram_ = std::make_unique<util::Histogram>(lo, hi, width);
}

util::Summary Timer::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return summary_;
}

std::optional<util::Histogram> Timer::histogram() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!histogram_) return std::nullopt;
  return *histogram_;
}

namespace {
/// Classad-folded spelling of a metric name (mirrors obs::attr_name; kept
/// local to avoid an include cycle with export.h).
std::string fold_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}
}  // namespace

void TimerStats::refresh_quantiles() {
  if (hist.empty()) return;
  p50_s = hist.quantile(0.50);
  p90_s = hist.quantile(0.90);
  p99_s = hist.quantile(0.99);
  p999_s = hist.quantile(0.999);
}

void TimerStats::merge(const TimerStats& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  min_s = std::min(min_s, other.min_s);
  max_s = std::max(max_s, other.max_s);
  count += other.count;
  sum_s += other.sum_s;
  mean_s = sum_s / static_cast<double>(count);
  // A side without a histogram (stats reconstructed from a legacy ad)
  // still contributed its count/sum above; remember its exported
  // quantiles so they widen the recomputed ones instead of being
  // silently dropped from the rollup.
  double legacy_p50 = 0.0, legacy_p90 = 0.0, legacy_p99 = 0.0,
         legacy_p999 = 0.0;
  if (hist.empty()) {
    legacy_p50 = p50_s;
    legacy_p90 = p90_s;
    legacy_p99 = p99_s;
    legacy_p999 = p999_s;
  }
  if (other.hist.empty()) {
    legacy_p50 = std::max(legacy_p50, other.p50_s);
    legacy_p90 = std::max(legacy_p90, other.p90_s);
    legacy_p99 = std::max(legacy_p99, other.p99_s);
    legacy_p999 = std::max(legacy_p999, other.p999_s);
  }
  hist.merge(other.hist);
  if (!hist.empty()) {
    refresh_quantiles();
    p50_s = std::max(p50_s, legacy_p50);
    p90_s = std::max(p90_s, legacy_p90);
    p99_s = std::max(p99_s, legacy_p99);
    p999_s = std::max(p999_s, legacy_p999);
  } else {
    // No histograms on either side: the worse of the exported quantiles.
    p50_s = legacy_p50;
    p90_s = legacy_p90;
    p99_s = legacy_p99;
    p999_s = legacy_p999;
  }
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  if (it == counters.end()) it = counters.find(fold_name(name));
  return it == counters.end() ? 0 : it->second;
}

std::int64_t MetricsSnapshot::gauge(const std::string& name) const {
  auto it = gauges.find(name);
  if (it == gauges.end()) it = gauges.find(fold_name(name));
  return it == gauges.end() ? 0 : it->second;
}

const TimerStats* MetricsSnapshot::timer_stats(const std::string& name) const {
  auto it = timers.find(name);
  if (it == timers.end()) it = timers.find(fold_name(name));
  return it == timers.end() ? nullptr : &it->second;
}

std::optional<double> MetricsSnapshot::ratio(
    const std::string& hit_counter, const std::string& miss_counter) const {
  const double hits = static_cast<double>(counter(hit_counter));
  const double misses = static_cast<double>(counter(miss_counter));
  if (hits + misses > 0.0) return hits / (hits + misses);
  // Pre-merged fleet snapshots may carry only the derived ratio.
  auto it = derived.find(fold_name(hit_counter) + "/" + fold_name(miss_counter));
  if (it != derived.end()) return it->second;
  return std::nullopt;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] += value;
  for (const auto& [name, stats] : other.timers) timers[name].merge(stats);
  for (const auto& [name, value] : other.derived) derived.emplace(name, value);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Timer* MetricsRegistry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<Timer>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, timer] : timers_) {
    const util::Summary s = timer->summary();
    TimerStats stats;
    stats.count = s.count();
    stats.sum_s = s.sum();
    stats.mean_s = s.mean();
    stats.min_s = s.min();
    stats.max_s = s.max();
    stats.hist = timer->quantile_histogram();
    stats.refresh_quantiles();
    snap.timers[name] = stats;
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Handed-out pointers must stay valid: reset in place by replacing the
  // pointees' state, not the slots.
  for (auto& [name, counter] : counters_) {
    counter->~Counter();
    new (counter.get()) Counter();
  }
  for (auto& [name, gauge] : gauges_) gauge->set(0);
  for (auto& [name, timer] : timers_) {
    timer->~Timer();
    new (timer.get()) Timer();
  }
}

std::vector<std::string> MetricsRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(counters_.size() + gauges_.size() + timers_.size());
  for (const auto& [name, c] : counters_) out.push_back(name);
  for (const auto& [name, g] : gauges_) out.push_back(name);
  for (const auto& [name, t] : timers_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

std::string render_metrics_text(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  char line[256];
  if (!snapshot.counters.empty()) {
    out << "counters:\n";
    for (const auto& [name, value] : snapshot.counters) {
      std::snprintf(line, sizeof(line), "  %-40s %12llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      out << line;
    }
  }
  if (!snapshot.gauges.empty()) {
    out << "gauges:\n";
    for (const auto& [name, value] : snapshot.gauges) {
      std::snprintf(line, sizeof(line), "  %-40s %12lld\n", name.c_str(),
                    static_cast<long long>(value));
      out << line;
    }
  }
  if (!snapshot.timers.empty()) {
    out << "timers:\n";
    for (const auto& [name, stats] : snapshot.timers) {
      std::snprintf(
          line, sizeof(line),
          "  %-40s n=%-8zu mean=%.6fs min=%.6fs max=%.6fs p50=%.6fs "
          "p99=%.6fs\n",
          name.c_str(), stats.count, stats.mean_s, stats.min_s, stats.max_s,
          stats.p50_s, stats.p99_s);
      out << line;
    }
  }
  return out.str();
}

}  // namespace vmp::obs
