#include "classad/matchmaker.h"

#include <algorithm>

namespace vmp::classad {

bool requirements_hold(const ClassAd& ad, const ClassAd& other,
                       bool default_when_absent) {
  if (!ad.has("Requirements")) return default_when_absent;
  const Value v = ad.evaluate("Requirements", &other);
  return v.type() == ValueType::kBoolean && v.as_boolean();
}

bool symmetric_match(const ClassAd& request, const ClassAd& candidate) {
  return requirements_hold(request, candidate) &&
         requirements_hold(candidate, request);
}

double rank_of(const ClassAd& request, const ClassAd& candidate) {
  if (!request.has("Rank")) return 0.0;
  const Value v = request.evaluate("Rank", &candidate);
  return v.is_number() ? v.as_number() : 0.0;
}

std::vector<MatchResult> match_all(const ClassAd& request,
                                   const std::vector<ClassAd>& candidates) {
  std::vector<MatchResult> out;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (symmetric_match(request, candidates[i])) {
      out.push_back({i, rank_of(request, candidates[i])});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const MatchResult& a, const MatchResult& b) {
                     return a.rank > b.rank;
                   });
  return out;
}

std::optional<MatchResult> match_best(const ClassAd& request,
                                      const std::vector<ClassAd>& candidates) {
  auto all = match_all(request, candidates);
  if (all.empty()) return std::nullopt;
  return all.front();
}

}  // namespace vmp::classad
