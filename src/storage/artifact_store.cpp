#include "storage/artifact_store.h"

#include <algorithm>
#include <fstream>
#include <system_error>

#include <sys/stat.h>

#include <optional>

#include "fault/fault.h"

namespace vmp::storage {

namespace fs = std::filesystem;
using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

/// Allocated 512-byte blocks of a file (follows symlinks), or nullopt when
/// the platform call fails.  Used to detect sparse sources in copy_file.
std::optional<std::uint64_t> sparse_block_hint(const fs::path& path) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) return std::nullopt;
  return static_cast<std::uint64_t>(st.st_blocks);
}

}  // namespace

IoAccounting& IoAccounting::operator+=(const IoAccounting& other) {
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  files_touched += other.files_touched;
  links_created += other.links_created;
  bytes_freed += other.bytes_freed;
  return *this;
}

ArtifactStore::ArtifactStore(fs::path root) : root_(std::move(root)) {
  fs::create_directories(root_);
}

Result<fs::path> ArtifactStore::resolve(const std::string& relative) const {
  const fs::path p(relative);
  if (p.is_absolute()) {
    return Result<fs::path>(
        Error(ErrorCode::kInvalidArgument,
              "absolute path not allowed in store: " + relative));
  }
  for (const auto& part : p) {
    if (part == "..") {
      return Result<fs::path>(
          Error(ErrorCode::kInvalidArgument,
                "path traversal not allowed in store: " + relative));
    }
  }
  return root_ / p;
}

bool ArtifactStore::exists(const std::string& relative) const {
  auto p = resolve(relative);
  if (!p.ok()) return false;
  std::error_code ec;
  // symlink_status: a dangling symlink still "exists" as an artefact.
  return fs::symlink_status(p.value(), ec).type() != fs::file_type::not_found &&
         !ec;
}

bool ArtifactStore::is_symlink(const std::string& relative) const {
  auto p = resolve(relative);
  if (!p.ok()) return false;
  std::error_code ec;
  return fs::is_symlink(p.value(), ec) && !ec;
}

Result<std::uint64_t> ArtifactStore::file_size(const std::string& relative) const {
  auto p = resolve(relative);
  if (!p.ok()) return p.propagate<std::uint64_t>();
  std::error_code ec;
  if (fs::is_symlink(p.value(), ec)) return std::uint64_t{0};  // link itself
  const auto size = fs::file_size(p.value(), ec);
  if (ec) {
    return Result<std::uint64_t>(
        Error(ErrorCode::kNotFound, "file_size(" + relative + "): " + ec.message()));
  }
  return static_cast<std::uint64_t>(size);
}

Result<std::uint64_t> ArtifactStore::logical_size(const std::string& relative) const {
  auto p = resolve(relative);
  if (!p.ok()) return p.propagate<std::uint64_t>();
  std::error_code ec;
  if (fs::is_symlink(p.value(), ec) && !fs::exists(p.value(), ec)) {
    // The link exists but its target does not: a stale reference to an
    // evicted or half-removed base image, not an ordinary missing file.
    return Result<std::uint64_t>(
        Error(ErrorCode::kFailedPrecondition,
              "logical_size(" + relative + "): dangling symlink (target " +
                  fs::read_symlink(p.value(), ec).string() + " is gone)"));
  }
  const auto size = fs::file_size(p.value(), ec);  // follows symlinks
  if (ec) {
    return Result<std::uint64_t>(
        Error(ErrorCode::kNotFound,
              "logical_size(" + relative + "): " + ec.message()));
  }
  return static_cast<std::uint64_t>(size);
}

Result<TreeFootprint> ArtifactStore::tree_footprint(
    const std::string& relative) const {
  auto p = resolve(relative);
  if (!p.ok()) return p.propagate<TreeFootprint>();
  std::error_code ec;
  const auto status = fs::symlink_status(p.value(), ec);
  if (ec || status.type() == fs::file_type::not_found) {
    return Result<TreeFootprint>(
        Error(ErrorCode::kNotFound, "tree_footprint(" + relative + "): " +
                                        (ec ? ec.message() : "no such path")));
  }
  TreeFootprint fp;
  auto add_entry = [&fp](const fs::path& path) {
    std::error_code entry_ec;
    if (fs::is_symlink(path, entry_ec)) {
      ++fp.links;
      return;
    }
    if (fs::is_regular_file(path, entry_ec)) {
      ++fp.files;
      const auto size = fs::file_size(path, entry_ec);
      if (!entry_ec) fp.physical_bytes += static_cast<std::uint64_t>(size);
    }
  };
  if (status.type() == fs::file_type::directory) {
    for (const auto& entry :
         fs::recursive_directory_iterator(p.value(), ec)) {
      add_entry(entry.path());
    }
    if (ec) {
      return Result<TreeFootprint>(
          Error(ErrorCode::kInternal,
                "tree_footprint(" + relative + ") walk: " + ec.message()));
    }
  } else {
    add_entry(p.value());
  }
  return fp;
}

Result<std::vector<std::string>> ArtifactStore::list_dir(
    const std::string& relative) const {
  auto p = resolve(relative);
  if (!p.ok()) return p.propagate<std::vector<std::string>>();
  std::error_code ec;
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(p.value(), ec)) {
    out.push_back(entry.path().filename().string());
  }
  if (ec) {
    return Result<std::vector<std::string>>(
        Error(ErrorCode::kNotFound, "list_dir(" + relative + "): " + ec.message()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status ArtifactStore::make_dir(const std::string& relative) {
  auto p = resolve(relative);
  if (!p.ok()) return p.error();
  std::error_code ec;
  fs::create_directories(p.value(), ec);
  if (ec) {
    return Status(ErrorCode::kInternal,
                  "make_dir(" + relative + "): " + ec.message());
  }
  return Status();
}

Result<IoAccounting> ArtifactStore::create_sparse_file(
    const std::string& relative, std::uint64_t size) {
  if (auto injected = fault::check(fault::points::kStoreWrite, relative);
      !injected.ok()) {
    return injected.propagate<IoAccounting>();
  }
  auto p = resolve(relative);
  if (!p.ok()) return p.propagate<IoAccounting>();
  std::error_code ec;
  fs::create_directories(p.value().parent_path(), ec);
  std::ofstream out(p.value(), std::ios::binary | std::ios::trunc);
  if (!out) {
    return Result<IoAccounting>(
        Error(ErrorCode::kInternal, "cannot create " + relative));
  }
  if (size > 0) {
    out.seekp(static_cast<std::streamoff>(size - 1));
    out.put('\0');
  }
  if (!out) {
    return Result<IoAccounting>(
        Error(ErrorCode::kInternal, "cannot size " + relative));
  }
  IoAccounting acct;
  acct.bytes_written = size;
  acct.files_touched = 1;
  account(acct);
  return acct;
}

Result<IoAccounting> ArtifactStore::write_file(const std::string& relative,
                                               const std::string& content) {
  if (auto injected = fault::check(fault::points::kStoreWrite, relative);
      !injected.ok()) {
    return injected.propagate<IoAccounting>();
  }
  auto p = resolve(relative);
  if (!p.ok()) return p.propagate<IoAccounting>();
  std::error_code ec;
  fs::create_directories(p.value().parent_path(), ec);
  std::ofstream out(p.value(), std::ios::binary | std::ios::trunc);
  if (!out) {
    return Result<IoAccounting>(
        Error(ErrorCode::kInternal, "cannot write " + relative));
  }
  out << content;
  if (!out) {
    return Result<IoAccounting>(
        Error(ErrorCode::kInternal, "short write to " + relative));
  }
  IoAccounting acct;
  acct.bytes_written = content.size();
  acct.files_touched = 1;
  account(acct);
  return acct;
}

Result<std::string> ArtifactStore::read_file(const std::string& relative) const {
  if (auto injected = fault::check(fault::points::kStoreRead, relative);
      !injected.ok()) {
    return injected.propagate<std::string>();
  }
  auto p = resolve(relative);
  if (!p.ok()) return p.propagate<std::string>();
  std::ifstream in(p.value(), std::ios::binary);
  if (!in) {
    return Result<std::string>(
        Error(ErrorCode::kNotFound, "cannot read " + relative));
  }
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return content;
}

Result<IoAccounting> ArtifactStore::append_file(const std::string& relative,
                                                const std::string& content) {
  if (auto injected = fault::check(fault::points::kStoreWrite, relative);
      !injected.ok()) {
    return injected.propagate<IoAccounting>();
  }
  auto p = resolve(relative);
  if (!p.ok()) return p.propagate<IoAccounting>();
  std::ofstream out(p.value(), std::ios::binary | std::ios::app);
  if (!out) {
    return Result<IoAccounting>(
        Error(ErrorCode::kInternal, "cannot append to " + relative));
  }
  out << content;
  IoAccounting acct;
  acct.bytes_written = content.size();
  acct.files_touched = 1;
  account(acct);
  return acct;
}

Result<IoAccounting> ArtifactStore::copy_file(const std::string& from,
                                              const std::string& to) {
  if (auto injected = fault::check(fault::points::kStoreWrite, to);
      !injected.ok()) {
    return injected.propagate<IoAccounting>();
  }
  auto from_p = resolve(from);
  if (!from_p.ok()) return from_p.propagate<IoAccounting>();
  auto to_p = resolve(to);
  if (!to_p.ok()) return to_p.propagate<IoAccounting>();

  auto size = logical_size(from);
  if (!size.ok()) return size.propagate<IoAccounting>();

  std::error_code ec;
  fs::create_directories(to_p.value().parent_path(), ec);

  // Sparse fast path: multi-gigabyte virtual disks and memory checkpoints
  // are created as holes (create_sparse_file).  Byte-copying holes would
  // write the zeros out for real, so a fully sparse source is recreated as
  // a sparse target instead.  The accounting still charges the logical
  // size — the simulated cluster bills transfer time for it as the real
  // testbed would.
  const auto blocks = sparse_block_hint(from_p.value());
  if (size.value() >= 1 << 20 && blocks.has_value() &&
      *blocks * 512 < size.value() / 2) {
    std::ofstream out(to_p.value(), std::ios::binary | std::ios::trunc);
    if (!out) {
      return Result<IoAccounting>(
          Error(ErrorCode::kInternal, "cannot create " + to));
    }
    if (size.value() > 0) {
      out.seekp(static_cast<std::streamoff>(size.value() - 1));
      out.put('\0');
    }
  } else {
    fs::copy_file(from_p.value(), to_p.value(),
                  fs::copy_options::overwrite_existing, ec);
    if (ec) {
      return Result<IoAccounting>(
          Error(ErrorCode::kInternal,
                "copy " + from + " -> " + to + ": " + ec.message()));
    }
  }
  IoAccounting acct;
  acct.bytes_read = size.value();
  acct.bytes_written = size.value();
  acct.files_touched = 2;
  account(acct);
  return acct;
}

Result<IoAccounting> ArtifactStore::link_file(const std::string& from,
                                              const std::string& to) {
  if (auto injected = fault::check(fault::points::kStoreWrite, to);
      !injected.ok()) {
    return injected.propagate<IoAccounting>();
  }
  auto from_p = resolve(from);
  if (!from_p.ok()) return from_p.propagate<IoAccounting>();
  auto to_p = resolve(to);
  if (!to_p.ok()) return to_p.propagate<IoAccounting>();
  if (!exists(from)) {
    return Result<IoAccounting>(
        Error(ErrorCode::kNotFound, "link source missing: " + from));
  }
  std::error_code ec;
  fs::create_directories(to_p.value().parent_path(), ec);
  // Link target stored as absolute path; clone directories move rarely, and
  // absolute links keep reads working from any CWD.
  fs::create_symlink(fs::absolute(from_p.value()), to_p.value(), ec);
  if (ec) {
    return Result<IoAccounting>(
        Error(ErrorCode::kInternal,
              "link " + to + " -> " + from + ": " + ec.message()));
  }
  IoAccounting acct;
  acct.links_created = 1;
  acct.files_touched = 1;
  account(acct);
  return acct;
}

Result<IoAccounting> ArtifactStore::copy_tree(const std::string& from,
                                              const std::string& to) {
  auto from_p = resolve(from);
  if (!from_p.ok()) return from_p.propagate<IoAccounting>();
  auto to_p = resolve(to);
  if (!to_p.ok()) return to_p.propagate<IoAccounting>();
  std::error_code ec;
  if (!fs::is_directory(from_p.value(), ec) || ec) {
    return Result<IoAccounting>(
        Error(ErrorCode::kNotFound, "copy_tree source not a directory: " + from));
  }
  if (exists(to)) {
    return Result<IoAccounting>(
        Error(ErrorCode::kAlreadyExists, "copy_tree target exists: " + to));
  }
  VMP_RETURN_IF_ERROR_AS(make_dir(to), IoAccounting);

  IoAccounting total;
  for (const auto& entry :
       fs::recursive_directory_iterator(from_p.value(), ec)) {
    // Lexical relativization only: fs::relative canonicalizes through
    // symlinks, which would rename a link entry to its target's path.
    const std::string rel =
        entry.path().lexically_relative(from_p.value()).string();
    const std::string target = to + "/" + rel;
    if (entry.is_symlink()) {
      const fs::path link_target = fs::read_symlink(entry.path(), ec);
      auto target_p = resolve(target);
      if (!target_p.ok()) return target_p.propagate<IoAccounting>();
      fs::create_directories(target_p.value().parent_path(), ec);
      fs::create_symlink(link_target, target_p.value(), ec);
      if (ec) {
        return Result<IoAccounting>(Error(
            ErrorCode::kInternal, "copy_tree link " + target + ": " + ec.message()));
      }
      IoAccounting acct;
      acct.links_created = 1;
      acct.files_touched = 1;
      total += acct;
      account(acct);
    } else if (entry.is_directory()) {
      VMP_RETURN_IF_ERROR_AS(make_dir(target), IoAccounting);
    } else {
      auto copied = copy_file(from + "/" + rel, target);
      if (!copied.ok()) return copied;
      total += copied.value();
    }
  }
  if (ec) {
    return Result<IoAccounting>(
        Error(ErrorCode::kInternal, "copy_tree walk: " + ec.message()));
  }
  return total;
}

Status ArtifactStore::remove(const std::string& relative) {
  auto p = resolve(relative);
  if (!p.ok()) return p.error();
  std::error_code ec;
  if (!fs::remove(p.value(), ec) || ec) {
    return Status(ErrorCode::kNotFound,
                  "remove(" + relative + "): " +
                      (ec ? ec.message() : "no such file"));
  }
  return Status();
}

Result<IoAccounting> ArtifactStore::remove_tree(const std::string& relative) {
  if (auto injected = fault::check(fault::points::kStoreRemove, relative);
      !injected.ok()) {
    return injected.error();
  }
  auto p = resolve(relative);
  if (!p.ok()) return p.propagate<IoAccounting>();
  // Measure before deleting so the caller learns what the removal actually
  // reclaimed.  A missing path is not an error (idempotent cleanup): it
  // frees nothing.
  IoAccounting acct;
  if (exists(relative)) {
    auto fp = tree_footprint(relative);
    if (fp.ok()) {
      acct.bytes_freed = fp.value().physical_bytes;
      acct.files_touched = fp.value().files + fp.value().links;
    }
  }
  std::error_code ec;
  fs::remove_all(p.value(), ec);
  if (ec) {
    return Result<IoAccounting>(
        Error(ErrorCode::kInternal,
              "remove_tree(" + relative + "): " + ec.message()));
  }
  account(acct);
  return acct;
}

}  // namespace vmp::storage
