// Service request/response types for the VMShop protocol.
//
// Paper, Section 3.1: "Requests for virtual machine creation received by
// VMShop contain specifications of hardware, network and software
// configurations.  Hardware specifications are used to determine
// appropriate resources ... while software specifications are used to
// configure the VM once it is started" — the latter being the configuration
// DAG.  Section 3.3 adds the network side: "The client attaches to its VM
// request, credentials for uniquely identifying its domain, and also the IP
// address and port on which the Proxy is running."
#pragma once

#include <cstdint>
#include <string>

#include "classad/classad.h"
#include "dag/dag.h"
#include "util/error.h"
#include "xml/xml.h"

namespace vmp::core {

/// Hardware requirements matched against golden machine specs.
struct MachineRequirements {
  std::string os;                    // exact match required
  std::uint64_t memory_bytes = 0;    // exact match (golden checkpoint size)
  std::uint64_t min_disk_bytes = 0;  // golden disk must be at least this

  /// Does a golden machine spec satisfy these requirements?
  bool satisfied_by(const std::string& image_os,
                    std::uint64_t image_memory_bytes,
                    std::uint64_t image_disk_bytes) const;

  void to_xml(xml::Element* parent) const;
  static util::Result<MachineRequirements> from_xml(const xml::Element& parent);
};

/// A Create-VM request.
struct CreateRequest {
  std::string request_id;
  std::string client;        // requesting identity (user or middleware)
  std::string domain;        // client domain (drives host-only network use)
  std::string proxy_address; // VNET proxy "host:port" in the client domain
  std::string backend;       // production line: "vmware-gsx" (default), "uml"
  MachineRequirements hardware;
  dag::ConfigDag config;

  util::Status validate() const;

  /// Full XML (a <create-request> element).
  void to_xml(xml::Element* parent) const;
  static util::Result<CreateRequest> from_xml(const xml::Element& element);
  std::string to_xml_string() const;
  static util::Result<CreateRequest> from_xml_string(const std::string& text);
};

/// Well-known attribute names used in VM classads.
namespace attrs {
inline constexpr const char* kVmId = "VMID";
inline constexpr const char* kPlant = "Plant";
inline constexpr const char* kBackend = "Backend";
inline constexpr const char* kOs = "OS";
inline constexpr const char* kMemoryBytes = "MemoryBytes";
inline constexpr const char* kDiskBytes = "DiskBytes";
inline constexpr const char* kState = "State";
inline constexpr const char* kDomain = "Domain";
inline constexpr const char* kNetwork = "HostOnlyNetwork";
inline constexpr const char* kIp = "IPAddress";
inline constexpr const char* kMac = "MACAddress";
inline constexpr const char* kRequestId = "RequestID";
/// Trace id of the create that produced this VM (set only while tracing is
/// armed): the handle for pulling the request's retained tail exemplar out
/// of obs://tail/<trace_id> or a <trace_id>.exemplar.jsonl dump.
inline constexpr const char* kTraceId = "TraceID";
inline constexpr const char* kGoldenImage = "GoldenImage";
inline constexpr const char* kActionsExecuted = "ActionsExecuted";
inline constexpr const char* kActionsSatisfied = "ActionsSatisfiedByCache";
inline constexpr const char* kActionFailures = "ActionFailuresContinued";
// Accounting attributes consumed by the cluster timing model.
inline constexpr const char* kCloneBytesCopied = "CloneBytesCopied";
inline constexpr const char* kCloneLinks = "CloneLinksCreated";
inline constexpr const char* kResidentBeforeBytes = "ResidentMemoryBeforeBytes";
inline constexpr const char* kActiveVmsBefore = "ActiveVMsBefore";
inline constexpr const char* kIsosConnected = "IsosConnected";
// Extension features (paper §6 future work).
inline constexpr const char* kSpeculativeHit = "SpeculativeHit";
inline constexpr const char* kMigratedFrom = "MigratedFrom";
}  // namespace attrs

}  // namespace vmp::core
