// Hypervisor control interface (the "Production Line" substrate).
//
// Paper, Section 2: "while different VM technologies present different
// interfaces for their configuration and control, core mechanisms on top of
// which middleware services can be layered are identifiable.  First, VM
// environments can be encapsulated as data ... Second, instantiation can be
// implemented by a control process."
//
// Hypervisor captures exactly those two mechanisms: state-as-files (clone,
// destroy) and a control process (start/suspend/stop, virtual CD-ROM
// attach, guest script execution).  Two backends implement it:
//   * GsxHypervisor — "classic" hosted VMM: clones resume from a suspended
//     memory checkpoint; non-persistent disks share golden spans via links.
//   * UmlHypervisor — user-mode-Linux style: clones boot from scratch on a
//     copy-on-write file system; no memory state exists.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "hypervisor/guest.h"
#include "storage/artifact_store.h"
#include "storage/clone_ops.h"
#include "storage/image_layout.h"
#include "util/error.h"

namespace vmp::hv {

enum class PowerState { kStopped, kSuspended, kRunning, kDestroyed };
const char* power_state_name(PowerState state) noexcept;

/// One hosted VM instance.
struct VmInstance {
  std::string id;
  storage::ImageLayout layout;  // its clone directory
  storage::MachineSpec spec;
  PowerState power = PowerState::kStopped;
  GuestState guest;
  /// Paths (store-relative) of connected virtual CD-ROM ISOs, attach order.
  std::vector<std::string> connected_isos;
  /// Accounting from the clone that created this instance.
  storage::CloneReport clone_report;
};

/// Description of a clone source (a golden image already on disk).
struct CloneSource {
  storage::ImageLayout layout;
  storage::MachineSpec spec;
  GuestState guest;  // guest state captured when the golden was published
};

class Hypervisor {
 public:
  explicit Hypervisor(storage::ArtifactStore* store) : store_(store) {}
  virtual ~Hypervisor() = default;

  Hypervisor(const Hypervisor&) = delete;
  Hypervisor& operator=(const Hypervisor&) = delete;

  /// Backend identifier ("vmware-gsx", "uml").
  virtual std::string type() const = 0;

  /// True when this backend resumes clones from a memory checkpoint
  /// (false: clones boot).  Drives both semantics and the timing model.
  virtual bool resumes_from_checkpoint() const = 0;

  /// Clone a golden image into `clone_dir` and register the instance.
  /// The instance starts Stopped (GSX: suspended-on-disk; UML: powered off).
  util::Result<std::string> clone_vm(const CloneSource& source,
                                     const std::string& clone_dir,
                                     const std::string& vm_id);

  /// Register an instance over an EXISTING clone directory (no cloning).
  /// Used by VM migration: the target plant copies a suspended clone
  /// directory into its clone area and adopts it.  `suspended` instances
  /// require a memory checkpoint on disk and resume on start.
  util::Result<std::string> import_vm(const std::string& clone_dir,
                                      const storage::MachineSpec& spec,
                                      const GuestState& guest,
                                      const std::string& vm_id,
                                      bool suspended);

  /// Start the instance: resume (GSX) or boot (UML).
  util::Status start_vm(const std::string& vm_id);

  /// Suspend a running instance back to a checkpoint (GSX only).
  virtual util::Status suspend_vm(const std::string& vm_id);

  /// Power off a running instance (non-persistent disk changes discarded:
  /// the redo log is truncated, mirroring VMware's end-of-session discard).
  util::Status power_off(const std::string& vm_id);

  /// Destroy: power off if needed and delete the clone directory.
  util::Status destroy_vm(const std::string& vm_id);

  /// Write `script` to a new ISO file in the clone dir and connect it as a
  /// virtual CD-ROM.  Returns the store-relative ISO path.
  util::Result<std::string> connect_script_iso(const std::string& vm_id,
                                               const std::string& script);

  /// The guest daemon mounts the most recently connected ISO and executes
  /// its script.  Instance must be Running.
  util::Result<GuestOutput> execute_connected_script(const std::string& vm_id);

  /// Direct script execution (used by tests and by golden-image authoring).
  util::Result<GuestOutput> execute_on_guest(const std::string& vm_id,
                                             const std::string& script);

  // -- Introspection --------------------------------------------------------
  /// Borrowed pointer into the instance table.  The table is node-based, so
  /// the pointer stays valid across registrations of OTHER VMs — but the
  /// pointed-to instance is only safe to read/mutate from the thread that
  /// owns the VM (its creating request, or its collector).  Cross-owner
  /// readers (monitors) must use snapshot_vm() instead.
  const VmInstance* find(const std::string& vm_id) const;
  /// Consistent copy of one instance taken under the hypervisor lock (safe
  /// from any thread, e.g. the VM monitor refreshing during creates).
  std::optional<VmInstance> snapshot_vm(const std::string& vm_id) const;
  std::vector<std::string> instance_ids() const;
  std::size_t instance_count() const;
  /// Non-destroyed instances (the plant's capacity unit).
  std::size_t active_instances() const;
  /// Sum of configured memory of non-destroyed instances (bytes).
  std::uint64_t resident_memory_bytes() const;

  // -- Fault injection ------------------------------------------------------
  /// Force the next start_vm on this id to fail (simulates VMM errors).
  void inject_start_failure(const std::string& vm_id);

  storage::ArtifactStore* store() { return store_; }

 protected:
  /// Backend-specific start semantics.
  virtual util::Status do_start(VmInstance* vm) = 0;
  /// Backend-specific clone validation (e.g. GSX requires a checkpoint).
  virtual util::Status validate_clone_source(const CloneSource& source) const = 0;
  /// Clone strategy used by this backend.
  virtual storage::CloneStrategy clone_strategy() const {
    return storage::CloneStrategy::kLinked;
  }

  /// Must be called with mutex_ held.
  util::Result<VmInstance*> find_mutable(const std::string& vm_id);

  storage::ArtifactStore* store_;
  /// Guards the instance table and every registered instance's fields.
  /// Public operations hold it for their whole body EXCEPT the
  /// size-proportional clone/destroy I/O, which runs unlocked against a
  /// directory no other request touches — that is what lets independent
  /// creations overlap on one plant (DESIGN.md §10).
  mutable std::mutex mutex_;
  std::map<std::string, VmInstance> instances_;
  std::map<std::string, bool> start_failures_;
  GuestAgent agent_;
  std::map<std::string, std::uint32_t> iso_counters_;
};

}  // namespace vmp::hv
