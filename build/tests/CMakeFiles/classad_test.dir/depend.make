# Empty dependencies file for classad_test.
# This may be replaced when dependencies are built.
