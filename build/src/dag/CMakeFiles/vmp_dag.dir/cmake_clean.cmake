file(REMOVE_RECURSE
  "CMakeFiles/vmp_dag.dir/action.cpp.o"
  "CMakeFiles/vmp_dag.dir/action.cpp.o.d"
  "CMakeFiles/vmp_dag.dir/dag.cpp.o"
  "CMakeFiles/vmp_dag.dir/dag.cpp.o.d"
  "CMakeFiles/vmp_dag.dir/dag_xml.cpp.o"
  "CMakeFiles/vmp_dag.dir/dag_xml.cpp.o.d"
  "CMakeFiles/vmp_dag.dir/matching.cpp.o"
  "CMakeFiles/vmp_dag.dir/matching.cpp.o.d"
  "libvmp_dag.a"
  "libvmp_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
