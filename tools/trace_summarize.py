#!/usr/bin/env python3
"""Summarize a VMPlants trace JSONL file into a per-phase latency table.

The tracer (src/obs/trace.h) drains finished spans as one JSON object per
line via Tracer::write_jsonl.  This tool rolls them up by span name — the
per-phase breakdown of VM creation in the spirit of the paper's Figure 6
(time spent in cloning vs configuration vs the rest of the sequence).

Usage:
    python3 tools/trace_summarize.py trace.jsonl [--by-trace]

With --by-trace, also prints one row per trace (total duration, span
count, errors, retries).
"""

import argparse
import json
import sys
from collections import defaultdict


def load_spans(path):
    spans = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(json.loads(line))
            except json.JSONDecodeError as err:
                print(f"{path}:{lineno}: skipping bad line: {err}",
                      file=sys.stderr)
    return spans


def phase_table(spans):
    rows = defaultdict(lambda: {"count": 0, "total": 0.0,
                                "min": float("inf"), "max": 0.0,
                                "errors": 0})
    for span in spans:
        name = span.get("name", "?")
        duration = float(span.get("end", 0.0)) - float(span.get("start", 0.0))
        row = rows[name]
        row["count"] += 1
        row["total"] += duration
        row["min"] = min(row["min"], duration)
        row["max"] = max(row["max"], duration)
        status = span.get("status", "ok")
        if status not in ("ok", "retry"):
            row["errors"] += 1
    return rows


def print_phase_table(rows):
    header = (f"{'phase':<24} {'count':>6} {'mean ms':>10} {'min ms':>10} "
              f"{'max ms':>10} {'total ms':>10} {'errors':>7}")
    print(header)
    print("-" * len(header))
    for name in sorted(rows, key=lambda n: rows[n]["total"], reverse=True):
        row = rows[name]
        mean = row["total"] / row["count"] if row["count"] else 0.0
        print(f"{name:<24} {row['count']:>6} {mean * 1e3:>10.3f} "
              f"{row['min'] * 1e3:>10.3f} {row['max'] * 1e3:>10.3f} "
              f"{row['total'] * 1e3:>10.3f} {row['errors']:>7}")


def print_trace_table(spans):
    traces = defaultdict(list)
    for span in spans:
        traces[span.get("trace", "?")].append(span)
    header = (f"{'trace':<14} {'root':<16} {'vm':<18} {'spans':>6} "
              f"{'duration ms':>12} {'errors':>7} {'retries':>8}")
    print(header)
    print("-" * len(header))
    for trace_id, members in traces.items():
        roots = [s for s in members if not s.get("parent", 0)]
        root = roots[0] if roots else None
        duration = (float(root["end"]) - float(root["start"])) if root else 0.0
        vm_ids = [s["vm"] for s in members if s.get("vm")]
        errors = sum(1 for s in members
                     if s.get("status", "ok") not in ("ok", "retry"))
        retries = sum(1 for s in members if s.get("status") == "retry")
        print(f"{trace_id:<14} {(root or {}).get('name', '?'):<16} "
              f"{(vm_ids[-1] if vm_ids else '-'):<18} {len(members):>6} "
              f"{duration * 1e3:>12.3f} {errors:>7} {retries:>8}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("jsonl", help="trace file written by Tracer::write_jsonl")
    parser.add_argument("--by-trace", action="store_true",
                        help="also print one row per trace")
    args = parser.parse_args()

    spans = load_spans(args.jsonl)
    if not spans:
        print("no spans found", file=sys.stderr)
        return 1
    print(f"{len(spans)} spans\n")
    print_phase_table(phase_table(spans))
    if args.by_trace:
        print()
        print_trace_table(spans)
    return 0


if __name__ == "__main__":
    sys.exit(main())
