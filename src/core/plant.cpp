#include "core/plant.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "hypervisor/gsx.h"
#include "hypervisor/uml.h"
#include "hypervisor/xen.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/strings.h"

namespace vmp::core {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

const util::Logger kLog("vmplant");

std::unique_ptr<hv::Hypervisor> make_hypervisor(const std::string& backend,
                                                storage::ArtifactStore* store) {
  if (backend == "uml") return std::make_unique<hv::UmlHypervisor>(store);
  if (backend == "xen") return std::make_unique<hv::XenHypervisor>(store);
  return std::make_unique<hv::GsxHypervisor>(store);
}

/// Transient failures worth a plant-local clone retry; anything else
/// (validation errors, capacity, unknown goldens) will not improve on a
/// second attempt.
bool clone_error_is_transient(util::ErrorCode code) {
  return code == ErrorCode::kUnavailable || code == ErrorCode::kTimeout ||
         code == ErrorCode::kInternal;
}

struct PlantMetrics {
  obs::Counter* creates;
  obs::Counter* create_failures;
  obs::Counter* collects;
  obs::Counter* clone_retries;
  obs::Counter* speculative_hits;
  obs::Timer* create_seconds;

  static PlantMetrics& get() {
    static PlantMetrics m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::instance();
      return PlantMetrics{r.counter("plant.create.count"),
                          r.counter("plant.create_fail.count"),
                          r.counter("plant.collect.count"),
                          r.counter("plant.clone_retry.count"),
                          r.counter("plant.speculative_hit.count"),
                          r.timer("plant.create.seconds")};
    }();
    return m;
  }
};

}  // namespace

VmPlant::VmPlant(PlantConfig config, storage::ArtifactStore* store,
                 warehouse::Warehouse* warehouse)
    : config_(std::move(config)),
      store_(store),
      warehouse_(warehouse),
      hypervisor_(make_hypervisor(config_.backend, store)),
      ppp_(warehouse),
      allocator_(config_.name, config_.host_only_networks),
      cost_model_(make_cost_model(config_.cost_model)),
      vm_ids_(config_.name + "-vm"),
      sli_create_seconds_(obs::MetricsRegistry::instance().timer(
          config_.name + ".create.seconds")),
      sli_clone_seconds_(obs::MetricsRegistry::instance().timer(
          config_.name + ".clone.seconds")),
      sli_configure_seconds_(obs::MetricsRegistry::instance().timer(
          config_.name + ".configure.seconds")),
      sli_create_ok_(obs::MetricsRegistry::instance().counter(
          config_.name + ".create.count")),
      sli_create_fail_(obs::MetricsRegistry::instance().counter(
          config_.name + ".create_fail.count")) {
  if (config_.clone_base_dir.empty()) {
    config_.clone_base_dir = config_.name + "/clones";
  }
  (void)store_->make_dir(config_.clone_base_dir);
  production_ =
      std::make_unique<ProductionLine>(hypervisor_.get(), config_.clone_base_dir);
  monitor_ = std::make_unique<VmMonitor>(hypervisor_.get(), &info_);
  if (config_.obs_export) monitor_->enable_obs_export();
  const std::size_t threads =
      config_.worker_threads != 0
          ? config_.worker_threads
          : std::max<std::size_t>(2, std::thread::hardware_concurrency());
  workers_ = std::make_unique<util::ThreadPool>(threads);
}

VmPlant::~VmPlant() {
  // Drain the worker pool before anything else goes away; late
  // create_async() submissions get Stopped futures instead of running
  // against a half-destroyed plant.
  workers_.reset();
  detach_from_bus();
}

PlantSnapshot VmPlant::snapshot() const {
  PlantSnapshot snap;
  snap.active_vms = hypervisor_->active_instances();
  snap.resident_memory_bytes = hypervisor_->resident_memory_bytes();
  return snap;
}

PlantLoad VmPlant::load_for(const CreateRequest& request) const {
  const PlantSnapshot snap = snapshot();
  PlantLoad load;
  load.active_vms = snap.active_vms;
  load.max_vms = config_.max_vms;
  load.host_memory_bytes = config_.host_memory_bytes;
  load.resident_memory_bytes = snap.resident_memory_bytes;
  load.needs_new_network = allocator_.needs_new_network(request.domain);
  load.network_available = allocator_.can_serve(request.domain);
  load.request_memory_bytes = request.hardware.memory_bytes;
  return load;
}

Result<double> VmPlant::estimate(const CreateRequest& request) const {
  // No plant lock: the snapshot and allocator queries are internally
  // synchronized, and a bid is an estimate by nature — it may be stale the
  // moment it is produced (the shop re-validates by actually creating).
  VMP_RETURN_IF_ERROR_AS(request.validate(), double);
  return cost_model_->estimate(load_for(request));
}

Result<classad::ClassAd> VmPlant::create(const CreateRequest& request) {
  PlantMetrics& metrics = PlantMetrics::get();
  obs::ScopedSpan span("plant.create", "vmplant", config_.name);
  // The tracer clock, not steady_clock: under an installed virtual clock
  // the latency histograms see the same simulated durations as the spans
  // (deterministic examples and tests).
  const double start_s = obs::Tracer::instance().now();

  Result<classad::ClassAd> result = create_impl(request);

  const double elapsed_s = obs::Tracer::instance().now() - start_s;
  metrics.create_seconds->record(elapsed_s);
  sli_create_seconds_->record(elapsed_s);
  if (result.ok()) {
    metrics.creates->add();
    sli_create_ok_->add();
    span.set_vm(result.value().get_string(attrs::kVmId).value_or(""));
  } else {
    metrics.create_failures->add();
    sli_create_fail_->add();
    span.set_status(util::error_code_name(result.error().code()));
  }
  return result;
}

std::future<Result<classad::ClassAd>> VmPlant::create_async(
    const CreateRequest& request) {
  // Capture the caller's trace context on the caller's thread and adopt it
  // on the worker, so the create span parents under the caller's span the
  // same way a bus hop would (net/bus.cpp does the identical dance).
  const obs::TraceContext parent = obs::current_context();
  return workers_->submit([this, request, parent] {
    obs::ContextGuard adopt(parent);
    return create(request);
  });
}

Result<classad::ClassAd> VmPlant::create_impl(const CreateRequest& request) {
  std::unique_lock<std::mutex> serial(serialize_mutex_, std::defer_lock);
  if (config_.serialize_creates) serial.lock();
  VMP_RETURN_IF_ERROR_AS(request.validate(), classad::ClassAd);

  const PlantSnapshot before = snapshot();

  // Claim a capacity slot: active instances plus creations still in
  // flight.  The slot is held for the whole pipeline so N concurrent
  // admissions can never overshoot max_vms between clone and register.
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (hypervisor_->active_instances() + inflight_creates_ >=
        config_.max_vms) {
      return Result<classad::ClassAd>(
          Error(ErrorCode::kResourceExhausted,
                config_.name + ": at VM capacity (" +
                    std::to_string(config_.max_vms) + ")"));
    }
    ++inflight_creates_;
  }
  struct SlotRelease {
    VmPlant* plant;
    ~SlotRelease() {
      std::lock_guard<std::mutex> lock(plant->state_mutex_);
      --plant->inflight_creates_;
    }
  } slot_release{this};

  // Plan before committing any resources.  The PPP scans the warehouse
  // under its shared lock, so concurrent planners do not serialize.
  auto plan = ppp_.plan(request);
  if (!plan.ok()) return plan.propagate<classad::ClassAd>();

  // Host-only network for the client's domain.
  auto network = [&] {
    obs::ScopedSpan vnet_span("vnet.attach", "vnet", request.domain);
    auto acquired = allocator_.acquire(request.domain);
    if (!acquired.ok()) {
      vnet_span.set_status(util::error_code_name(acquired.error().code()));
    }
    return acquired;
  }();
  if (!network.ok()) return network.propagate<classad::ClassAd>();

  // Speculative pool: a parked pre-created clone of the planned golden
  // image skips the clone+resume phase entirely (paper §6 future work).
  bool speculative_hit = false;
  std::string vm_id;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    auto pool = speculative_.find(plan.value().golden.id);
    if (pool != speculative_.end() && !pool->second.empty()) {
      vm_id = pool->second.back();
      pool->second.pop_back();
      speculative_hit = true;
    }
  }
  if (speculative_hit) {
    PlantMetrics::get().speculative_hits->add();
  } else {
    // Clone+resume under the plant-local retry policy: transient failures
    // (store hiccups, VMM resume errors) are retried with deterministic
    // exponential backoff in sim-time; persistent errors propagate at once
    // so the shop can fail over to another plant.  Each attempt uses a
    // fresh VM id — the hypervisor retires ids of destroyed instances.
    // No plant lock is held here: this is the creation's dominant cost and
    // the stretch where concurrent orders actually overlap.
    const double clone_start_s = obs::Tracer::instance().now();
    util::RetryState retry_state(config_.clone_retry);
    while (true) {
      vm_id = vm_ids_.next();
      auto report = production_->clone_and_start(plan.value().golden, vm_id);
      if (report.ok()) break;
      if (!clone_error_is_transient(report.error().code()) ||
          !retry_state.allow_retry()) {
        (void)allocator_.release(request.domain);
        return report.propagate<classad::ClassAd>();
      }
      clone_retries_.fetch_add(1, std::memory_order_relaxed);
      PlantMetrics::get().clone_retries->add();
      obs::Tracer::instance().instant("plant.clone_retry", "vmplant", "retry",
                                      vm_id);
      kLog.warn() << config_.name << ": clone of " << vm_id
                  << " failed transiently (" << report.error().to_string()
                  << "); retry " << retry_state.retries_granted() << " after "
                  << retry_state.elapsed_backoff_s() << "s backoff";
    }
    sli_clone_seconds_->record(obs::Tracer::instance().now() - clone_start_s);
  }

  const double configure_start_s = obs::Tracer::instance().now();
  auto produced =
      production_->configure(plan.value(), request, vm_id, network.value());
  sli_configure_seconds_->record(obs::Tracer::instance().now() -
                                 configure_start_s);
  if (!produced.ok()) {
    (void)allocator_.release(request.domain);
    return produced.propagate<classad::ClassAd>();
  }
  ProductionResult& result = produced.value();

  // Assemble the response classad.
  classad::ClassAd ad = result.ad;
  ad.set_string(attrs::kVmId, vm_id);
  ad.set_string(attrs::kPlant, config_.name);
  ad.set_string(attrs::kBackend, hypervisor_->type());
  ad.set_string(attrs::kRequestId, request.request_id);
  ad.set_string(attrs::kDomain, request.domain);
  ad.set_string(attrs::kGoldenImage, plan.value().golden.id);
  ad.set_string(attrs::kOs, plan.value().golden.spec.os);
  ad.set_integer(attrs::kMemoryBytes,
                 static_cast<std::int64_t>(plan.value().golden.spec.memory_bytes));
  ad.set_integer(attrs::kDiskBytes,
                 static_cast<std::int64_t>(
                     plan.value().golden.spec.disk.capacity_bytes));
  if (!ad.has(attrs::kNetwork)) {
    ad.set_string(attrs::kNetwork, network.value());
  }
  ad.set_integer(attrs::kActionsExecuted,
                 static_cast<std::int64_t>(result.guest_actions_executed +
                                           result.host_actions_executed));
  ad.set_integer(attrs::kActionsSatisfied,
                 static_cast<std::int64_t>(plan.value().satisfied_nodes.size()));
  ad.set_integer(attrs::kActionFailures,
                 static_cast<std::int64_t>(result.failures_continued));

  // Accounting for the cluster timing model.  A speculative hit charges no
  // clone work to this creation: it happened ahead of demand.
  const storage::IoAccounting clone_total =
      speculative_hit ? storage::IoAccounting{} : result.clone_report.total();
  ad.set_boolean(attrs::kSpeculativeHit, speculative_hit);
  ad.set_integer(attrs::kCloneBytesCopied,
                 static_cast<std::int64_t>(clone_total.bytes_written));
  ad.set_integer(attrs::kCloneLinks,
                 static_cast<std::int64_t>(clone_total.links_created));
  ad.set_integer(attrs::kResidentBeforeBytes,
                 static_cast<std::int64_t>(before.resident_memory_bytes));
  ad.set_integer(attrs::kActiveVmsBefore,
                 static_cast<std::int64_t>(before.active_vms));
  ad.set_integer(attrs::kIsosConnected,
                 static_cast<std::int64_t>(result.isos_connected));

  // Dynamic attributes from the monitor.
  info_.store(vm_id, ad);
  (void)monitor_->refresh(vm_id);
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    vm_domains_[vm_id] = request.domain;
  }

  kLog.info() << config_.name << ": created " << vm_id << " from golden '"
              << plan.value().golden.id << "' (" << result.guest_actions_executed
              << " guest actions, " << plan.value().satisfied_nodes.size()
              << " cached)";
  return info_.query(vm_id);
}

Result<classad::ClassAd> VmPlant::query(const std::string& vm_id) const {
  // The monitor and information system synchronize internally; queries
  // never contend with the create pipeline.
  if (vm_id.starts_with(kObsAdPrefix)) {
    // Observability pull (fleet aggregator): republish so the puller sees
    // a fresh snapshot even between monitor sweeps.
    monitor_->publish_obs_ads();
    return info_.query(vm_id);
  }
  (void)monitor_->refresh(vm_id);
  return info_.query(vm_id);
}

Status VmPlant::collect(const std::string& vm_id) {
  obs::ScopedSpan span("plant.collect", "vmplant", config_.name);
  span.set_vm(vm_id);
  // Claim the VM's bookkeeping entry up front so two racing collects of
  // the same id cannot both destroy it (and release its network twice);
  // the loser sees kNotFound.  The destroy I/O then runs unlocked, and a
  // failed destroy restores the claim so collect stays retryable.
  std::string domain;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    auto it = vm_domains_.find(vm_id);
    if (it == vm_domains_.end()) {
      return Status(ErrorCode::kNotFound,
                    config_.name + ": unknown VM " + vm_id);
    }
    domain = it->second;
    vm_domains_.erase(it);
  }
  Status collected = production_->collect(vm_id);
  if (!collected.ok()) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    vm_domains_.emplace(vm_id, domain);
    return collected;
  }
  (void)allocator_.release(domain);
  (void)info_.remove(vm_id);
  PlantMetrics::get().collects->add();
  kLog.info() << config_.name << ": collected " << vm_id;
  return Status();
}

// ---------------------------------------------------------------------------
// Speculative pre-creation (paper §6 future work)
// ---------------------------------------------------------------------------

Status VmPlant::pre_create(const std::string& golden_id, std::size_t count) {
  // Pre-creation is an off-peak batch operation; holding the state lock
  // for its whole run keeps the pool bookkeeping trivially consistent.
  std::lock_guard<std::mutex> lock(state_mutex_);
  auto golden = warehouse_->lookup(golden_id);
  if (!golden.ok()) return golden.error();
  if (golden.value().backend != config_.backend) {
    return Status(ErrorCode::kFailedPrecondition,
                  config_.name + ": golden '" + golden_id +
                      "' targets backend " + golden.value().backend);
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (hypervisor_->active_instances() + inflight_creates_ >=
        config_.max_vms) {
      return Status(ErrorCode::kResourceExhausted,
                    config_.name + ": at VM capacity during pre-create");
    }
    const std::string vm_id = vm_ids_.next();
    auto report = production_->clone_and_start(golden.value(), vm_id);
    if (!report.ok()) return report.error();
    speculative_[golden_id].push_back(vm_id);
  }
  kLog.info() << config_.name << ": pre-created " << count
              << " instances of '" << golden_id << "'";
  return Status();
}

std::size_t VmPlant::speculative_pool_size(const std::string& golden_id) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (!golden_id.empty()) {
    auto it = speculative_.find(golden_id);
    return it == speculative_.end() ? 0 : it->second.size();
  }
  std::size_t total = 0;
  for (const auto& [id, pool] : speculative_) total += pool.size();
  return total;
}

void VmPlant::discard_speculative() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  for (auto& [golden_id, pool] : speculative_) {
    for (const std::string& vm_id : pool) {
      (void)hypervisor_->destroy_vm(vm_id);
    }
  }
  speculative_.clear();
}

// ---------------------------------------------------------------------------
// Migration (paper §6 future work)
// ---------------------------------------------------------------------------

Result<VmPlant::MigrationBundle> VmPlant::migrate_out(const std::string& vm_id) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  auto domain = vm_domains_.find(vm_id);
  if (domain == vm_domains_.end()) {
    return Result<MigrationBundle>(
        Error(ErrorCode::kNotFound, config_.name + ": unknown VM " + vm_id));
  }
  if (!hypervisor_->resumes_from_checkpoint()) {
    return Result<MigrationBundle>(Error(
        ErrorCode::kFailedPrecondition,
        config_.name + ": backend '" + hypervisor_->type() +
            "' cannot checkpoint; live state would be lost by migration"));
  }
  auto vm = hypervisor_->snapshot_vm(vm_id);
  if (!vm.has_value()) {
    return Result<MigrationBundle>(
        Error(ErrorCode::kNotFound, config_.name + ": hypervisor lost " + vm_id));
  }
  if (vm->power == hv::PowerState::kRunning) {
    VMP_RETURN_IF_ERROR_AS(hypervisor_->suspend_vm(vm_id), MigrationBundle);
    vm = hypervisor_->snapshot_vm(vm_id);
  }
  MigrationBundle bundle;
  bundle.source_vm_id = vm_id;
  bundle.source_dir = vm->layout.dir;
  bundle.spec = vm->spec;
  bundle.guest = vm->guest;
  bundle.domain = domain->second;
  bundle.golden_id = vm->golden_id;
  return bundle;
}

Result<classad::ClassAd> VmPlant::migrate_in(const MigrationBundle& bundle) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (hypervisor_->active_instances() + inflight_creates_ >= config_.max_vms) {
    return Result<classad::ClassAd>(Error(
        ErrorCode::kResourceExhausted, config_.name + ": at VM capacity"));
  }
  if (!hypervisor_->resumes_from_checkpoint()) {
    return Result<classad::ClassAd>(
        Error(ErrorCode::kFailedPrecondition,
              config_.name + ": backend cannot resume a migrated checkpoint"));
  }
  auto network = allocator_.acquire(bundle.domain);
  if (!network.ok()) return network.propagate<classad::ClassAd>();

  const std::string vm_id = vm_ids_.next();
  const std::string clone_dir = config_.clone_base_dir + "/" + vm_id;
  auto copied = store_->copy_tree(bundle.source_dir, clone_dir);
  if (!copied.ok()) {
    (void)allocator_.release(bundle.domain);
    return copied.propagate<classad::ClassAd>();
  }

  auto imported = hypervisor_->import_vm(clone_dir, bundle.spec, bundle.guest,
                                         vm_id, /*suspended=*/true,
                                         bundle.golden_id);
  if (!imported.ok()) {
    (void)store_->remove_tree(clone_dir);
    (void)allocator_.release(bundle.domain);
    return imported.propagate<classad::ClassAd>();
  }
  Status started = hypervisor_->start_vm(vm_id);
  if (!started.ok()) {
    (void)hypervisor_->destroy_vm(vm_id);
    (void)allocator_.release(bundle.domain);
    return started.propagate<classad::ClassAd>();
  }

  classad::ClassAd ad;
  ad.set_string(attrs::kVmId, vm_id);
  ad.set_string(attrs::kPlant, config_.name);
  ad.set_string(attrs::kBackend, hypervisor_->type());
  ad.set_string(attrs::kDomain, bundle.domain);
  ad.set_string(attrs::kMigratedFrom, bundle.source_vm_id);
  ad.set_string(attrs::kNetwork, network.value());
  ad.set_integer(attrs::kMemoryBytes,
                 static_cast<std::int64_t>(bundle.spec.memory_bytes));
  ad.set_integer(attrs::kCloneBytesCopied,
                 static_cast<std::int64_t>(copied.value().bytes_written));
  info_.store(vm_id, ad);
  (void)monitor_->refresh(vm_id);
  vm_domains_[vm_id] = bundle.domain;
  kLog.info() << config_.name << ": adopted migrated VM " << vm_id
              << " (was " << bundle.source_vm_id << ")";
  return info_.query(vm_id);
}

Status VmPlant::resume_after_failed_migration(const std::string& vm_id) {
  return hypervisor_->start_vm(vm_id);
}

std::size_t VmPlant::active_vms() const {
  return hypervisor_->active_instances();
}

std::uint64_t VmPlant::resident_memory_bytes() const {
  return hypervisor_->resident_memory_bytes();
}

std::size_t VmPlant::inflight_creates() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return inflight_creates_;
}

// ---------------------------------------------------------------------------
// Bus integration
// ---------------------------------------------------------------------------

Status VmPlant::attach_to_bus(net::MessageBus* bus,
                              net::ServiceRegistry* registry) {
  VMP_RETURN_IF_ERROR(bus->register_endpoint(
      bus_address(),
      [this](const net::Message& m) { return handle_message(m); }));
  bus_ = bus;
  registry_ = registry;
  if (registry_ != nullptr) {
    net::ServiceRecord record;
    record.type = "vmplant";
    record.address = bus_address();
    record.properties["backend"] = config_.backend;
    record.properties["max-vms"] = std::to_string(config_.max_vms);
    registry_->publish(record);
  }
  return Status();
}

void VmPlant::detach_from_bus() {
  if (bus_ != nullptr) {
    (void)bus_->unregister_endpoint(bus_address());
    bus_ = nullptr;
  }
  if (registry_ != nullptr) {
    (void)registry_->withdraw(bus_address());
    registry_ = nullptr;
  }
}

net::Message VmPlant::handle_message(const net::Message& request_msg) {
  const std::string& service = request_msg.service();

  if (service == "vmplant.estimate" || service == "vmplant.create") {
    const xml::Element* req_elem = request_msg.body().child("create-request");
    if (req_elem == nullptr) {
      return net::Message::fault_to(
          request_msg,
          Error(ErrorCode::kParseError, "missing <create-request>"));
    }
    auto request = CreateRequest::from_xml(*req_elem);
    if (!request.ok()) {
      return net::Message::fault_to(request_msg, request.error());
    }
    if (service == "vmplant.estimate") {
      auto cost = estimate(request.value());
      if (!cost.ok()) return net::Message::fault_to(request_msg, cost.error());
      net::Message response = net::Message::response_to(request_msg);
      xml::Element& bid = response.body().add_child("bid");
      bid.set_attr("plant", config_.name);
      bid.set_attr("cost", util::format_double(cost.value()));
      return response;
    }
    auto ad = create(request.value());
    if (!ad.ok()) return net::Message::fault_to(request_msg, ad.error());
    net::Message response = net::Message::response_to(request_msg);
    ad.value().to_xml(&response.body());
    return response;
  }

  if (service == "vmplant.estimate_batch") {
    // Federation refresh traffic (DESIGN.md §16): one message prices many
    // DAG-classes.  Classes this plant cannot price are simply absent from
    // the reply — a batch never faults as a whole for one bad class.
    net::Message response = net::Message::response_to(request_msg);
    xml::Element& bids = response.body().add_child("bids");
    for (const xml::Element* cls : request_msg.body().children_named("class")) {
      const xml::Element* req_elem = cls->child("create-request");
      if (req_elem == nullptr || !cls->has_attr("key")) continue;
      auto request = CreateRequest::from_xml(*req_elem);
      if (!request.ok()) continue;
      auto cost = estimate(request.value());
      if (!cost.ok()) continue;
      xml::Element& bid = bids.add_child("bid");
      bid.set_attr("class", cls->attr("key"));
      bid.set_attr("plant", config_.name);
      bid.set_attr("cost", util::format_double(cost.value()));
    }
    return response;
  }

  if (service == "vmplant.query" || service == "vmplant.collect") {
    const xml::Element* vm_elem = request_msg.body().child("vm");
    if (vm_elem == nullptr || !vm_elem->has_attr("id")) {
      return net::Message::fault_to(
          request_msg, Error(ErrorCode::kParseError, "missing <vm id=...>"));
    }
    const std::string vm_id = vm_elem->attr("id");
    if (service == "vmplant.query") {
      auto ad = query(vm_id);
      if (!ad.ok()) return net::Message::fault_to(request_msg, ad.error());
      net::Message response = net::Message::response_to(request_msg);
      ad.value().to_xml(&response.body());
      return response;
    }
    Status s = collect(vm_id);
    if (!s.ok()) return net::Message::fault_to(request_msg, s.error());
    net::Message response = net::Message::response_to(request_msg);
    response.body().add_child("collected").set_attr("id", vm_id);
    return response;
  }

  return net::Message::fault_to(
      request_msg,
      Error(ErrorCode::kInvalidArgument, "unknown service: " + service));
}

}  // namespace vmp::core
