#include "core/broker.h"

#include <limits>

#include "core/info_system.h"
#include "obs/export.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/strings.h"

namespace vmp::core {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {
const util::Logger kLog("vmbroker");
}

VmBroker::VmBroker(BrokerConfig config, net::MessageBus* bus,
                   net::ServiceRegistry* registry)
    : config_(std::move(config)), bus_(bus), registry_(registry) {
  obs::MetricsRegistry& r = obs::MetricsRegistry::instance();
  forwarded_ = r.counter("broker.creations_forwarded.count");
  scoped_forwarded_ =
      r.counter(config_.name + ".broker.creations_forwarded.count");
}

VmBroker::~VmBroker() { detach_from_bus(); }

void VmBroker::add_member(const std::string& plant_address) {
  std::lock_guard<std::mutex> lock(mutex_);
  members_.push_back(plant_address);
}

std::vector<std::string> VmBroker::members() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return members_;
}

Status VmBroker::attach_to_bus() {
  VMP_RETURN_IF_ERROR(bus_->register_endpoint(
      bus_address(),
      [this](const net::Message& m) { return handle_message(m); }));
  attached_ = true;
  if (registry_ != nullptr) {
    net::ServiceRecord record;
    record.type = "vmplant";  // shops bid against brokers transparently
    record.address = bus_address();
    record.properties["broker"] = "true";
    registry_->publish(record);
  }
  return Status();
}

void VmBroker::detach_from_bus() {
  if (attached_) {
    (void)bus_->unregister_endpoint(bus_address());
    if (registry_ != nullptr) (void)registry_->withdraw(bus_address());
    attached_ = false;
  }
}

std::uint64_t VmBroker::creations_forwarded() const {
  return scoped_forwarded_->value();
}

net::Message VmBroker::handle_message(const net::Message& request_msg) {
  const std::string& service = request_msg.service();
  if (service == "vmplant.estimate") return handle_estimate(request_msg);
  if (service == "vmplant.create") return handle_create(request_msg);
  if (service == "vmplant.query" || service == "vmplant.collect") {
    return handle_routed(request_msg);
  }
  return net::Message::fault_to(
      request_msg,
      Error(ErrorCode::kInvalidArgument, "unknown service: " + service));
}

Result<std::string> VmBroker::cheapest_member(const net::Message& request_msg) {
  std::vector<std::string> member_list;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    member_list = members_;
  }
  std::string best_member;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const std::string& member : member_list) {
    net::Message forward = net::Message::request(
        "vmplant.estimate", config_.name, member, request_msg.correlation());
    for (const auto& child : request_msg.body().children()) {
      forward.body().adopt_child(child->clone());
    }
    auto response = net::call_expecting_success(bus_, forward);
    if (!response.ok()) continue;  // member declined
    const xml::Element* bid = response.value().body().child("bid");
    if (bid == nullptr) continue;
    const double cost = bid->attr_double("cost", 0.0);
    if (cost < best_cost) {
      best_cost = cost;
      best_member = member;
    }
  }
  if (best_member.empty()) {
    return Result<std::string>(Error(
        ErrorCode::kNoBids, config_.name + ": no member plant produced a bid"));
  }
  return best_member;
}

net::Message VmBroker::handle_estimate(const net::Message& request_msg) {
  // Re-estimate through the winner to get its cost, then add the markup.
  auto member = cheapest_member(request_msg);
  if (!member.ok()) {
    return net::Message::fault_to(request_msg, member.error());
  }
  net::Message forward = net::Message::request(
      "vmplant.estimate", config_.name, member.value(),
      request_msg.correlation());
  for (const auto& child : request_msg.body().children()) {
    forward.body().adopt_child(child->clone());
  }
  auto response = net::call_expecting_success(bus_, forward);
  if (!response.ok()) {
    return net::Message::fault_to(request_msg, response.error());
  }
  const double cost =
      response.value().body().child("bid")->attr_double("cost", 0.0) +
      config_.bid_markup;

  net::Message reply = net::Message::response_to(request_msg);
  xml::Element& bid = reply.body().add_child("bid");
  bid.set_attr("plant", config_.name);
  bid.set_attr("cost", util::format_double(cost));
  bid.set_attr("via", member.value());
  return reply;
}

net::Message VmBroker::handle_create(const net::Message& request_msg) {
  auto member = cheapest_member(request_msg);
  if (!member.ok()) {
    return net::Message::fault_to(request_msg, member.error());
  }
  net::Message forward = net::Message::request(
      "vmplant.create", config_.name, member.value(), request_msg.correlation());
  for (const auto& child : request_msg.body().children()) {
    forward.body().adopt_child(child->clone());
  }
  auto response = net::call_expecting_success(bus_, forward);
  if (!response.ok()) {
    return net::Message::fault_to(request_msg, response.error());
  }

  // Remember where the VM lives for query/collect routing.
  auto ad = classad::ClassAd::from_xml(response.value().body());
  if (ad.ok()) {
    const auto vm_id = ad.value().get_string(attrs::kVmId);
    if (vm_id.has_value()) {
      std::lock_guard<std::mutex> lock(mutex_);
      vm_to_member_[*vm_id] = member.value();
    }
  }
  forwarded_->add();
  scoped_forwarded_->add();
  kLog.info() << config_.name << ": forwarded creation to " << member.value();

  net::Message reply = net::Message::response_to(request_msg);
  for (const auto& child : response.value().body().children()) {
    reply.body().adopt_child(child->clone());
  }
  return reply;
}

net::Message VmBroker::handle_routed(const net::Message& request_msg) {
  const xml::Element* vm_elem = request_msg.body().child("vm");
  if (vm_elem == nullptr || !vm_elem->has_attr("id")) {
    return net::Message::fault_to(
        request_msg, Error(ErrorCode::kParseError, "missing <vm id=...>"));
  }
  // The fleet aggregator's metrics pull lands here like any other routed
  // query; answer it from the process snapshot (which carries the scoped
  // "<name>.broker.*" series) instead of faulting kNotFound.
  if (request_msg.service() == "vmplant.query" &&
      vm_elem->attr("id") == kObsMetricsId) {
    classad::ClassAd ad = obs::metrics_ad(
        obs::MetricsRegistry::instance().snapshot(), util::FaultReport{});
    ad.set_string("BrokerName", config_.name);
    ad.set_integer("BrokerMembers",
                   static_cast<std::int64_t>(members().size()));
    net::Message reply = net::Message::response_to(request_msg);
    ad.to_xml(&reply.body());
    return reply;
  }
  std::string member;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = vm_to_member_.find(vm_elem->attr("id"));
    if (it != vm_to_member_.end()) member = it->second;
  }
  if (member.empty()) {
    return net::Message::fault_to(
        request_msg,
        Error(ErrorCode::kNotFound,
              config_.name + ": unknown VM " + vm_elem->attr("id")));
  }
  net::Message forward = net::Message::request(
      request_msg.service(), config_.name, member, request_msg.correlation());
  for (const auto& child : request_msg.body().children()) {
    forward.body().adopt_child(child->clone());
  }
  auto response = bus_->call(forward);
  if (!response.ok()) {
    return net::Message::fault_to(request_msg, response.error());
  }
  if (request_msg.service() == "vmplant.collect" &&
      !response.value().is_fault()) {
    std::lock_guard<std::mutex> lock(mutex_);
    vm_to_member_.erase(vm_elem->attr("id"));
  }
  net::Message reply = response.value().is_fault()
                           ? net::Message::fault_to(
                                 request_msg, response.value().fault_error())
                           : net::Message::response_to(request_msg);
  if (!response.value().is_fault()) {
    for (const auto& child : response.value().body().children()) {
      reply.body().adopt_child(child->clone());
    }
  }
  return reply;
}

}  // namespace vmp::core
