// Tests for the PPP's partial-matching algorithm: the Subset, Prefix, and
// Partial Order tests of paper Section 3.2, including the Figure 3 example.
#include <gtest/gtest.h>

#include "dag/matching.h"
#include "workload/dag_library.h"

namespace vmp::dag {
namespace {

/// Signature helper: look up a node's signature in a DAG.
std::string sig(const ConfigDag& d, const std::string& id) {
  return d.action(id)->signature();
}

ConfigDag chain_dag() {
  // A -> B -> C
  return DagBuilder()
      .guest("A", "install-os", {{"distro", "r8"}})
      .guest("B", "install-package", {{"package", "vnc"}})
      .guest("C", "install-package", {{"package", "wfm"}})
      .chain({"A", "B", "C"})
      .build();
}

ConfigDag diamond_dag() {
  // A -> {B, C} -> D (B and C incomparable)
  return DagBuilder()
      .guest("A", "install-os", {{"distro", "r8"}})
      .guest("B", "install-package", {{"package", "p1"}})
      .guest("C", "install-package", {{"package", "p2"}})
      .guest("D", "create-user", {{"name", "u"}})
      .edge("A", "B")
      .edge("A", "C")
      .edge("B", "D")
      .edge("C", "D")
      .build();
}

// -- Subset test ---------------------------------------------------------------

TEST(SubsetTest, EmptyHistoryAlwaysMatches) {
  auto eval = evaluate_match(chain_dag(), {});
  ASSERT_TRUE(eval.ok());
  EXPECT_TRUE(eval.value().matches());
  EXPECT_TRUE(eval.value().satisfied_nodes.empty());
  EXPECT_EQ(eval.value().remaining_plan.size(), 3u);
}

TEST(SubsetTest, UnrequestedActionFails) {
  ConfigDag d = chain_dag();
  auto eval = evaluate_match(d, {sig(d, "A"), "install-package{package=emacs}"});
  ASSERT_TRUE(eval.ok());
  EXPECT_FALSE(eval.value().matches());
  EXPECT_FALSE(eval.value().subset_ok);
  EXPECT_NE(eval.value().failure_reason.find("subset"), std::string::npos);
}

TEST(SubsetTest, RepeatedActionFails) {
  ConfigDag d = chain_dag();
  auto eval = evaluate_match(d, {sig(d, "A"), sig(d, "A")});
  ASSERT_TRUE(eval.ok());
  EXPECT_FALSE(eval.value().subset_ok);
}

TEST(SubsetTest, FullHistoryMatchesWithEmptyPlan) {
  ConfigDag d = chain_dag();
  auto eval = evaluate_match(d, {sig(d, "A"), sig(d, "B"), sig(d, "C")});
  ASSERT_TRUE(eval.ok());
  EXPECT_TRUE(eval.value().matches());
  EXPECT_TRUE(eval.value().remaining_plan.empty());
}

// -- Prefix test ----------------------------------------------------------------

TEST(PrefixTest, HistoryMustBeDownwardClosed) {
  ConfigDag d = chain_dag();
  // B performed without its predecessor A.
  auto eval = evaluate_match(d, {sig(d, "B")});
  ASSERT_TRUE(eval.ok());
  EXPECT_TRUE(eval.value().subset_ok);
  EXPECT_FALSE(eval.value().prefix_ok);
  EXPECT_NE(eval.value().failure_reason.find("prefix"), std::string::npos);
}

TEST(PrefixTest, IncomparableBranchAloneIsFine) {
  ConfigDag d = diamond_dag();
  // A then C (skipping B) is downward-closed: C's only ancestor is A.
  auto eval = evaluate_match(d, {sig(d, "A"), sig(d, "C")});
  ASSERT_TRUE(eval.ok());
  EXPECT_TRUE(eval.value().matches());
  EXPECT_EQ(eval.value().remaining_plan,
            (std::vector<std::string>{"B", "D"}));
}

TEST(PrefixTest, DeepMissingAncestorDetected) {
  ConfigDag d = diamond_dag();
  // D performed with B but not C (C is also an ancestor of D).
  auto eval = evaluate_match(d, {sig(d, "A"), sig(d, "B"), sig(d, "D")});
  ASSERT_TRUE(eval.ok());
  EXPECT_FALSE(eval.value().prefix_ok);
}

// -- Partial order test ------------------------------------------------------------

TEST(PartialOrderTest, HistoryOrderMustRefineDagOrder) {
  ConfigDag d = chain_dag();
  // Both A and B performed, but recorded in the wrong order.
  auto eval = evaluate_match(d, {sig(d, "B"), sig(d, "A")});
  ASSERT_TRUE(eval.ok());
  EXPECT_TRUE(eval.value().subset_ok);
  EXPECT_TRUE(eval.value().prefix_ok);  // both sets closed
  EXPECT_FALSE(eval.value().partial_order_ok);
  EXPECT_NE(eval.value().failure_reason.find("partial order"),
            std::string::npos);
}

TEST(PartialOrderTest, IncomparableActionsMayAppearInAnyOrder) {
  ConfigDag d = diamond_dag();
  auto bc = evaluate_match(d, {sig(d, "A"), sig(d, "B"), sig(d, "C")});
  auto cb = evaluate_match(d, {sig(d, "A"), sig(d, "C"), sig(d, "B")});
  ASSERT_TRUE(bc.ok());
  ASSERT_TRUE(cb.ok());
  EXPECT_TRUE(bc.value().matches());
  EXPECT_TRUE(cb.value().matches());
}

// -- Remaining plan validity ----------------------------------------------------------

TEST(RemainingPlanTest, PlanIsAValidLinearExtension) {
  ConfigDag d = diamond_dag();
  auto eval = evaluate_match(d, {sig(d, "A")});
  ASSERT_TRUE(eval.ok());
  const auto& plan = eval.value().remaining_plan;
  ASSERT_EQ(plan.size(), 3u);
  // D must come after both B and C in the plan.
  EXPECT_EQ(plan.back(), "D");
}

TEST(RemainingPlanTest, PlanDisjointFromSatisfied) {
  ConfigDag d = diamond_dag();
  auto eval = evaluate_match(d, {sig(d, "A"), sig(d, "B")});
  ASSERT_TRUE(eval.ok());
  for (const auto& id : eval.value().remaining_plan) {
    for (const auto& done : eval.value().satisfied_nodes) {
      EXPECT_NE(id, done);
    }
  }
  EXPECT_EQ(eval.value().satisfied_nodes.size() +
                eval.value().remaining_plan.size(),
            d.size());
}

// -- Ranking ---------------------------------------------------------------------------

TEST(RankMatchesTest, PrefersMostSatisfiedActions) {
  ConfigDag d = chain_dag();
  std::vector<std::vector<std::string>> images{
      {},                                      // blank
      {sig(d, "A")},                           // 1 action
      {sig(d, "A"), sig(d, "B")},              // 2 actions  <- best
      {sig(d, "B")},                           // fails prefix
  };
  auto ranked = rank_matches(d, images);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked.value().size(), 3u);
  EXPECT_EQ(ranked.value()[0].image_index, 2u);
  EXPECT_EQ(ranked.value()[0].satisfied_count, 2u);
  EXPECT_EQ(ranked.value()[0].remaining_count, 1u);
  EXPECT_EQ(ranked.value()[1].image_index, 1u);
  EXPECT_EQ(ranked.value()[2].image_index, 0u);
}

TEST(RankMatchesTest, StableOnTies) {
  ConfigDag d = chain_dag();
  std::vector<std::vector<std::string>> images{
      {sig(d, "A")},
      {sig(d, "A")},
  };
  auto ranked = rank_matches(d, images);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked.value().size(), 2u);
  EXPECT_EQ(ranked.value()[0].image_index, 0u);
  EXPECT_EQ(ranked.value()[1].image_index, 1u);
}

TEST(RankMatchesTest, DuplicateSignatureInRequestIsAnError) {
  ConfigDag d;
  ASSERT_TRUE(d.add_action(Action("A", "op")).ok());
  ASSERT_TRUE(d.add_action(Action("B", "op")).ok());
  EXPECT_FALSE(rank_matches(d, {{}}).ok());
}

// -- The paper's Figure 3 example ---------------------------------------------------------

TEST(Figure3Test, GoldenWorkspaceSatisfiesBasePrefix) {
  workload::WorkspaceParams params;
  ConfigDag request = workload::invigo_workspace_dag(params);
  auto eval = evaluate_match(request, workload::invigo_golden_history());
  ASSERT_TRUE(eval.ok());
  EXPECT_TRUE(eval.value().matches());
  EXPECT_EQ(eval.value().satisfied_nodes,
            (std::vector<std::string>{"A", "B", "C"}));
  // D..I remain: the paper's per-instance configuration actions.
  EXPECT_EQ(eval.value().remaining_plan.size(), 6u);
  EXPECT_EQ(eval.value().remaining_plan.front(), "D");
}

TEST(Figure3Test, WorkspaceWithDifferentUserStillMatchesGolden) {
  // The golden prefix (A,B,C) carries no user-specific parameters, so any
  // user's workspace request matches the same cached image.
  workload::WorkspaceParams alice;
  alice.user = "alice";
  alice.ip = "10.1.2.3";
  ConfigDag request = workload::invigo_workspace_dag(alice);
  auto eval = evaluate_match(request, workload::invigo_golden_history());
  ASSERT_TRUE(eval.ok());
  EXPECT_TRUE(eval.value().matches());
}

TEST(Figure3Test, ImageWithUserBakedInDoesNotMatchOtherUsers) {
  // An image checkpointed after creating user "arijit" fails the Subset
  // test for a request configuring user "alice".
  workload::WorkspaceParams arijit;  // default user "arijit"
  ConfigDag arijit_dag = workload::invigo_workspace_dag(arijit);
  std::vector<std::string> history = workload::invigo_golden_history();
  history.push_back(sig(arijit_dag, "D"));
  history.push_back(sig(arijit_dag, "E"));  // create-user{name=arijit}

  workload::WorkspaceParams alice;
  alice.user = "alice";
  // Use the same ip/mac so only the user differs.
  ConfigDag alice_dag = workload::invigo_workspace_dag(alice);
  auto eval = evaluate_match(alice_dag, history);
  ASSERT_TRUE(eval.ok());
  EXPECT_FALSE(eval.value().matches());
  EXPECT_FALSE(eval.value().subset_ok);
}

}  // namespace
}  // namespace vmp::dag
