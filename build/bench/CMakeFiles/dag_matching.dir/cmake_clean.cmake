file(REMOVE_RECURSE
  "CMakeFiles/dag_matching.dir/dag_matching.cpp.o"
  "CMakeFiles/dag_matching.dir/dag_matching.cpp.o.d"
  "dag_matching"
  "dag_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
