// Cloning mechanics: link-based clone vs full copy.
//
// Paper, Section 4.1: "the Production Line uses soft links for the virtual
// hard disk, and replicates the VM configuration file, memory state, and
// base redo log for each clone."  Section 4.3 quantifies the alternative:
// fully copying the 2 GB / 16-file golden disk takes 210 s, about 4x the
// average cloning time of even the largest (256 MB) VM.
//
// Both strategies are implemented here against the ArtifactStore; the
// returned accounting feeds the cluster timing model, which is what turns
// "bytes copied vs links created" into the paper's latency gap.
#pragma once

#include "storage/artifact_store.h"
#include "storage/image_layout.h"
#include "util/error.h"

namespace vmp::storage {

enum class CloneStrategy {
  kLinked,    // symlink disk spans; copy config + memory + base redo
  kFullCopy,  // copy every artefact (the paper's slow baseline)
};

const char* clone_strategy_name(CloneStrategy strategy) noexcept;

/// Breakdown of one clone operation, for benches and the timing model.
struct CloneReport {
  IoAccounting config;  // machine.cfg replica
  IoAccounting memory;  // memory.vmss copy (empty for booted images)
  IoAccounting disk;    // spans: links or copies
  IoAccounting redo;    // base redo log replica

  IoAccounting total() const;
};

/// Clone `golden` into `clone_dir`.  The golden image directory must have
/// been materialized (materialize_image) or published by a plant.
/// Persistent-mode disks refuse the linked strategy: their base files would
/// be written by the clone, corrupting the golden image.
util::Result<CloneReport> clone_image(ArtifactStore* store,
                                      const ImageLayout& golden,
                                      const MachineSpec& spec,
                                      const std::string& clone_dir,
                                      CloneStrategy strategy);

/// Remove a clone directory (collecting a VM).  Returns the removal
/// accounting (symlink-aware bytes freed — a linked clone frees only its
/// private replicas, never the golden spans its links point at).  Whether a
/// directory contains non-symlink disk spans that other clones link to is
/// not tracked here; plants only ever pass their own clone directories.
util::Result<IoAccounting> destroy_clone(ArtifactStore* store,
                                         const std::string& clone_dir);

}  // namespace vmp::storage
