#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vmp::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool parse_int64(std::string_view text, long long* out) {
  text = trim(text);
  if (text.empty()) return false;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc{} && ptr == last;
}

bool parse_double(std::string_view text, double* out) {
  text = trim(text);
  if (text.empty()) return false;
  // std::from_chars<double> is available in libstdc++ 11+; use strtod with a
  // bounded copy for portability across toolchains.
  std::string copy(text);
  char* end = nullptr;
  const double v = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return false;
  *out = v;
  return true;
}

std::string format_double(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Prefer the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char probe[64];
    std::snprintf(probe, sizeof probe, "%.*g", precision, v);
    if (std::strtod(probe, nullptr) == v) return probe;
  }
  return buf;
}

}  // namespace vmp::util
