#include "hypervisor/hypervisor.h"

#include "fault/fault.h"

namespace vmp::hv {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

const char* power_state_name(PowerState state) noexcept {
  switch (state) {
    case PowerState::kStopped: return "stopped";
    case PowerState::kSuspended: return "suspended";
    case PowerState::kRunning: return "running";
    case PowerState::kDestroyed: return "destroyed";
  }
  return "stopped";
}

Result<VmInstance*> Hypervisor::find_mutable(const std::string& vm_id) {
  auto it = instances_.find(vm_id);
  if (it == instances_.end() ||
      it->second.power == PowerState::kDestroyed) {
    return Result<VmInstance*>(
        Error(ErrorCode::kNotFound, type() + ": no VM " + vm_id));
  }
  return &it->second;
}

const VmInstance* Hypervisor::find(const std::string& vm_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = instances_.find(vm_id);
  return it == instances_.end() ? nullptr : &it->second;
}

std::optional<VmInstance> Hypervisor::snapshot_vm(
    const std::string& vm_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = instances_.find(vm_id);
  if (it == instances_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> Hypervisor::instance_ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [id, vm] : instances_) {
    if (vm.power != PowerState::kDestroyed) out.push_back(id);
  }
  return out;
}

std::size_t Hypervisor::instance_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return instances_.size();
}

std::size_t Hypervisor::active_instances() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& [id, vm] : instances_) {
    if (vm.power != PowerState::kDestroyed) ++count;
  }
  return count;
}

std::uint64_t Hypervisor::resident_memory_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [id, vm] : instances_) {
    if (vm.power == PowerState::kRunning ||
        vm.power == PowerState::kSuspended) {
      total += vm.spec.memory_bytes;
    }
  }
  return total;
}

Result<std::string> Hypervisor::clone_vm(const CloneSource& source,
                                         const std::string& clone_dir,
                                         const std::string& vm_id) {
  if (vm_id.empty()) {
    return Result<std::string>(
        Error(ErrorCode::kInvalidArgument, "vm id must not be empty"));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (instances_.count(vm_id)) {
      return Result<std::string>(
          Error(ErrorCode::kAlreadyExists, type() + ": VM exists: " + vm_id));
    }
  }
  VMP_RETURN_IF_ERROR_AS(validate_clone_source(source), std::string);

  // Lease the golden base BEFORE the clone I/O: a linked clone's disk
  // symlinks point into the golden tree, so between here and destroy the
  // lifecycle manager must never reap it.  Taken outside mutex_ (see the
  // lease_hook_ field comment); every failure path below releases.
  const bool leased = lease_hook_ != nullptr && !source.golden_id.empty();
  if (leased) {
    Status lease = lease_hook_->acquire(source.golden_id);
    if (!lease.ok()) return Result<std::string>(lease.error());
  }
  auto unlease = [&] {
    if (leased) lease_hook_->release(source.golden_id);
  };

  // The size-proportional copy runs unlocked: clone_dir is private to this
  // request, so concurrent creations overlap here — the whole point of the
  // plant's worker pool.
  auto report = storage::clone_image(store_, source.layout, source.spec,
                                     clone_dir, clone_strategy());
  if (!report.ok()) {
    unlease();
    return report.propagate<std::string>();
  }

  VmInstance vm;
  vm.id = vm_id;
  vm.layout = storage::ImageLayout{clone_dir};
  vm.spec = source.spec;
  vm.guest = source.guest;
  vm.guest.flaky_counters.clear();
  vm.power = PowerState::kStopped;
  vm.clone_report = report.value();
  vm.golden_id = leased ? source.golden_id : "";

  // The clone carries the golden's guest state file for crash recovery /
  // inspection; write the clone's own copy.  A failure here must not leave
  // a half-written clone directory behind.
  auto gs = store_->write_file(clone_dir + "/guest.state",
                               render_guest_state(vm.guest));
  if (!gs.ok()) {
    (void)store_->remove_tree(clone_dir);
    unlease();
    return gs.propagate<std::string>();
  }

  bool registered;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    registered = instances_.emplace(vm_id, std::move(vm)).second;
  }
  if (!registered) {
    // Lost a registration race on the same id (ids are generator-unique, so
    // this is defensive): leave no orphan directory or stuck lease behind.
    (void)store_->remove_tree(clone_dir);
    unlease();
    return Result<std::string>(
        Error(ErrorCode::kAlreadyExists, type() + ": VM exists: " + vm_id));
  }
  return vm_id;
}

Result<std::string> Hypervisor::import_vm(const std::string& clone_dir,
                                          const storage::MachineSpec& spec,
                                          const GuestState& guest,
                                          const std::string& vm_id,
                                          bool suspended,
                                          const std::string& golden_id) {
  if (vm_id.empty()) {
    return Result<std::string>(
        Error(ErrorCode::kInvalidArgument, "vm id must not be empty"));
  }
  VmInstance vm;
  vm.id = vm_id;
  vm.layout = storage::ImageLayout{clone_dir};
  vm.spec = spec;
  vm.guest = guest;
  vm.power = suspended ? PowerState::kSuspended : PowerState::kStopped;

  if (!store_->exists(vm.layout.config_path())) {
    return Result<std::string>(
        Error(ErrorCode::kFailedPrecondition,
              type() + ": import missing config: " + vm.layout.config_path()));
  }
  if (suspended) {
    if (!resumes_from_checkpoint()) {
      return Result<std::string>(Error(
          ErrorCode::kFailedPrecondition,
          type() + ": backend cannot adopt a suspended checkpoint"));
    }
    if (!store_->exists(vm.layout.memory_path())) {
      return Result<std::string>(Error(
          ErrorCode::kFailedPrecondition,
          type() + ": import missing memory state: " + vm.layout.memory_path()));
    }
  }
  // A migrated linked clone still symlinks into the golden tree on the
  // shared store, so adoption re-takes the lease the source plant dropped
  // when it deregistered the VM.
  const bool leased = lease_hook_ != nullptr && !golden_id.empty();
  if (leased) {
    Status lease = lease_hook_->acquire(golden_id);
    if (!lease.ok()) return Result<std::string>(lease.error());
  }
  vm.golden_id = leased ? golden_id : "";
  bool registered;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    registered = instances_.emplace(vm_id, std::move(vm)).second;
  }
  if (!registered) {
    if (leased) lease_hook_->release(golden_id);
    return Result<std::string>(
        Error(ErrorCode::kAlreadyExists, type() + ": VM exists: " + vm_id));
  }
  return vm_id;
}

Status Hypervisor::start_vm(const std::string& vm_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto vm = find_mutable(vm_id);
  if (!vm.ok()) return vm.error();
  if (vm.value()->power == PowerState::kRunning) {
    return Status(ErrorCode::kFailedPrecondition,
                  type() + ": VM already running: " + vm_id);
  }
  auto injected = start_failures_.find(vm_id);
  if (injected != start_failures_.end() && injected->second) {
    injected->second = false;
    return Status(ErrorCode::kInternal,
                  type() + ": injected start failure for " + vm_id);
  }
  // Plan-driven fault injection (resume/boot failures look like VMM errors).
  if (auto fault = fault::check(fault::points::kHypervisorResume, vm_id);
      !fault.ok()) {
    return fault;
  }
  VMP_RETURN_IF_ERROR(do_start(vm.value()));
  vm.value()->power = PowerState::kRunning;
  return Status();
}

Status Hypervisor::suspend_vm(const std::string& vm_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto vm = find_mutable(vm_id);
  if (!vm.ok()) return vm.error();
  if (vm.value()->power != PowerState::kRunning) {
    return Status(ErrorCode::kFailedPrecondition,
                  type() + ": suspend requires a running VM: " + vm_id);
  }
  if (!resumes_from_checkpoint()) {
    return Status(ErrorCode::kFailedPrecondition,
                  type() + ": backend does not support suspend");
  }
  // Write the checkpoint: the memory state file reflects configured memory.
  auto mem = store_->create_sparse_file(vm.value()->layout.memory_path(),
                                        vm.value()->spec.memory_bytes);
  if (!mem.ok()) return mem.error();
  auto gs = store_->write_file(vm.value()->layout.dir + "/guest.state",
                               render_guest_state(vm.value()->guest));
  if (!gs.ok()) return gs.error();
  vm.value()->power = PowerState::kSuspended;
  return Status();
}

Status Hypervisor::power_off(const std::string& vm_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto vm = find_mutable(vm_id);
  if (!vm.ok()) return vm.error();
  if (vm.value()->power == PowerState::kStopped) {
    return Status(ErrorCode::kFailedPrecondition,
                  type() + ": VM already stopped: " + vm_id);
  }
  // Non-persistent disks discard session changes: truncate the redo log.
  if (vm.value()->spec.disk.mode == storage::DiskMode::kNonPersistent) {
    auto redo = store_->write_file(
        vm.value()->layout.base_redo_path(vm.value()->spec.disk), "");
    if (!redo.ok()) return redo.error();
  }
  vm.value()->power = PowerState::kStopped;
  return Status();
}

Status Hypervisor::destroy_vm(const std::string& vm_id) {
  // Claim the instance under the lock, then delete its tree unlocked (tree
  // removal is the collect path's size-proportional cost, and concurrent
  // collects of distinct VMs should overlap like concurrent clones do).
  std::string dir;
  std::string golden_id;
  PowerState prev_power;
  std::vector<std::string> prev_isos;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto vm = find_mutable(vm_id);
    if (!vm.ok()) return vm.error();
    dir = vm.value()->layout.dir;
    golden_id = vm.value()->golden_id;
    prev_power = vm.value()->power;
    prev_isos = std::move(vm.value()->connected_isos);
    vm.value()->power = PowerState::kDestroyed;
    vm.value()->connected_isos.clear();
  }
  auto removed = storage::destroy_clone(store_, dir);
  if (!removed.ok()) {
    // Deletion failed: the VM is still materialized on disk, so restore its
    // registration instead of stranding a live directory as "destroyed".
    // The golden lease is kept — the clone's symlinks still exist.
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = instances_.find(vm_id);
    if (it != instances_.end()) {
      it->second.power = prev_power;
      it->second.connected_isos = std::move(prev_isos);
    }
    return removed.error();
  }
  // Only after the clone tree (and its symlinks into the golden) is gone may
  // the lifecycle manager reap a zombie base this clone was pinning.
  if (lease_hook_ != nullptr && !golden_id.empty()) {
    lease_hook_->release(golden_id);
  }
  return Status();
}

Result<std::string> Hypervisor::connect_script_iso(const std::string& vm_id,
                                                   const std::string& script) {
  std::string iso_path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto vm = find_mutable(vm_id);
    if (!vm.ok()) return vm.propagate<std::string>();
    const std::uint32_t n = ++iso_counters_[vm_id];
    iso_path =
        vm.value()->layout.dir + "/config-cd-" + std::to_string(n) + ".iso";
  }
  // The "ISO" carries the script with a tiny header, like a one-file image.
  // Written unlocked — the path is unique and lives in this VM's own dir.
  auto write = store_->write_file(iso_path, "#iso9660-sim\n" + script);
  if (!write.ok()) return write.propagate<std::string>();
  std::lock_guard<std::mutex> lock(mutex_);
  auto vm = find_mutable(vm_id);
  if (!vm.ok()) return vm.propagate<std::string>();
  vm.value()->connected_isos.push_back(iso_path);
  return iso_path;
}

Result<GuestOutput> Hypervisor::execute_connected_script(
    const std::string& vm_id) {
  std::string iso_file;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto vm = find_mutable(vm_id);
    if (!vm.ok()) return vm.propagate<GuestOutput>();
    if (vm.value()->power != PowerState::kRunning) {
      return Result<GuestOutput>(
          Error(ErrorCode::kFailedPrecondition,
                type() + ": guest daemon requires a running VM: " + vm_id));
    }
    if (vm.value()->connected_isos.empty()) {
      return Result<GuestOutput>(Error(
          ErrorCode::kFailedPrecondition, type() + ": no ISO connected: " + vm_id));
    }
    iso_file = vm.value()->connected_isos.back();
  }
  auto iso = store_->read_file(iso_file);
  if (!iso.ok()) return iso.propagate<GuestOutput>();
  // Strip the header line.
  std::string script = iso.value();
  const std::size_t nl = script.find('\n');
  script = nl == std::string::npos ? "" : script.substr(nl + 1);
  // Guest mutation happens under the lock so monitor snapshots never see a
  // half-updated guest state.
  std::lock_guard<std::mutex> lock(mutex_);
  auto vm = find_mutable(vm_id);
  if (!vm.ok()) return vm.propagate<GuestOutput>();
  return agent_.execute(&vm.value()->guest, script);
}

Result<GuestOutput> Hypervisor::execute_on_guest(const std::string& vm_id,
                                                 const std::string& script) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto vm = find_mutable(vm_id);
  if (!vm.ok()) return vm.propagate<GuestOutput>();
  if (vm.value()->power != PowerState::kRunning) {
    return Result<GuestOutput>(
        Error(ErrorCode::kFailedPrecondition,
              type() + ": guest not running: " + vm_id));
  }
  return agent_.execute(&vm.value()->guest, script);
}

void Hypervisor::inject_start_failure(const std::string& vm_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  start_failures_[vm_id] = true;
}

}  // namespace vmp::hv
